//! Self-contained seeded pseudo-random number generation.
//!
//! The workspace must build and test with **zero registry access**
//! (hermetic-build policy, see `DESIGN.md`), so fault sampling and
//! workload-input generation cannot depend on the external `rand`
//! crate.  This crate provides the two standard small generators used
//! in its place:
//!
//! * [`SplitMix64`] — a one-at-a-time mixer, used to expand seeds and
//!   fill the state of the main generator;
//! * [`Rng64`] — xoshiro256\*\* (Blackman & Vigna), the workhorse
//!   generator behind campaigns and input data.
//!
//! Both are fully deterministic functions of the seed across platforms
//! and toolchains, which is exactly the reproducibility contract the
//! fault-injection campaigns rely on.  Range sampling is unbiased
//! (Lemire's widening-multiply method with rejection).

use std::ops::Range;

/// SplitMix64: a tiny, statistically solid 64-bit generator.
///
/// Primarily used to derive the 256-bit state of [`Rng64`] from a
/// 64-bit seed, as recommended by the xoshiro authors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the main seeded generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seeds the 256-bit state from a 64-bit seed via [`SplitMix64`].
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        let mut sm = SplitMix64::new(seed);
        Rng64 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Seeds from 32 raw bytes (little-endian words), remixed through
    /// a chained [`SplitMix64`] so that sparse byte patterns (e.g.
    /// ASCII kernel names) still produce well-distributed state and
    /// every byte influences every state word.
    pub fn from_seed(bytes: [u8; 32]) -> Rng64 {
        let mut sm = SplitMix64::new(0x243F_6A88_85A3_08D3);
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            // Chain: word i of the state depends on raw words 0..=i.
            sm.state ^= u64::from_le_bytes(chunk);
            *w = sm.next_u64();
        }
        let mut rng = Rng64 { s };
        // Warm-up diffuses late raw words into the whole state (the
        // first xoshiro output reads only s[1]).
        for _ in 0..4 {
            rng.next_u64();
        }
        rng
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 16-bit value (upper bits of the 64-bit output).
    pub fn gen_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Uniform value in `0..n` (`n > 0`), unbiased via Lemire's
    /// widening-multiply method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in a half-open range, matching the call shape of
    /// `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }
}

/// Half-open ranges that [`Rng64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Out;
    /// Draws one uniform value.
    fn sample(self, rng: &mut Rng64) -> Self::Out;
}

impl SampleRange for Range<usize> {
    type Out = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + rng.gen_below(span) as usize
    }
}

impl SampleRange for Range<u64> {
    type Out = u64;
    fn sample(self, rng: &mut Rng64) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_below(self.end - self.start)
    }
}

impl SampleRange for Range<i64> {
    type Out = i64;
    fn sample(self, rng: &mut Rng64) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = (i128::from(self.end) - i128::from(self.start)) as u64;
        self.start.wrapping_add(rng.gen_below(span) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 0 (Vigna's splitmix64.c).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        let mut c = Rng64::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn byte_seeds_distinguish_positions() {
        // "ab" vs "ba" folded into byte arrays must differ.
        let mut s1 = [0u8; 32];
        s1[0] = b'a';
        s1[1] = b'b';
        let mut s2 = [0u8; 32];
        s2[0] = b'b';
        s2[1] = b'a';
        assert_ne!(
            Rng64::from_seed(s1).next_u64(),
            Rng64::from_seed(s2).next_u64()
        );
        // And the all-zero seed still produces a working stream.
        let mut z = Rng64::from_seed([0; 32]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn gen_below_is_in_range_and_hits_everything_small() {
        let mut rng = Rng64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_below_is_approximately_uniform() {
        let mut rng = Rng64::seed_from_u64(1234);
        const N: u64 = 7;
        const DRAWS: usize = 70_000;
        let mut counts = [0usize; N as usize];
        for _ in 0..DRAWS {
            counts[rng.gen_below(N) as usize] += 1;
        }
        let expect = DRAWS as f64 / N as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i}: {c} vs {expect}");
        }
    }

    #[test]
    fn typed_ranges_sample_within_bounds() {
        let mut rng = Rng64::seed_from_u64(99);
        for _ in 0..200 {
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5..6i64);
            assert!((-5..6).contains(&i));
            let w = rng.gen_range(10..11u64);
            assert_eq!(w, 10);
        }
        // Extreme i64 span does not overflow.
        let v = rng.gen_range(1..i64::MAX / 2);
        assert!((1..i64::MAX / 2).contains(&v));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::seed_from_u64(0).gen_range(4..4usize);
    }
}
