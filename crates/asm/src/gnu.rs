//! GNU-assembler output: turns an [`AsmProgram`] into a real `.s` file
//! that `gcc` can assemble and link into a native x86-64 executable.
//!
//! This is the bridge from the simulation substrate back to actual
//! silicon: the instruction dialect is a genuine x86-64 subset, so a
//! FERRUM-protected program can be assembled, run on a real CPU
//! (SSE4.1 + AVX2 required for the checker instructions), and checked
//! against the oracle — the native end-to-end validation lives in
//! `tests/native.rs`.
//!
//! Runtime shims appended to every emission:
//!
//! * `print_i64` — prints `%rdi` in decimal via `printf`,
//! * `exit_function` — the detection handler; exits with status 57,
//! * a zeroed `%eax` before `main`'s `ret` so the process exit status
//!   is 0 on success.

use std::fmt::Write as _;

use crate::inst::Inst;
use crate::operand::Operand;
use crate::printer::print_inst;
use crate::program::AsmProgram;

/// Process exit status used by the native detection handler.
pub const DETECTED_EXIT_CODE: i32 = 57;

fn render_native(inst: &Inst) -> String {
    // 64-bit immediates beyond the i32 range need `movabsq` in GNU as.
    if let Inst::Mov {
        w: crate::reg::Width::W64,
        src: Operand::Imm(v),
        dst: dst @ Operand::Reg(_),
    } = inst
    {
        if i32::try_from(*v).is_err() {
            return format!("movabsq ${v}, {dst}");
        }
    }
    // VEX encodings for the SIMD checker instructions.  The paper's
    // Fig. 6 listing mixes legacy-SSE (`movq`, `pinsrq`) with VEX
    // (`vinserti128`, `vpxor`); on real Haswell-and-later silicon that
    // mix incurs SSE↔AVX transition penalties that our native timing
    // measured at two orders of magnitude (EXPERIMENTS.md).  The VEX
    // forms are semantically equivalent for the generated patterns
    // (their upper-lane zeroing is always overwritten or compared on
    // equal values before being read).
    match inst {
        Inst::MovqToXmm { src, dst } => format!("vmovq {src}, {dst}"),
        Inst::MovqFromXmm { src, dst } => format!("vmovq {src}, {dst}"),
        Inst::Pinsrq { lane, src, dst } => format!("vpinsrq ${lane}, {src}, {dst}, {dst}"),
        Inst::Pextrq { lane, src, dst } => format!("vpextrq ${lane}, {src}, {dst}"),
        _ => print_inst(inst),
    }
}

/// Emits a timing harness: the program's `main` is renamed
/// `ferrum_kernel`, `print_i64` becomes a no-op, and a fresh `main`
/// calls the kernel `iters` times — wall-clock measurements of the
/// *computation* (not printf) on real hardware.  Note the kernel
/// mutates its globals across iterations; the harness times work, it
/// does not validate output (the plain [`emit_gnu`] path does that).
pub fn emit_gnu_timing(p: &AsmProgram, iters: u32) -> String {
    let mut renamed = p.clone();
    for f in &mut renamed.functions {
        if f.name == "main" {
            f.name = "ferrum_kernel".into();
        }
    }
    let mut out = emit_body(&renamed, true);
    let _ = writeln!(out, "	.text");
    let _ = writeln!(out, "	.globl main");
    let _ = writeln!(out, "main:");
    let _ = writeln!(out, "	pushq %rbp");
    let _ = writeln!(out, "	movq %rsp, %rbp");
    let _ = writeln!(out, "	pushq %rbx");
    let _ = writeln!(out, "	pushq %r15");
    let _ = writeln!(out, "	movl ${iters}, %ebx");
    let _ = writeln!(out, ".Lferrum_loop:");
    let _ = writeln!(out, "	call ferrum_kernel");
    let _ = writeln!(out, "	subl $1, %ebx");
    let _ = writeln!(out, "	jne .Lferrum_loop");
    let _ = writeln!(out, "	popq %r15");
    let _ = writeln!(out, "	popq %rbx");
    let _ = writeln!(out, "	movq %rbp, %rsp");
    let _ = writeln!(out, "	popq %rbp");
    let _ = writeln!(out, "	xorl %eax, %eax");
    let _ = writeln!(out, "	ret");
    out
}

/// Emits a complete GNU-assembler translation unit.
pub fn emit_gnu(p: &AsmProgram) -> String {
    emit_body(p, false)
}

fn emit_body(p: &AsmProgram, quiet_print: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\t.text");
    for f in &p.functions {
        let _ = writeln!(out, "\t.globl {}", f.name);
        let _ = writeln!(out, "\t.type {}, @function", f.name);
        let _ = writeln!(out, "{}:", f.name);
        for b in &f.blocks {
            let _ = writeln!(out, "{}:", b.label);
            for ai in &b.insts {
                if f.name == "main" && matches!(ai.inst, Inst::Ret) {
                    // A clean process exit status for the C runtime.
                    let _ = writeln!(out, "\txorl %eax, %eax");
                }
                let _ = writeln!(out, "\t{}", render_native(&ai.inst));
            }
        }
    }
    // Detection handler: report and exit with a recognisable status.
    let _ = writeln!(out, "\t.globl exit_function");
    let _ = writeln!(out, "exit_function:");
    let _ = writeln!(out, "\tleaq .Lferrum_detected(%rip), %rdi");
    let _ = writeln!(out, "\txorl %eax, %eax");
    let _ = writeln!(out, "\tandq $-16, %rsp");
    let _ = writeln!(out, "\tcall printf@PLT");
    let _ = writeln!(out, "\tmovl ${DETECTED_EXIT_CODE}, %edi");
    let _ = writeln!(out, "\tcall exit@PLT");
    // Output intrinsic: decimal + newline (or a no-op for timing runs).
    let _ = writeln!(out, "print_i64:");
    if quiet_print {
        let _ = writeln!(out, "\tret");
    }
    let _ = writeln!(out, "\tpushq %rbp");
    let _ = writeln!(out, "\tmovq %rsp, %rbp");
    let _ = writeln!(out, "\tmovq %rdi, %rsi");
    let _ = writeln!(out, "\tleaq .Lferrum_fmt(%rip), %rdi");
    let _ = writeln!(out, "\txorl %eax, %eax");
    let _ = writeln!(out, "\tcall printf@PLT");
    let _ = writeln!(out, "\tmovq %rbp, %rsp");
    let _ = writeln!(out, "\tpopq %rbp");
    let _ = writeln!(out, "\tret");
    let _ = writeln!(out, "\t.section .rodata");
    let _ = writeln!(out, ".Lferrum_fmt:\t.string \"%ld\\n\"");
    let _ = writeln!(out, ".Lferrum_detected:\t.string \"ferrum: fault detected\\n\"");
    if !p.data.is_empty() {
        let _ = writeln!(out, "\t.data");
        for d in &p.data {
            let _ = writeln!(out, "\t.align 8");
            let _ = writeln!(out, "{}:", d.name);
            for w in &d.words {
                let _ = writeln!(out, "\t.quad {w}");
            }
        }
    }
    let _ = writeln!(out, "\t.section .note.GNU-stack,\"\",@progbits");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::operand::Operand;
    use crate::program::{single_block_main, DataObject};
    use crate::reg::{Gpr, Reg, Width};

    #[test]
    fn emission_contains_shims_and_sections() {
        let mut p = single_block_main(vec![Inst::Call {
            target: "print_i64".into(),
        }]);
        p.data.push(DataObject::new("tab", vec![1, 2]));
        let s = emit_gnu(&p);
        assert!(s.contains("\t.text"));
        assert!(s.contains(".globl main"));
        assert!(s.contains("print_i64:"));
        assert!(s.contains("exit_function:"));
        assert!(s.contains("call printf@PLT"));
        assert!(s.contains("tab:"));
        assert!(s.contains("\t.quad 1"));
        assert!(s.contains(".note.GNU-stack"));
    }

    #[test]
    fn main_ret_is_preceded_by_status_zeroing() {
        let p = single_block_main(vec![Inst::Nop]);
        let s = emit_gnu(&p);
        let ret_pos = s.find("\tret").expect("ret present");
        let xor_pos = s.find("\txorl %eax, %eax").expect("zeroing present");
        assert!(xor_pos < ret_pos);
    }

    #[test]
    fn simd_checkers_use_vex_encodings_natively() {
        use crate::reg::Xmm;
        let p = single_block_main(vec![
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Xmm::new(0),
            },
            Inst::Pinsrq {
                lane: 1,
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
                dst: Xmm::new(0),
            },
        ]);
        let s = emit_gnu(&p);
        assert!(s.contains("vmovq %rax, %xmm0"), "{s}");
        assert!(s.contains("vpinsrq $1, %rcx, %xmm0, %xmm0"));
        assert!(!s.contains("	movq %rax, %xmm0"), "no legacy-SSE forms");
    }

    #[test]
    fn wide_immediates_use_movabsq() {
        let p = single_block_main(vec![
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(6364136223846793005),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::Rcx)),
            },
        ]);
        let s = emit_gnu(&p);
        assert!(s.contains("movabsq $6364136223846793005, %rax"));
        assert!(s.contains("movq $7, %rcx"));
    }
}
