//! Register model: general-purpose registers with sub-register views, and
//! the XMM/YMM SIMD register files.

use std::fmt;

/// The sixteen x86-64 general-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Gpr {
    Rax = 0,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

/// All sixteen general-purpose registers, in encoding order.
pub const ALL_GPRS: [Gpr; 16] = [
    Gpr::Rax,
    Gpr::Rbx,
    Gpr::Rcx,
    Gpr::Rdx,
    Gpr::Rsi,
    Gpr::Rdi,
    Gpr::Rbp,
    Gpr::Rsp,
    Gpr::R8,
    Gpr::R9,
    Gpr::R10,
    Gpr::R11,
    Gpr::R12,
    Gpr::R13,
    Gpr::R14,
    Gpr::R15,
];

/// The System-V integer argument registers, in order.
pub const ARG_GPRS: [Gpr; 6] = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx, Gpr::R8, Gpr::R9];

/// Registers that a called function must preserve under the System-V ABI.
pub const CALLEE_SAVED: [Gpr; 6] = [Gpr::Rbx, Gpr::Rbp, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15];

impl Gpr {
    /// Returns the register's dense index in `0..16`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 16`.
    pub fn from_index(idx: usize) -> Gpr {
        ALL_GPRS[idx]
    }

    /// True for `%rsp`/`%rbp`, which the backend reserves for the frame.
    pub fn is_frame(self) -> bool {
        matches!(self, Gpr::Rsp | Gpr::Rbp)
    }

    /// The AT&T name of the 64-bit view, without the `%` sigil.
    pub fn name64(self) -> &'static str {
        match self {
            Gpr::Rax => "rax",
            Gpr::Rbx => "rbx",
            Gpr::Rcx => "rcx",
            Gpr::Rdx => "rdx",
            Gpr::Rsi => "rsi",
            Gpr::Rdi => "rdi",
            Gpr::Rbp => "rbp",
            Gpr::Rsp => "rsp",
            Gpr::R8 => "r8",
            Gpr::R9 => "r9",
            Gpr::R10 => "r10",
            Gpr::R11 => "r11",
            Gpr::R12 => "r12",
            Gpr::R13 => "r13",
            Gpr::R14 => "r14",
            Gpr::R15 => "r15",
        }
    }

    /// The AT&T name of the register at width `w`, without the `%` sigil.
    pub fn name(self, w: Width) -> String {
        match w {
            Width::W64 => self.name64().to_owned(),
            Width::W32 => match self {
                Gpr::Rax => "eax".into(),
                Gpr::Rbx => "ebx".into(),
                Gpr::Rcx => "ecx".into(),
                Gpr::Rdx => "edx".into(),
                Gpr::Rsi => "esi".into(),
                Gpr::Rdi => "edi".into(),
                Gpr::Rbp => "ebp".into(),
                Gpr::Rsp => "esp".into(),
                _ => format!("{}d", self.name64()),
            },
            Width::W16 => match self {
                Gpr::Rax => "ax".into(),
                Gpr::Rbx => "bx".into(),
                Gpr::Rcx => "cx".into(),
                Gpr::Rdx => "dx".into(),
                Gpr::Rsi => "si".into(),
                Gpr::Rdi => "di".into(),
                Gpr::Rbp => "bp".into(),
                Gpr::Rsp => "sp".into(),
                _ => format!("{}w", self.name64()),
            },
            Width::W8 => match self {
                Gpr::Rax => "al".into(),
                Gpr::Rbx => "bl".into(),
                Gpr::Rcx => "cl".into(),
                Gpr::Rdx => "dl".into(),
                Gpr::Rsi => "sil".into(),
                Gpr::Rdi => "dil".into(),
                Gpr::Rbp => "bpl".into(),
                Gpr::Rsp => "spl".into(),
                _ => format!("{}b", self.name64()),
            },
        }
    }

    /// Parses a register name (any width view, without `%`), returning the
    /// register and the view width.
    pub fn parse(name: &str) -> Option<(Gpr, Width)> {
        for g in ALL_GPRS {
            for w in Width::ALL {
                if g.name(w) == name {
                    return Some((g, w));
                }
            }
        }
        None
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.name64())
    }
}

/// Access width of a register view or memory operand, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    W8,
    W16,
    W32,
    W64,
}

impl Width {
    /// All widths, narrowest first.
    pub const ALL: [Width; 4] = [Width::W8, Width::W16, Width::W32, Width::W64];

    /// Width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        u64::from(self.bits()) / 8
    }

    /// Bit mask selecting the low `bits()` bits of a `u64`.
    pub fn mask(self) -> u64 {
        match self {
            Width::W64 => u64::MAX,
            _ => (1u64 << self.bits()) - 1,
        }
    }

    /// The AT&T mnemonic suffix letter (`b`, `w`, `l`, `q`).
    pub fn suffix(self) -> char {
        match self {
            Width::W8 => 'b',
            Width::W16 => 'w',
            Width::W32 => 'l',
            Width::W64 => 'q',
        }
    }

    /// Parses a suffix letter back into a width.
    pub fn from_suffix(c: char) -> Option<Width> {
        match c {
            'b' => Some(Width::W8),
            'w' => Some(Width::W16),
            'l' => Some(Width::W32),
            'q' => Some(Width::W64),
            _ => None,
        }
    }

    /// Sign-extends the low `bits()` bits of `raw` to a full `i64`.
    pub fn sext(self, raw: u64) -> i64 {
        let b = self.bits();
        if b == 64 {
            raw as i64
        } else {
            let shift = 64 - b;
            (((raw & self.mask()) << shift) as i64) >> shift
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// An XMM (128-bit) SIMD register, `%xmm0` through `%xmm15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xmm(pub u8);

impl Xmm {
    /// Constructs `%xmmN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub fn new(n: u8) -> Xmm {
        assert!(n < 16, "xmm register index out of range: {n}");
        Xmm(n)
    }

    /// The register index in `0..16`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%xmm{}", self.0)
    }
}

/// A YMM (256-bit) SIMD register.  `%ymmN` aliases `%xmmN` in its low
/// 128 bits, exactly as on real hardware — FERRUM's checker relies on this
/// aliasing when it fills two XMM halves and widens with `vinserti128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ymm(pub u8);

impl Ymm {
    /// Constructs `%ymmN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub fn new(n: u8) -> Ymm {
        assert!(n < 16, "ymm register index out of range: {n}");
        Ymm(n)
    }

    /// The register index in `0..16`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The XMM register aliased by this YMM register's low half.
    pub fn low_xmm(self) -> Xmm {
        Xmm(self.0)
    }
}

impl fmt::Display for Ymm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%ymm{}", self.0)
    }
}

/// A ZMM (512-bit) SIMD register.  `%zmmN` aliases `%ymmN`/`%xmmN` in
/// its low lanes.  Only part of Intel's processor line implements them
/// (paper §III-B3), which is why FERRUM's ZMM batching is opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Zmm(pub u8);

impl Zmm {
    /// Constructs `%zmmN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub fn new(n: u8) -> Zmm {
        assert!(n < 16, "zmm register index out of range: {n}");
        Zmm(n)
    }

    /// The register index in `0..16`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The YMM register aliased by this ZMM register's low half.
    pub fn low_ymm(self) -> Ymm {
        Ymm(self.0)
    }
}

impl fmt::Display for Zmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%zmm{}", self.0)
    }
}

/// A general-purpose register viewed at a particular width, e.g. `%eax`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg {
    /// The underlying 64-bit register.
    pub gpr: Gpr,
    /// The width of this view.
    pub width: Width,
}

impl Reg {
    /// Creates a view of `gpr` at width `w`.
    pub fn gpr(gpr: Gpr, w: Width) -> Reg {
        Reg { gpr, width: w }
    }

    /// The 64-bit view of a register.
    pub fn q(gpr: Gpr) -> Reg {
        Reg::gpr(gpr, Width::W64)
    }

    /// The 32-bit view of a register.
    pub fn l(gpr: Gpr) -> Reg {
        Reg::gpr(gpr, Width::W32)
    }

    /// The 8-bit view of a register.
    pub fn b(gpr: Gpr) -> Reg {
        Reg::gpr(gpr, Width::W8)
    }

    /// Re-views this register at another width.
    pub fn with_width(self, w: Width) -> Reg {
        Reg::gpr(self.gpr, w)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.gpr.name(self.width))
    }
}

/// Applies x86-64 sub-register write semantics: writing a 32-bit view
/// zero-extends into the full register; writing an 8- or 16-bit view
/// merges into the low bits and preserves the rest.
///
/// ```
/// use ferrum_asm::reg::{merge_write, Width};
/// assert_eq!(merge_write(0xffff_ffff_ffff_ffff, Width::W32, 0x1), 0x1);
/// assert_eq!(merge_write(0xffff_ffff_ffff_ff00, Width::W8, 0x7f), 0xffff_ffff_ffff_ff7f);
/// ```
pub fn merge_write(old: u64, w: Width, value: u64) -> u64 {
    match w {
        Width::W64 => value,
        Width::W32 => value & Width::W32.mask(),
        Width::W16 | Width::W8 => (old & !w.mask()) | (value & w.mask()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_names_round_trip_at_every_width() {
        for g in ALL_GPRS {
            for w in Width::ALL {
                let name = g.name(w);
                assert_eq!(Gpr::parse(&name), Some((g, w)), "register {name}");
            }
        }
    }

    #[test]
    fn gpr_index_round_trips() {
        for (i, g) in ALL_GPRS.iter().enumerate() {
            assert_eq!(g.index(), i);
            assert_eq!(Gpr::from_index(i), *g);
        }
    }

    #[test]
    fn legacy_low_byte_names() {
        assert_eq!(Gpr::Rax.name(Width::W8), "al");
        assert_eq!(Gpr::Rsi.name(Width::W8), "sil");
        assert_eq!(Gpr::R11.name(Width::W8), "r11b");
        assert_eq!(Gpr::R12.name(Width::W8), "r12b");
    }

    #[test]
    fn extended_register_width_suffixes() {
        assert_eq!(Gpr::R10.name(Width::W32), "r10d");
        assert_eq!(Gpr::R10.name(Width::W16), "r10w");
        assert_eq!(Gpr::R10.name(Width::W64), "r10");
    }

    #[test]
    fn width_masks_and_suffixes() {
        assert_eq!(Width::W8.mask(), 0xff);
        assert_eq!(Width::W16.mask(), 0xffff);
        assert_eq!(Width::W32.mask(), 0xffff_ffff);
        assert_eq!(Width::W64.mask(), u64::MAX);
        for w in Width::ALL {
            assert_eq!(Width::from_suffix(w.suffix()), Some(w));
        }
        assert_eq!(Width::from_suffix('x'), None);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(Width::W8.sext(0x80), -128);
        assert_eq!(Width::W8.sext(0x7f), 127);
        assert_eq!(Width::W32.sext(0xffff_ffff), -1);
        assert_eq!(Width::W32.sext(0x7fff_ffff), i64::from(i32::MAX));
        assert_eq!(Width::W64.sext(u64::MAX), -1);
    }

    #[test]
    fn write_semantics_32_bit_zero_extends() {
        assert_eq!(merge_write(u64::MAX, Width::W32, 0xdead_beef), 0xdead_beef);
    }

    #[test]
    fn write_semantics_8_and_16_bit_merge() {
        assert_eq!(
            merge_write(0x1111_2222_3333_4444, Width::W8, 0xff),
            0x1111_2222_3333_44ff
        );
        assert_eq!(
            merge_write(0x1111_2222_3333_4444, Width::W16, 0xbeef),
            0x1111_2222_3333_beef
        );
    }

    #[test]
    fn write_semantics_64_bit_replaces() {
        assert_eq!(merge_write(1, Width::W64, u64::MAX), u64::MAX);
    }

    #[test]
    fn ymm_aliases_xmm() {
        assert_eq!(Ymm::new(3).low_xmm(), Xmm::new(3));
        assert_eq!(Zmm::new(3).low_ymm(), Ymm::new(3));
        assert_eq!(Zmm::new(9).to_string(), "%zmm9");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn xmm_index_validated() {
        let _ = Xmm::new(16);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::q(Gpr::R10).to_string(), "%r10");
        assert_eq!(Reg::l(Gpr::Rax).to_string(), "%eax");
        assert_eq!(Reg::b(Gpr::R11).to_string(), "%r11b");
        assert_eq!(Xmm::new(0).to_string(), "%xmm0");
        assert_eq!(Ymm::new(15).to_string(), "%ymm15");
        assert_eq!(Gpr::Rdi.to_string(), "%rdi");
    }
}
