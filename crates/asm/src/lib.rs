//! # ferrum-asm — an x86-64 assembly subset model
//!
//! This crate models the slice of the x86-64 ISA that the FERRUM paper
//! (DSN 2024, *"A Fast Low-Level Error Detection Technique"*) operates on:
//!
//! * the sixteen general-purpose registers with their 8/16/32/64-bit views
//!   and the architectural sub-register write semantics,
//! * the XMM/YMM SIMD register files (YMM aliasing XMM in the low lanes),
//! * the RFLAGS condition flags written by `cmp`/`test`/ALU instructions,
//! * a structured instruction AST covering data movement (`mov`, `movslq`,
//!   `lea`, `push`/`pop`), integer ALU, comparisons and `setcc`, control
//!   flow, and the SIMD instructions FERRUM's checkers are built from
//!   (`movq`-to-XMM, `pinsrq`, `vinserti128`, `vpxor`, `vptest`),
//! * an AT&T-style printer and a round-tripping parser,
//! * static analyses used by the protection passes: control-flow graph
//!   construction, register-usage scanning (spare-register discovery) and
//!   backward liveness.
//!
//! Every instruction in a [`program::AsmProgram`] carries a
//! [`provenance::Provenance`] tag recording whether it was lowered from an
//! IR instruction, emitted as backend glue, or inserted by a protection
//! pass.  The fault-injection campaigns use this to attribute silent data
//! corruptions to their cross-layer root cause, reproducing the analysis
//! in §IV-B1 of the paper.
//!
//! ## Example
//!
//! ```
//! use ferrum_asm::inst::{AluOp, Inst};
//! use ferrum_asm::operand::Operand;
//! use ferrum_asm::reg::{Gpr, Reg, Width};
//!
//! // xorq %rcx, %r10  — the checker idiom from Fig. 4 of the paper.
//! let check = Inst::Alu {
//!     op: AluOp::Xor,
//!     w: Width::W64,
//!     src: Operand::Reg(Reg::gpr(Gpr::Rcx, Width::W64)),
//!     dst: Operand::Reg(Reg::gpr(Gpr::R10, Width::W64)),
//! };
//! assert_eq!(ferrum_asm::printer::print_inst(&check), "xorq %rcx, %r10");
//! ```

pub mod analysis;
pub mod flags;
pub mod gnu;
pub mod inst;
pub mod operand;
pub mod parser;
pub mod printer;
pub mod program;
pub mod provenance;
pub mod reg;

pub use flags::{Cc, Flags};
pub use inst::{AluOp, Inst, RegMasks, ShiftAmount, ShiftOp, UnaryOp};
pub use operand::{MemRef, Operand, Scale};
pub use program::{AsmBlock, AsmFunction, AsmInst, AsmProgram, Label};
pub use provenance::{GlueKind, Mechanism, Provenance, TechniqueTag};
pub use reg::{Gpr, Reg, Width, Xmm, Ymm, Zmm};

/// The label every protection technique jumps to when a checker detects a
/// mismatch.  The simulator treats a transfer to this label as an
/// error-detection event (paper Figs. 4–7: `jne exit_function`).
pub const EXIT_FUNCTION: &str = "exit_function";

/// Name of the output intrinsic: `call print_i64` prints the value in
/// `%rdi` to the simulated program output stream.
pub const PRINT_I64: &str = "print_i64";
