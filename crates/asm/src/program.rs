//! Program structure: functions, labelled basic blocks, and tagged
//! instructions, plus program-level data (globals) and validation.

use std::collections::HashMap;
use std::fmt;

use crate::inst::Inst;
use crate::operand::Operand;
use crate::provenance::Provenance;

/// A code label (block label or function/intrinsic name).
pub type Label = String;

/// An instruction together with its cross-layer provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmInst {
    /// The instruction itself.
    pub inst: Inst,
    /// Where it came from.
    pub prov: Provenance,
}

impl AsmInst {
    /// Tags an instruction with provenance.
    pub fn new(inst: Inst, prov: Provenance) -> AsmInst {
        AsmInst { inst, prov }
    }

    /// Tags an instruction as synthetic (tests/examples).
    pub fn synthetic(inst: Inst) -> AsmInst {
        AsmInst::new(inst, Provenance::Synthetic)
    }
}

/// A labelled basic block: straight-line instructions, with control
/// transfers allowed anywhere (conditional jumps mid-block fall through
/// like real assembly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmBlock {
    /// The block's label (unique within the program).
    pub label: Label,
    /// The instructions in program order.
    pub insts: Vec<AsmInst>,
}

impl AsmBlock {
    /// Creates an empty block.
    pub fn new(label: impl Into<Label>) -> AsmBlock {
        AsmBlock {
            label: label.into(),
            insts: Vec::new(),
        }
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst, prov: Provenance) {
        self.insts.push(AsmInst::new(inst, prov));
    }
}

/// A function: an ordered list of basic blocks; execution enters at the
/// first block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmFunction {
    /// The function name (also the label used by `call`).
    pub name: Label,
    /// Basic blocks in layout order (fall-through follows this order).
    pub blocks: Vec<AsmBlock>,
}

impl AsmFunction {
    /// Creates an empty function.
    pub fn new(name: impl Into<Label>) -> AsmFunction {
        AsmFunction {
            name: name.into(),
            blocks: Vec::new(),
        }
    }

    /// Total number of static instructions.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// True if the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all instructions in layout order.
    pub fn insts(&self) -> impl Iterator<Item = &AsmInst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Finds a block index by label.
    pub fn block_index(&self, label: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.label == label)
    }
}

/// A mutable global data object living in the simulated data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataObject {
    /// Symbol name.
    pub name: String,
    /// Initial contents as 64-bit words (every array element occupies a
    /// full word; narrower program types are stored sign-extended).
    pub words: Vec<i64>,
}

impl DataObject {
    /// Creates a data object from its initial words.
    pub fn new(name: impl Into<String>, words: Vec<i64>) -> DataObject {
        DataObject {
            name: name.into(),
            words,
        }
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

/// A whole program: functions plus global data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsmProgram {
    /// Functions; execution starts at the one named `main`.
    pub functions: Vec<AsmFunction>,
    /// Global data objects.
    pub data: Vec<DataObject>,
}

/// Structural problems found by [`AsmProgram::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// Two blocks or functions share a label.
    DuplicateLabel(Label),
    /// A jump targets a label that does not exist.
    UnknownTarget { in_function: Label, target: Label },
    /// A function's final block does not end in `ret` or `jmp`.
    MissingTerminator(Label),
    /// A `mov` has two memory operands.
    MemToMem(Label),
    /// The program has no `main` function.
    NoMain,
    /// A `pinsrq`/`vinserti128` lane index is out of range.
    BadLane(Label),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            ValidateError::UnknownTarget {
                in_function,
                target,
            } => {
                write!(
                    f,
                    "unknown jump target `{target}` in function `{in_function}`"
                )
            }
            ValidateError::MissingTerminator(l) => {
                write!(f, "function `{l}` does not end in ret/jmp")
            }
            ValidateError::MemToMem(l) => {
                write!(f, "memory-to-memory mov in function `{l}`")
            }
            ValidateError::NoMain => write!(f, "program has no `main` function"),
            ValidateError::BadLane(l) => write!(f, "lane index out of range in function `{l}`"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl AsmProgram {
    /// Creates an empty program.
    pub fn new() -> AsmProgram {
        AsmProgram::default()
    }

    /// Total number of static instructions across all functions.
    pub fn static_inst_count(&self) -> usize {
        self.functions.iter().map(AsmFunction::len).sum()
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&AsmFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut AsmFunction> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Finds a data object by symbol name.
    pub fn data_object(&self, name: &str) -> Option<&DataObject> {
        self.data.iter().find(|d| d.name == name)
    }

    /// Builds the map from label to `(function index, block index)`.
    pub fn label_map(&self) -> HashMap<&str, (usize, usize)> {
        let mut map = HashMap::new();
        for (fi, f) in self.functions.iter().enumerate() {
            for (bi, b) in f.blocks.iter().enumerate() {
                map.insert(b.label.as_str(), (fi, bi));
            }
        }
        map
    }

    /// Checks structural well-formedness.
    ///
    /// # Errors
    ///
    /// Returns every problem found (duplicate labels, dangling jump
    /// targets, missing terminators, malformed movs, missing `main`).
    pub fn validate(&self) -> Result<(), Vec<ValidateError>> {
        let mut errors = Vec::new();
        let mut seen = HashMap::new();
        for f in &self.functions {
            if seen.insert(f.name.clone(), ()).is_some() {
                errors.push(ValidateError::DuplicateLabel(f.name.clone()));
            }
            for b in &f.blocks {
                if seen.insert(b.label.clone(), ()).is_some() {
                    errors.push(ValidateError::DuplicateLabel(b.label.clone()));
                }
            }
        }
        if self.function("main").is_none() {
            errors.push(ValidateError::NoMain);
        }
        for f in &self.functions {
            let local: HashMap<&str, ()> =
                f.blocks.iter().map(|b| (b.label.as_str(), ())).collect();
            for ai in f.insts() {
                match &ai.inst {
                    Inst::Jmp { target } | Inst::Jcc { target, .. }
                        if !local.contains_key(target.as_str())
                            && target != crate::EXIT_FUNCTION =>
                    {
                        errors.push(ValidateError::UnknownTarget {
                            in_function: f.name.clone(),
                            target: target.clone(),
                        });
                    }
                    Inst::Call { target } => {
                        let is_intrinsic =
                            target == crate::PRINT_I64 || target == crate::EXIT_FUNCTION;
                        if !is_intrinsic && self.function(target).is_none() {
                            errors.push(ValidateError::UnknownTarget {
                                in_function: f.name.clone(),
                                target: target.clone(),
                            });
                        }
                    }
                    Inst::Mov { src, dst, .. } if src.is_mem() && dst.is_mem() => {
                        errors.push(ValidateError::MemToMem(f.name.clone()));
                    }
                    Inst::Pinsrq { lane, .. } | Inst::Pextrq { lane, .. } if *lane > 1 => {
                        errors.push(ValidateError::BadLane(f.name.clone()));
                    }
                    Inst::Vinserti128 { lane, .. } if *lane > 1 => {
                        errors.push(ValidateError::BadLane(f.name.clone()));
                    }
                    _ => {}
                }
            }
            let terminated = f
                .blocks
                .last()
                .and_then(|b| b.insts.last())
                .is_some_and(|i| i.inst.is_terminator());
            if !terminated {
                errors.push(ValidateError::MissingTerminator(f.name.clone()));
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

/// Convenience: wraps a raw operand list of instructions into a
/// single-block `main` function (used heavily in tests).
pub fn single_block_main(insts: Vec<Inst>) -> AsmProgram {
    let mut f = AsmFunction::new("main");
    let mut b = AsmBlock::new("main_entry");
    for i in insts {
        b.push(i, Provenance::Synthetic);
    }
    // Ensure termination for convenience.
    if !b.insts.last().is_some_and(|i| i.inst.is_terminator()) {
        b.push(Inst::Ret, Provenance::Synthetic);
    }
    f.blocks.push(b);
    AsmProgram {
        functions: vec![f],
        data: Vec::new(),
    }
}

/// Returns `true` if `op` is a register operand naming `gpr` at any width.
pub fn operand_is_gpr(op: &Operand, gpr: crate::reg::Gpr) -> bool {
    matches!(op, Operand::Reg(r) if r.gpr == gpr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::operand::{MemRef, Operand};
    use crate::reg::{Gpr, Reg, Width};

    #[test]
    fn single_block_main_is_valid() {
        let p = single_block_main(vec![Inst::Nop]);
        assert!(p.validate().is_ok());
        assert_eq!(p.static_inst_count(), 2); // nop + implicit ret
    }

    #[test]
    fn missing_main_is_rejected() {
        let mut p = AsmProgram::new();
        let mut f = AsmFunction::new("helper");
        let mut b = AsmBlock::new("h0");
        b.push(Inst::Ret, Provenance::Synthetic);
        f.blocks.push(b);
        p.functions.push(f);
        let errs = p.validate().unwrap_err();
        assert!(errs.contains(&ValidateError::NoMain));
    }

    #[test]
    fn dangling_jump_is_rejected() {
        let p = single_block_main(vec![Inst::Jmp {
            target: "nowhere".into(),
        }]);
        let errs = p.validate().unwrap_err();
        assert!(matches!(errs[0], ValidateError::UnknownTarget { .. }));
    }

    #[test]
    fn jump_to_exit_function_is_allowed() {
        let p = single_block_main(vec![Inst::Jcc {
            cc: crate::flags::Cc::Ne,
            target: crate::EXIT_FUNCTION.into(),
        }]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn call_to_print_intrinsic_is_allowed() {
        let p = single_block_main(vec![Inst::Call {
            target: crate::PRINT_I64.into(),
        }]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn call_to_unknown_function_is_rejected() {
        let p = single_block_main(vec![Inst::Call {
            target: "mystery".into(),
        }]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn mem_to_mem_mov_is_rejected() {
        let p = single_block_main(vec![Inst::Mov {
            w: Width::W64,
            src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -16)),
        }]);
        let errs = p.validate().unwrap_err();
        assert!(errs.contains(&ValidateError::MemToMem("main".into())));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let mut p = single_block_main(vec![Inst::Nop]);
        let dup = p.functions[0].blocks[0].clone();
        p.functions[0].blocks.push(dup);
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_lane_rejected() {
        let p = single_block_main(vec![Inst::Pinsrq {
            lane: 2,
            src: Operand::Reg(Reg::q(Gpr::Rax)),
            dst: crate::reg::Xmm::new(0),
        }]);
        let errs = p.validate().unwrap_err();
        assert!(errs.contains(&ValidateError::BadLane("main".into())));
    }

    #[test]
    fn label_map_covers_all_blocks() {
        let mut p = single_block_main(vec![Inst::Nop]);
        let mut extra = AsmBlock::new("bb2");
        extra.push(Inst::Ret, Provenance::Synthetic);
        p.functions[0].blocks.push(extra);
        let map = p.label_map();
        assert_eq!(map["main_entry"], (0, 0));
        assert_eq!(map["bb2"], (0, 1));
    }

    #[test]
    fn data_object_size() {
        let d = DataObject::new("arr", vec![1, 2, 3]);
        assert_eq!(d.size(), 24);
    }

    #[test]
    fn function_helpers() {
        let p = single_block_main(vec![Inst::Nop]);
        assert!(p.function("main").is_some());
        assert!(p.function("other").is_none());
        let f = p.function("main").unwrap();
        assert!(!f.is_empty());
        assert_eq!(f.block_index("main_entry"), Some(0));
        assert_eq!(f.block_index("zzz"), None);
    }
}
