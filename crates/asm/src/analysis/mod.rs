//! Static analyses over assembly functions.
//!
//! These are the analyses FERRUM's first phase performs (§III-B1 of the
//! paper): control-flow discovery, register-usage scanning to find spare
//! registers, and liveness to justify register reuse after checks.

pub mod cfg;
pub mod liveness;
pub mod regscan;

pub use cfg::Cfg;
pub use liveness::Liveness;
pub use regscan::{RegUsage, SpareReport};
