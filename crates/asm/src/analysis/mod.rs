//! Static analyses over assembly functions.
//!
//! These are the analyses FERRUM's first phase performs (§III-B1 of the
//! paper): control-flow discovery, register-usage scanning to find spare
//! registers, and liveness to justify register reuse after checks.

pub mod cfg;
pub mod coverage;
pub mod lint;
pub mod liveness;
pub mod regscan;
pub mod summary;

pub use cfg::{Cfg, Dominators};
pub use coverage::{CoverageMap, FunctionCoverage, SiteCoverage, StaticVerdict, VerdictCounts};
pub use lint::{
    lint_function, lint_function_with, lint_program, lint_program_with, LintContract, LintFinding,
    LintReport, ProtectionManifest,
};
pub use liveness::Liveness;
pub use regscan::{RegUsage, SpareReport};
pub use summary::{
    function_hash, EscapeFootprint, EscapeRollup, FunctionSummary, SiteSummary, SummaryMap,
    UnitSummary,
};
