//! Register-usage scanning: FERRUM's spare-register discovery (§III-B1).
//!
//! The scanner walks every instruction of a function and records which
//! general-purpose and SIMD registers it touches.  FERRUM requires two
//! spare GPRs (one for GENERAL-INSTRUCTION duplication, two for
//! comparison protection) and four spare XMM registers (two original +
//! two duplicate accumulators that are widened into two YMM registers).

use crate::program::AsmFunction;
use crate::reg::{Gpr, ALL_GPRS};

/// Bitset of general-purpose registers (16 bits) and SIMD registers
/// (16 bits), accumulated per function or per block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegUsage {
    gpr_bits: u16,
    simd_bits: u16,
}

impl RegUsage {
    /// Empty usage.
    pub fn new() -> RegUsage {
        RegUsage::default()
    }

    /// Records a general-purpose register as used.
    pub fn touch_gpr(&mut self, g: Gpr) {
        self.gpr_bits |= 1 << g.index();
    }

    /// Records an XMM/YMM register (by index) as used.
    pub fn touch_simd(&mut self, idx: u8) {
        self.simd_bits |= 1 << idx;
    }

    /// True if the GPR is used.
    pub fn uses_gpr(&self, g: Gpr) -> bool {
        self.gpr_bits & (1 << g.index()) != 0
    }

    /// True if the SIMD register (by index) is used.
    pub fn uses_simd(&self, idx: u8) -> bool {
        self.simd_bits & (1 << idx) != 0
    }

    /// Union with another usage set.
    pub fn merge(&mut self, other: RegUsage) {
        self.gpr_bits |= other.gpr_bits;
        self.simd_bits |= other.simd_bits;
    }

    /// Scans a single instruction.  Delegates to [`Inst::reg_masks`] so
    /// the scanner, the decoded engine and the summary builder share one
    /// source of truth for register touch sets.
    ///
    /// [`Inst::reg_masks`]: crate::inst::Inst::reg_masks
    pub fn scan_inst(&mut self, inst: &crate::inst::Inst) {
        let m = inst.reg_masks();
        self.gpr_bits |= m.touched_gpr();
        self.simd_bits |= m.touched_simd();
    }

    /// GPRs *not* used, excluding `%rsp`/`%rbp` (reserved for the frame).
    pub fn spare_gprs(&self) -> Vec<Gpr> {
        ALL_GPRS
            .into_iter()
            .filter(|g| !g.is_frame() && !self.uses_gpr(*g))
            .collect()
    }

    /// SIMD register indices not used.
    pub fn spare_simd(&self) -> Vec<u8> {
        (0u8..16).filter(|&i| !self.uses_simd(i)).collect()
    }
}

/// Result of scanning a function: whole-function usage plus per-block
/// usage (the per-block sets drive stack-level requisition, Fig. 7).
#[derive(Debug, Clone)]
pub struct SpareReport {
    /// Usage across the whole function.
    pub function: RegUsage,
    /// Usage per block, indexed like [`AsmFunction::blocks`].
    pub per_block: Vec<RegUsage>,
}

impl SpareReport {
    /// Scans `f`.
    pub fn scan(f: &AsmFunction) -> SpareReport {
        let mut function = RegUsage::new();
        let mut per_block = Vec::with_capacity(f.blocks.len());
        for b in &f.blocks {
            let mut u = RegUsage::new();
            for ai in &b.insts {
                u.scan_inst(&ai.inst);
            }
            function.merge(u);
            per_block.push(u);
        }
        SpareReport {
            function,
            per_block,
        }
    }

    /// GPRs unused in the whole function (candidates for permanent
    /// protection registers).
    pub fn function_spare_gprs(&self) -> Vec<Gpr> {
        self.function.spare_gprs()
    }

    /// GPRs unused inside block `bi` (candidates for push/pop
    /// requisition, Fig. 7).
    pub fn block_spare_gprs(&self, bi: usize) -> Vec<Gpr> {
        self.per_block[bi].spare_gprs()
    }

    /// True if the function has at least `n_gpr` spare GPRs and
    /// `n_simd` spare SIMD registers — the thresholds of §III-B1.
    pub fn meets_thresholds(&self, n_gpr: usize, n_simd: usize) -> bool {
        self.function.spare_gprs().len() >= n_gpr && self.function.spare_simd().len() >= n_simd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Inst};
    use crate::operand::{MemRef, Operand};
    use crate::program::{AsmBlock, AsmFunction};
    use crate::provenance::Provenance;
    use crate::reg::{Reg, Width, Xmm};

    fn func_with(insts: Vec<Inst>) -> AsmFunction {
        let mut f = AsmFunction::new("main");
        let mut b = AsmBlock::new("entry");
        for i in insts {
            b.push(i, Provenance::Synthetic);
        }
        f.blocks.push(b);
        f
    }

    #[test]
    fn scan_records_reads_writes_and_addresses() {
        let f = func_with(vec![Inst::Mov {
            w: Width::W64,
            src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        }]);
        let rep = SpareReport::scan(&f);
        assert!(rep.function.uses_gpr(Gpr::Rax));
        assert!(rep.function.uses_gpr(Gpr::Rbp));
        assert!(!rep.function.uses_gpr(Gpr::R10));
    }

    #[test]
    fn spare_gprs_exclude_frame_registers() {
        let f = func_with(vec![Inst::Nop]);
        let spare = SpareReport::scan(&f).function_spare_gprs();
        assert!(!spare.contains(&Gpr::Rsp));
        assert!(!spare.contains(&Gpr::Rbp));
        assert_eq!(spare.len(), 14); // everything else unused
    }

    #[test]
    fn simd_usage_tracked() {
        let f = func_with(vec![Inst::MovqToXmm {
            src: Operand::Reg(Reg::q(Gpr::Rax)),
            dst: Xmm::new(3),
        }]);
        let rep = SpareReport::scan(&f);
        assert!(rep.function.uses_simd(3));
        assert!(!rep.function.uses_simd(0));
        assert_eq!(rep.function.spare_simd().len(), 15);
    }

    #[test]
    fn per_block_usage_differs_from_function_usage() {
        let mut f = AsmFunction::new("main");
        let mut b0 = AsmBlock::new("b0");
        b0.push(
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::R10)),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Provenance::Synthetic,
        );
        let mut b1 = AsmBlock::new("b1");
        b1.push(Inst::Ret, Provenance::Synthetic);
        f.blocks.push(b0);
        f.blocks.push(b1);
        let rep = SpareReport::scan(&f);
        assert!(!rep.block_spare_gprs(0).contains(&Gpr::R10));
        assert!(rep.block_spare_gprs(1).contains(&Gpr::R10));
        assert!(!rep.function_spare_gprs().contains(&Gpr::R10));
    }

    #[test]
    fn block_reading_and_requisitioning_same_gpr_is_not_spare() {
        // A block that both reads %rbx (original code) and requisitions
        // it (push/pop instrumentation) must not report it spare: a
        // second requisition pass would otherwise grab a register whose
        // save slot is already in use.
        let mut f = AsmFunction::new("main");
        let mut b = AsmBlock::new("entry");
        b.push(
            Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::Rbx)),
            },
            Provenance::Synthetic,
        );
        b.push(
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rbx)),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Provenance::Synthetic,
        );
        b.push(
            Inst::Pop {
                dst: Operand::Reg(Reg::q(Gpr::Rbx)),
            },
            Provenance::Synthetic,
        );
        b.push(Inst::Ret, Provenance::Synthetic);
        f.blocks.push(b);
        let rep = SpareReport::scan(&f);
        assert!(!rep.block_spare_gprs(0).contains(&Gpr::Rbx));
        assert!(!rep.function_spare_gprs().contains(&Gpr::Rbx));
        // An uninvolved register is still spare in the same block.
        assert!(rep.block_spare_gprs(0).contains(&Gpr::R12));
    }

    #[test]
    fn call_to_print_intrinsic_claims_rdi() {
        // Regression: `call print_i64` architecturally reads its
        // argument from %rdi, so a block containing only that call must
        // not report %rdi spare (a requisition pass that grabbed it
        // would corrupt the printed value).
        let f = func_with(vec![
            Inst::Call {
                target: crate::PRINT_I64.into(),
            },
            Inst::Ret,
        ]);
        let rep = SpareReport::scan(&f);
        assert!(rep.function.uses_gpr(Gpr::Rdi));
        assert!(!rep.function_spare_gprs().contains(&Gpr::Rdi));
        assert!(!rep.block_spare_gprs(0).contains(&Gpr::Rdi));
        // A call to an ordinary function leaves %rdi spare.
        let g = func_with(vec![
            Inst::Call {
                target: "helper".into(),
            },
            Inst::Ret,
        ]);
        assert!(SpareReport::scan(&g)
            .function_spare_gprs()
            .contains(&Gpr::Rdi));
    }

    #[test]
    fn scan_matches_reg_masks_union() {
        // Audit: the block-level rollup must equal the union of the
        // per-instruction reg_masks — one source of truth.
        let insts = vec![
            Inst::Mov {
                w: Width::W64,
                src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Call {
                target: crate::PRINT_I64.into(),
            },
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Xmm::new(3),
            },
            Inst::Ret,
        ];
        let f = func_with(insts.clone());
        let rep = SpareReport::scan(&f);
        let union = insts
            .iter()
            .fold(crate::inst::RegMasks::default(), |acc, i| {
                acc.union(i.reg_masks())
            });
        for g in crate::reg::ALL_GPRS {
            assert_eq!(
                rep.function.uses_gpr(g),
                union.touched_gpr() & (1 << g.index()) != 0,
                "{g:?}"
            );
        }
        for i in 0u8..16 {
            assert_eq!(
                rep.function.uses_simd(i),
                union.touched_simd() & (1 << i) != 0
            );
        }
    }

    #[test]
    fn thresholds() {
        let f = func_with(vec![Inst::Nop]);
        let rep = SpareReport::scan(&f);
        assert!(rep.meets_thresholds(2, 4));
        assert!(rep.meets_thresholds(14, 16));
        assert!(!rep.meets_thresholds(15, 16));
    }

    #[test]
    fn merge_is_union() {
        let mut a = RegUsage::new();
        a.touch_gpr(Gpr::Rax);
        let mut b = RegUsage::new();
        b.touch_gpr(Gpr::Rbx);
        b.touch_simd(5);
        a.merge(b);
        assert!(a.uses_gpr(Gpr::Rax) && a.uses_gpr(Gpr::Rbx) && a.uses_simd(5));
    }
}
