//! Block-level backward liveness of general-purpose registers.
//!
//! The paper invokes liveness to argue that a spare comparison register
//! "can immediately be put into new use" after the deferred check
//! (§III-B2).  We use the analysis for diagnostics and for asserting
//! that protection passes never read a dead duplicate.

use crate::analysis::cfg::Cfg;
use crate::program::AsmFunction;
use crate::reg::Gpr;

/// 16-bit register set used by the dataflow.
type RegSet = u16;

fn bit(g: Gpr) -> RegSet {
    1 << g.index()
}

/// Liveness facts for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<RegSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<RegSet>,
}

impl Liveness {
    /// Computes block-level liveness for `f` using `cfg`.
    ///
    /// Calls are treated as reading the argument registers and `%rax`
    /// (conservative), and `ret` as reading `%rax` (the return value).
    pub fn compute(f: &AsmFunction, cfg: &Cfg) -> Liveness {
        let n = f.blocks.len();
        let mut use_set = vec![0 as RegSet; n];
        let mut def_set = vec![0 as RegSet; n];
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut defs: RegSet = 0;
            let mut uses: RegSet = 0;
            for ai in &b.insts {
                let mut reads: RegSet = 0;
                for g in ai.inst.gprs_read() {
                    reads |= bit(g);
                }
                match &ai.inst {
                    crate::inst::Inst::Call { .. } => {
                        for g in crate::reg::ARG_GPRS {
                            reads |= bit(g);
                        }
                    }
                    crate::inst::Inst::Ret => {
                        reads |= bit(Gpr::Rax);
                    }
                    _ => {}
                }
                uses |= reads & !defs;
                for g in ai.inst.gprs_written() {
                    defs |= bit(g);
                }
                if matches!(ai.inst, crate::inst::Inst::Call { .. }) {
                    // Caller-saved registers are clobbered by the callee.
                    for g in [
                        Gpr::Rax,
                        Gpr::Rcx,
                        Gpr::Rdx,
                        Gpr::Rsi,
                        Gpr::Rdi,
                        Gpr::R8,
                        Gpr::R9,
                        Gpr::R10,
                        Gpr::R11,
                    ] {
                        defs |= bit(g);
                    }
                }
            }
            use_set[bi] = uses;
            def_set[bi] = defs;
        }

        let mut live_in = vec![0 as RegSet; n];
        let mut live_out = vec![0 as RegSet; n];
        let order = cfg.reverse_post_order();
        let mut changed = true;
        while changed {
            changed = false;
            for &bi in order.iter().rev() {
                let mut out: RegSet = 0;
                for &s in &cfg.succs[bi] {
                    out |= live_in[s];
                }
                let inp = use_set[bi] | (out & !def_set[bi]);
                if out != live_out[bi] || inp != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inp;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// True if `g` is live on entry to block `bi`.
    pub fn live_in_contains(&self, bi: usize, g: Gpr) -> bool {
        self.live_in[bi] & bit(g) != 0
    }

    /// True if `g` is live on exit from block `bi`.
    pub fn live_out_contains(&self, bi: usize, g: Gpr) -> bool {
        self.live_out[bi] & bit(g) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Cc;
    use crate::inst::{AluOp, Inst};
    use crate::operand::Operand;
    use crate::program::{AsmBlock, AsmFunction};
    use crate::provenance::Provenance;
    use crate::reg::{Reg, Width};

    fn block(label: &str, insts: Vec<Inst>) -> AsmBlock {
        let mut b = AsmBlock::new(label);
        for i in insts {
            b.push(i, Provenance::Synthetic);
        }
        b
    }

    fn mov_imm(dst: Gpr, v: i64) -> Inst {
        Inst::Mov {
            w: Width::W64,
            src: Operand::Imm(v),
            dst: Operand::Reg(Reg::q(dst)),
        }
    }

    fn add_rr(src: Gpr, dst: Gpr) -> Inst {
        Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            src: Operand::Reg(Reg::q(src)),
            dst: Operand::Reg(Reg::q(dst)),
        }
    }

    #[test]
    fn value_defined_in_pred_used_in_succ_is_live_across() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![mov_imm(Gpr::Rbx, 1)]));
        f.blocks
            .push(block("b", vec![add_rr(Gpr::Rbx, Gpr::Rax), Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_out_contains(0, Gpr::Rbx));
        assert!(lv.live_in_contains(1, Gpr::Rbx));
        // rbx defined in a, so not live-in there.
        assert!(!lv.live_in_contains(0, Gpr::Rbx));
    }

    #[test]
    fn dead_register_is_not_live() {
        let mut f = AsmFunction::new("main");
        f.blocks
            .push(block("a", vec![mov_imm(Gpr::R10, 7), Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.live_out_contains(0, Gpr::R10));
    }

    #[test]
    fn loop_keeps_induction_register_live() {
        // a: mov rbx,0 ; b: add rbx,rax; jne b ; c: ret
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![mov_imm(Gpr::Rbx, 0)]));
        f.blocks.push(block(
            "b",
            vec![
                add_rr(Gpr::Rbx, Gpr::Rax),
                Inst::Jcc {
                    cc: Cc::Ne,
                    target: "b".into(),
                },
            ],
        ));
        f.blocks.push(block("c", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_in_contains(1, Gpr::Rbx));
        assert!(lv.live_out_contains(1, Gpr::Rbx)); // back edge keeps it live
    }

    #[test]
    fn multi_block_loop_back_edge_keeps_loop_carried_register_live() {
        // pre: mov rbx,0        (loop-carried accumulator)
        // head: jcc exit
        // body: add rax,rbx     (uses + redefines rbx)
        // latch: jmp head       (back-edge)
        // exit: ret
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("pre", vec![mov_imm(Gpr::Rbx, 0)]));
        f.blocks.push(block(
            "head",
            vec![Inst::Jcc {
                cc: Cc::E,
                target: "exit".into(),
            }],
        ));
        f.blocks
            .push(block("body", vec![add_rr(Gpr::Rax, Gpr::Rbx)]));
        f.blocks.push(block(
            "latch",
            vec![Inst::Jmp {
                target: "head".into(),
            }],
        ));
        f.blocks.push(block("exit", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        // The back-edge latch -> head must carry rbx's liveness all the
        // way around the loop even though the use is two blocks away.
        assert!(lv.live_out_contains(3, Gpr::Rbx), "latch live-out");
        assert!(lv.live_in_contains(3, Gpr::Rbx), "latch live-in");
        assert!(lv.live_in_contains(1, Gpr::Rbx), "head live-in");
        assert!(lv.live_out_contains(0, Gpr::Rbx), "preheader live-out");
        // rax is read by body and by ret, so it also circulates.
        assert!(lv.live_in_contains(2, Gpr::Rax));
    }

    #[test]
    fn register_dead_after_loop_body_redefinition_each_iteration() {
        // head: jcc exit ; body: mov r10,5; add r10,rbx ; latch: jmp head
        // r10 is freshly defined every iteration, never live across the
        // back-edge.
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "head",
            vec![Inst::Jcc {
                cc: Cc::E,
                target: "exit".into(),
            }],
        ));
        f.blocks.push(block(
            "body",
            vec![mov_imm(Gpr::R10, 5), add_rr(Gpr::R10, Gpr::Rbx)],
        ));
        f.blocks.push(block(
            "latch",
            vec![Inst::Jmp {
                target: "head".into(),
            }],
        ));
        f.blocks.push(block("exit", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.live_in_contains(1, Gpr::R10), "body defines r10 first");
        assert!(!lv.live_out_contains(2, Gpr::R10), "not live on back-edge");
        // But the accumulator rbx IS loop-carried.
        assert!(lv.live_out_contains(2, Gpr::Rbx));
        assert!(lv.live_in_contains(0, Gpr::Rbx));
    }

    #[test]
    fn ret_keeps_rax_live() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![mov_imm(Gpr::Rax, 3)]));
        f.blocks.push(block("b", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_in_contains(1, Gpr::Rax));
        assert!(lv.live_out_contains(0, Gpr::Rax));
    }

    #[test]
    fn call_clobbers_caller_saved() {
        // r10 defined before call, "used" after — but the call kills it,
        // so it is NOT live into the block before the use... we model the
        // call as defining r10, hence the use after the call sees the
        // call's def, not the earlier one.
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "a",
            vec![
                mov_imm(Gpr::R10, 1),
                Inst::Call {
                    target: "print_i64".into(),
                },
            ],
        ));
        f.blocks
            .push(block("b", vec![add_rr(Gpr::R10, Gpr::Rax), Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        // b needs r10 live-in...
        assert!(lv.live_in_contains(1, Gpr::R10));
        // ...but block a defines it via the call clobber, so a's live-in
        // does not include r10.
        assert!(!lv.live_in_contains(0, Gpr::R10));
    }
}
