//! Block-level backward liveness of general-purpose registers, at
//! **byte granularity**.
//!
//! The paper invokes liveness to argue that a spare comparison register
//! "can immediately be put into new use" after the deferred check
//! (§III-B2).  We use the analysis for diagnostics, for asserting that
//! protection passes never read a dead duplicate, and — through the
//! coverage analysis — for proving individual fault sites *Masked*.
//!
//! Facts are tracked per register **byte** (16 GPRs × 8 bytes = one
//! `u128` per block) because the fault injector's site model is
//! per-byte: a flip in `%rcx` byte 5 is masked iff bytes 4–7 are never
//! read before a kill, even when `%ecx` stays hot.  Kills follow the
//! simulator's [`merge_write`](crate::reg::merge_write) semantics
//! (32-bit writes zero-extend and kill the whole register; 8/16-bit
//! writes merge and kill only the low bytes), and reads happen at the
//! instruction's access width — which is what makes the byte facts
//! strictly more precise than the old whole-register analysis without
//! losing soundness for partial defs like `sete %al` or `movslq`.

use crate::analysis::cfg::Cfg;
use crate::inst::{Inst, ShiftAmount};
use crate::operand::Operand;
use crate::program::AsmFunction;
use crate::reg::{Gpr, Width, ARG_GPRS};

/// Byte-level register set: bit `g.index() * 8 + byte` is byte `byte`
/// of register `g` (byte 0 is the least significant).
pub type ByteSet = u128;

/// The bit for one byte of one register.
pub fn byte_bit(g: Gpr, byte: u8) -> ByteSet {
    debug_assert!(byte < 8);
    1u128 << (g.index() * 8 + usize::from(byte))
}

/// All eight bytes of `g`.
pub fn reg_bytes(g: Gpr) -> ByteSet {
    0xffu128 << (g.index() * 8)
}

/// The bytes of `g` covered by a read at width `w`.
pub fn read_bytes(g: Gpr, w: Width) -> ByteSet {
    let m: u128 = match w {
        Width::W8 => 0x01,
        Width::W16 => 0x03,
        Width::W32 => 0x0f,
        Width::W64 => 0xff,
    };
    m << (g.index() * 8)
}

/// The bytes of `g` overwritten by a write at width `w`, per
/// [`merge_write`](crate::reg::merge_write): 32-bit writes zero-extend
/// and therefore kill all eight bytes.
pub fn kill_bytes(g: Gpr, w: Width) -> ByteSet {
    let m: u128 = match w {
        Width::W8 => 0x01,
        Width::W16 => 0x03,
        Width::W32 | Width::W64 => 0xff,
    };
    m << (g.index() * 8)
}

/// Caller-saved registers clobbered by a `call` under System-V.
const CALLER_SAVED: [Gpr; 9] = [
    Gpr::Rax,
    Gpr::Rcx,
    Gpr::Rdx,
    Gpr::Rsi,
    Gpr::Rdi,
    Gpr::R8,
    Gpr::R9,
    Gpr::R10,
    Gpr::R11,
];

fn operand_reads(op: &Operand, w: Width, set: &mut ByteSet) {
    match op {
        Operand::Reg(r) => *set |= read_bytes(r.gpr, w),
        Operand::Mem(m) => {
            // Address arithmetic consumes the full 64-bit register.
            for g in m.regs_read() {
                *set |= reg_bytes(g);
            }
        }
        Operand::Imm(_) => {}
    }
}

/// The register bytes read by one instruction, including implicit
/// operands and ABI effects (`call` reads the argument registers in
/// full, `ret` reads `%rax`).  Reads are at access width; address
/// registers are always read in full.
pub fn inst_reads(inst: &Inst) -> ByteSet {
    let mut set: ByteSet = 0;
    match inst {
        Inst::Mov { w, src, dst } => {
            operand_reads(src, *w, &mut set);
            if let Operand::Mem(m) = dst {
                for g in m.regs_read() {
                    set |= reg_bytes(g);
                }
            }
        }
        Inst::Movsx { src_w, src, .. } | Inst::Movzx { src_w, src, .. } => {
            operand_reads(src, *src_w, &mut set);
        }
        Inst::Lea { mem, .. } => {
            for g in mem.regs_read() {
                set |= reg_bytes(g);
            }
        }
        Inst::Alu { w, src, dst, .. } => {
            operand_reads(src, *w, &mut set);
            operand_reads(dst, *w, &mut set); // read-modify-write
        }
        Inst::Imul { w, src, dst } => {
            operand_reads(src, *w, &mut set);
            set |= read_bytes(dst.gpr, *w);
        }
        Inst::Unary { w, dst, .. } => operand_reads(dst, *w, &mut set),
        Inst::Shift { w, amount, dst, .. } => {
            if matches!(amount, ShiftAmount::Cl) {
                set |= read_bytes(Gpr::Rcx, Width::W8);
            }
            operand_reads(dst, *w, &mut set);
        }
        Inst::Cqo { w } => set |= read_bytes(Gpr::Rax, *w),
        Inst::Idiv { w, src } => {
            set |= read_bytes(Gpr::Rax, *w);
            set |= read_bytes(Gpr::Rdx, *w);
            operand_reads(src, *w, &mut set);
        }
        Inst::Cmp { w, src, dst } | Inst::Test { w, src, dst } => {
            operand_reads(src, *w, &mut set);
            operand_reads(dst, *w, &mut set);
        }
        Inst::Setcc { dst, .. } => {
            if let Operand::Mem(m) = dst {
                for g in m.regs_read() {
                    set |= reg_bytes(g);
                }
            }
        }
        Inst::Push { src } => {
            operand_reads(src, Width::W64, &mut set);
            set |= reg_bytes(Gpr::Rsp);
        }
        Inst::Pop { dst } => {
            if let Operand::Mem(m) = dst {
                for g in m.regs_read() {
                    set |= reg_bytes(g);
                }
            }
            set |= reg_bytes(Gpr::Rsp);
        }
        Inst::MovqToXmm { src, .. } | Inst::Pinsrq { src, .. } => {
            operand_reads(src, Width::W64, &mut set);
        }
        Inst::Call { .. } => {
            // Conservative: the callee may consume any argument register
            // at any width.
            for g in ARG_GPRS {
                set |= reg_bytes(g);
            }
        }
        Inst::Ret => set |= reg_bytes(Gpr::Rax),
        Inst::Jmp { .. }
        | Inst::Jcc { .. }
        | Inst::MovqFromXmm { .. }
        | Inst::Pextrq { .. }
        | Inst::Vinserti128 { .. }
        | Inst::Vpxor { .. }
        | Inst::Vptest { .. }
        | Inst::Vpxor128 { .. }
        | Inst::Vptest128 { .. }
        | Inst::Vinserti64x4 { .. }
        | Inst::Vpxor512 { .. }
        | Inst::Vptest512 { .. }
        | Inst::Nop => {}
    }
    set
}

/// The register bytes fully overwritten by one instruction (the kill
/// set), per [`merge_write`](crate::reg::merge_write) semantics,
/// including implicit `%rsp` updates and `call` clobbering every
/// caller-saved register.
pub fn inst_kills(inst: &Inst) -> ByteSet {
    let mut set: ByteSet = 0;
    match inst.dest_class() {
        crate::inst::DestClass::Gpr(r) => set |= kill_bytes(r.gpr, r.width),
        crate::inst::DestClass::RaxRdxPair(w) => {
            set |= kill_bytes(Gpr::Rax, w);
            set |= kill_bytes(Gpr::Rdx, w);
        }
        _ => {}
    }
    match inst {
        Inst::Push { .. } | Inst::Pop { .. } | Inst::Call { .. } | Inst::Ret => {
            set |= reg_bytes(Gpr::Rsp);
        }
        _ => {}
    }
    if matches!(inst, Inst::Call { .. }) {
        for g in CALLER_SAVED {
            set |= reg_bytes(g);
        }
    }
    set
}

/// Byte-granular liveness facts for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Register bytes live on entry to each block.
    pub live_in: Vec<ByteSet>,
    /// Register bytes live on exit from each block.
    pub live_out: Vec<ByteSet>,
}

impl Liveness {
    /// Computes block-level liveness for `f` using `cfg`.
    ///
    /// Calls are treated as reading the argument registers and
    /// clobbering the caller-saved set, and `ret` as reading `%rax`
    /// (the return value) — both conservative.
    pub fn compute(f: &AsmFunction, cfg: &Cfg) -> Liveness {
        let n = f.blocks.len();
        let mut use_set = vec![0 as ByteSet; n];
        let mut def_set = vec![0 as ByteSet; n];
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut defs: ByteSet = 0;
            let mut uses: ByteSet = 0;
            for ai in &b.insts {
                uses |= inst_reads(&ai.inst) & !defs;
                defs |= inst_kills(&ai.inst);
            }
            use_set[bi] = uses;
            def_set[bi] = defs;
        }

        let mut live_in = vec![0 as ByteSet; n];
        let mut live_out = vec![0 as ByteSet; n];
        let order = cfg.reverse_post_order();
        let mut changed = true;
        while changed {
            changed = false;
            for &bi in order.iter().rev() {
                let mut out: ByteSet = 0;
                for &s in &cfg.succs[bi] {
                    out |= live_in[s];
                }
                let inp = use_set[bi] | (out & !def_set[bi]);
                if out != live_out[bi] || inp != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inp;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// True if any byte of `g` is live on entry to block `bi`
    /// (conservative whole-register view).
    pub fn live_in_contains(&self, bi: usize, g: Gpr) -> bool {
        self.live_in[bi] & reg_bytes(g) != 0
    }

    /// True if any byte of `g` is live on exit from block `bi`
    /// (conservative whole-register view).
    pub fn live_out_contains(&self, bi: usize, g: Gpr) -> bool {
        self.live_out[bi] & reg_bytes(g) != 0
    }

    /// True if byte `byte` of `g` is live on entry to block `bi`.
    pub fn live_in_contains_byte(&self, bi: usize, g: Gpr, byte: u8) -> bool {
        self.live_in[bi] & byte_bit(g, byte) != 0
    }

    /// True if byte `byte` of `g` is live on exit from block `bi`.
    pub fn live_out_contains_byte(&self, bi: usize, g: Gpr, byte: u8) -> bool {
        self.live_out[bi] & byte_bit(g, byte) != 0
    }

    /// The register bytes live **immediately after** each instruction of
    /// block `bi` — i.e. `result[i]` is the live set at the fault
    /// injector's write-back point of instruction `i`.  Computed by one
    /// backward sweep from the block's `live_out`.
    pub fn live_after_each(&self, f: &AsmFunction, bi: usize) -> Vec<ByteSet> {
        let insts = &f.blocks[bi].insts;
        let mut after = vec![0 as ByteSet; insts.len()];
        let mut live = self.live_out[bi];
        for (i, ai) in insts.iter().enumerate().rev() {
            after[i] = live;
            live = inst_reads(&ai.inst) | (live & !inst_kills(&ai.inst));
        }
        after
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Cc;
    use crate::inst::{AluOp, Inst};
    use crate::operand::Operand;
    use crate::program::{AsmBlock, AsmFunction};
    use crate::provenance::Provenance;
    use crate::reg::{Reg, Width};

    fn block(label: &str, insts: Vec<Inst>) -> AsmBlock {
        let mut b = AsmBlock::new(label);
        for i in insts {
            b.push(i, Provenance::Synthetic);
        }
        b
    }

    fn mov_imm(dst: Gpr, v: i64) -> Inst {
        Inst::Mov {
            w: Width::W64,
            src: Operand::Imm(v),
            dst: Operand::Reg(Reg::q(dst)),
        }
    }

    fn add_rr(src: Gpr, dst: Gpr) -> Inst {
        Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            src: Operand::Reg(Reg::q(src)),
            dst: Operand::Reg(Reg::q(dst)),
        }
    }

    #[test]
    fn value_defined_in_pred_used_in_succ_is_live_across() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![mov_imm(Gpr::Rbx, 1)]));
        f.blocks
            .push(block("b", vec![add_rr(Gpr::Rbx, Gpr::Rax), Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_out_contains(0, Gpr::Rbx));
        assert!(lv.live_in_contains(1, Gpr::Rbx));
        // rbx defined in a, so not live-in there.
        assert!(!lv.live_in_contains(0, Gpr::Rbx));
    }

    #[test]
    fn dead_register_is_not_live() {
        let mut f = AsmFunction::new("main");
        f.blocks
            .push(block("a", vec![mov_imm(Gpr::R10, 7), Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.live_out_contains(0, Gpr::R10));
    }

    #[test]
    fn loop_keeps_induction_register_live() {
        // a: mov rbx,0 ; b: add rbx,rax; jne b ; c: ret
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![mov_imm(Gpr::Rbx, 0)]));
        f.blocks.push(block(
            "b",
            vec![
                add_rr(Gpr::Rbx, Gpr::Rax),
                Inst::Jcc {
                    cc: Cc::Ne,
                    target: "b".into(),
                },
            ],
        ));
        f.blocks.push(block("c", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_in_contains(1, Gpr::Rbx));
        assert!(lv.live_out_contains(1, Gpr::Rbx)); // back edge keeps it live
    }

    #[test]
    fn multi_block_loop_back_edge_keeps_loop_carried_register_live() {
        // pre: mov rbx,0        (loop-carried accumulator)
        // head: jcc exit
        // body: add rax,rbx     (uses + redefines rbx)
        // latch: jmp head       (back-edge)
        // exit: ret
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("pre", vec![mov_imm(Gpr::Rbx, 0)]));
        f.blocks.push(block(
            "head",
            vec![Inst::Jcc {
                cc: Cc::E,
                target: "exit".into(),
            }],
        ));
        f.blocks
            .push(block("body", vec![add_rr(Gpr::Rax, Gpr::Rbx)]));
        f.blocks.push(block(
            "latch",
            vec![Inst::Jmp {
                target: "head".into(),
            }],
        ));
        f.blocks.push(block("exit", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        // The back-edge latch -> head must carry rbx's liveness all the
        // way around the loop even though the use is two blocks away.
        assert!(lv.live_out_contains(3, Gpr::Rbx), "latch live-out");
        assert!(lv.live_in_contains(3, Gpr::Rbx), "latch live-in");
        assert!(lv.live_in_contains(1, Gpr::Rbx), "head live-in");
        assert!(lv.live_out_contains(0, Gpr::Rbx), "preheader live-out");
        // rax is read by body and by ret, so it also circulates.
        assert!(lv.live_in_contains(2, Gpr::Rax));
    }

    #[test]
    fn register_dead_after_loop_body_redefinition_each_iteration() {
        // head: jcc exit ; body: mov r10,5; add r10,rbx ; latch: jmp head
        // r10 is freshly defined every iteration, never live across the
        // back-edge.
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "head",
            vec![Inst::Jcc {
                cc: Cc::E,
                target: "exit".into(),
            }],
        ));
        f.blocks.push(block(
            "body",
            vec![mov_imm(Gpr::R10, 5), add_rr(Gpr::R10, Gpr::Rbx)],
        ));
        f.blocks.push(block(
            "latch",
            vec![Inst::Jmp {
                target: "head".into(),
            }],
        ));
        f.blocks.push(block("exit", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.live_in_contains(1, Gpr::R10), "body defines r10 first");
        assert!(!lv.live_out_contains(2, Gpr::R10), "not live on back-edge");
        // But the accumulator rbx IS loop-carried.
        assert!(lv.live_out_contains(2, Gpr::Rbx));
        assert!(lv.live_in_contains(0, Gpr::Rbx));
    }

    #[test]
    fn ret_keeps_rax_live() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![mov_imm(Gpr::Rax, 3)]));
        f.blocks.push(block("b", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_in_contains(1, Gpr::Rax));
        assert!(lv.live_out_contains(0, Gpr::Rax));
    }

    #[test]
    fn call_clobbers_caller_saved() {
        // r10 defined before call, "used" after — but the call kills it,
        // so it is NOT live into the block before the use... we model the
        // call as defining r10, hence the use after the call sees the
        // call's def, not the earlier one.
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "a",
            vec![
                mov_imm(Gpr::R10, 1),
                Inst::Call {
                    target: "print_i64".into(),
                },
            ],
        ));
        f.blocks
            .push(block("b", vec![add_rr(Gpr::R10, Gpr::Rax), Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        // b needs r10 live-in...
        assert!(lv.live_in_contains(1, Gpr::R10));
        // ...but block a defines it via the call clobber, so a's live-in
        // does not include r10.
        assert!(!lv.live_in_contains(0, Gpr::R10));
    }

    // ---- byte-granularity regression tests -------------------------

    #[test]
    fn sete_partial_def_does_not_kill_upper_bytes() {
        // mov rbx, 1 ; sete %bl ; mov (store) rbx — the W8 def merges,
        // so bytes 1..8 of rbx flow from the first mov THROUGH the sete.
        // The old whole-register analysis treated sete as a full kill
        // and called rbx dead before it (unsound for byte faults).
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "a",
            vec![
                mov_imm(Gpr::Rbx, 1),
                Inst::Setcc {
                    cc: Cc::E,
                    dst: Operand::Reg(Reg::b(Gpr::Rbx)),
                },
            ],
        ));
        f.blocks.push(block(
            "b",
            vec![
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Reg(Reg::q(Gpr::Rbx)),
                    dst: Operand::Reg(Reg::q(Gpr::Rax)),
                },
                Inst::Ret,
            ],
        ));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        // Upper bytes survive the sete: live out of block a's mov even
        // though byte 0 is redefined.
        for byte in 1..8 {
            assert!(
                lv.live_in_contains(0, Gpr::Rbx) || !lv.live_in_contains_byte(0, Gpr::Rbx, byte),
                "sanity"
            );
        }
        let after = lv.live_after_each(&f, 0);
        // After the first mov, ALL bytes of rbx are live (byte 0 reaches
        // the sete's merge, bytes 1..8 reach the W64 read in block b).
        for byte in 1..8 {
            assert!(
                after[0] & byte_bit(Gpr::Rbx, byte) != 0,
                "byte {byte} must survive the W8 partial def"
            );
        }
        // Whole-register wrapper agrees (conservative).
        assert!(lv.live_out_contains(0, Gpr::Rbx));
    }

    #[test]
    fn movslq_w32_read_leaves_upper_source_bytes_dead() {
        // movslq %ecx, %rax reads only bytes 0..4 of rcx: a fault in
        // rcx byte 5 before it is masked if nothing else reads rcx.
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "a",
            vec![
                mov_imm(Gpr::Rcx, 7),
                Inst::Movsx {
                    src_w: Width::W32,
                    dst_w: Width::W64,
                    src: Operand::Reg(Reg::l(Gpr::Rcx)),
                    dst: Reg::q(Gpr::Rax),
                },
                Inst::Ret,
            ],
        ));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let after = lv.live_after_each(&f, 0);
        // After the mov that defines rcx: low four bytes live (movslq
        // reads them), high four dead.
        for byte in 0..4 {
            assert!(after[0] & byte_bit(Gpr::Rcx, byte) != 0, "low byte {byte}");
        }
        for byte in 4..8 {
            assert!(after[0] & byte_bit(Gpr::Rcx, byte) == 0, "high byte {byte}");
        }
        // The conservative whole-register view still reports rcx live.
        assert!(lv.live_in_contains(0, Gpr::Rcx) || after[0] & reg_bytes(Gpr::Rcx) != 0);
    }

    #[test]
    fn w32_write_kills_upper_bytes_by_zero_extension() {
        // mov rbx, -1 ; movl $5, %ebx ; use rbx — the W32 write
        // zero-extends, so the original upper bytes never reach the use.
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "a",
            vec![
                mov_imm(Gpr::Rbx, -1),
                Inst::Mov {
                    w: Width::W32,
                    src: Operand::Imm(5),
                    dst: Operand::Reg(Reg::l(Gpr::Rbx)),
                },
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Reg(Reg::q(Gpr::Rbx)),
                    dst: Operand::Reg(Reg::q(Gpr::Rax)),
                },
                Inst::Ret,
            ],
        ));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let after = lv.live_after_each(&f, 0);
        // Nothing of rbx survives past the W32 redefinition.
        assert_eq!(after[0] & reg_bytes(Gpr::Rbx), 0);
        // After the W32 write all eight bytes are live (W64 read next).
        assert_eq!(after[1] & reg_bytes(Gpr::Rbx), reg_bytes(Gpr::Rbx));
    }

    #[test]
    fn w16_write_merges_and_preserves_upper_liveness() {
        // mov rbx, imm ; movw $5, %bx ; movq %rbx, %rax — bytes 2..8
        // flow through the W16 merge; bytes 0..2 are killed by it.
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "a",
            vec![
                mov_imm(Gpr::Rbx, 0x1234_5678),
                Inst::Mov {
                    w: Width::W16,
                    src: Operand::Imm(5),
                    dst: Operand::Reg(Reg::gpr(Gpr::Rbx, Width::W16)),
                },
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Reg(Reg::q(Gpr::Rbx)),
                    dst: Operand::Reg(Reg::q(Gpr::Rax)),
                },
                Inst::Ret,
            ],
        ));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let after = lv.live_after_each(&f, 0);
        for byte in 0..2 {
            assert!(
                after[0] & byte_bit(Gpr::Rbx, byte) == 0,
                "byte {byte} killed by W16 write"
            );
        }
        for byte in 2..8 {
            assert!(
                after[0] & byte_bit(Gpr::Rbx, byte) != 0,
                "byte {byte} flows through the merge"
            );
        }
    }

    #[test]
    fn live_after_each_matches_block_boundaries() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![mov_imm(Gpr::Rbx, 1)]));
        f.blocks
            .push(block("b", vec![add_rr(Gpr::Rbx, Gpr::Rax), Inst::Ret]));
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let after_a = lv.live_after_each(&f, 0);
        // The live set after a block's last instruction is its live_out.
        assert_eq!(*after_a.last().unwrap(), lv.live_out[0]);
    }
}
