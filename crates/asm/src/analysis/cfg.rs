//! Intra-function control-flow graph over labelled blocks.

use std::collections::HashMap;

use crate::program::AsmFunction;

/// Successor/predecessor relation between a function's blocks.
///
/// Block indices refer to positions in [`AsmFunction::blocks`].  A
/// conditional jump mid-block contributes an edge to its target *and* the
/// block continues; the block's final fall-through or terminator decides
/// the remaining edges.  Edges to `exit_function` (the detector) are not
/// recorded — detection ends the program.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `succs[b]` = indices of blocks reachable from block `b` in one step.
    pub succs: Vec<Vec<usize>>,
    /// `preds[b]` = indices of blocks from which `b` is reachable in one
    /// step.
    pub preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds the CFG of `f`.
    pub fn build(f: &AsmFunction) -> Cfg {
        let label_to_idx: HashMap<&str, usize> = f
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.label.as_str(), i))
            .collect();
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut falls_through = true;
            for ai in &b.insts {
                match &ai.inst {
                    crate::inst::Inst::Jmp { target } => {
                        if let Some(&t) = label_to_idx.get(target.as_str()) {
                            succs[bi].push(t);
                        }
                        falls_through = false;
                    }
                    crate::inst::Inst::Jcc { target, .. } => {
                        if let Some(&t) = label_to_idx.get(target.as_str()) {
                            if !succs[bi].contains(&t) {
                                succs[bi].push(t);
                            }
                        }
                    }
                    crate::inst::Inst::Ret => {
                        falls_through = false;
                    }
                    _ => {}
                }
            }
            if falls_through && bi + 1 < n && !succs[bi].contains(&(bi + 1)) {
                succs[bi].push(bi + 1);
            }
        }
        let mut preds = vec![Vec::new(); n];
        for (bi, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(bi);
            }
        }
        Cfg { succs, preds }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if the function has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Blocks in reverse post-order from the entry (useful for dataflow).
    pub fn reverse_post_order(&self) -> Vec<usize> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (node, next-succ-index).
        let mut stack = vec![(0usize, 0usize)];
        visited[0] = true;
        while let Some(frame) = stack.last_mut() {
            let node = frame.0;
            if frame.1 < self.succs[node].len() {
                let s = self.succs[node][frame.1];
                frame.1 += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Cc;
    use crate::inst::Inst;
    use crate::program::{AsmBlock, AsmFunction};
    use crate::provenance::Provenance;

    fn block(label: &str, insts: Vec<Inst>) -> AsmBlock {
        let mut b = AsmBlock::new(label);
        for i in insts {
            b.push(i, Provenance::Synthetic);
        }
        b
    }

    fn diamond() -> AsmFunction {
        // entry -> (then | else) -> join
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "entry",
            vec![Inst::Jcc {
                cc: Cc::E,
                target: "then".into(),
            }],
        ));
        f.blocks.push(block(
            "else",
            vec![Inst::Jmp {
                target: "join".into(),
            }],
        ));
        f.blocks.push(block("then", vec![Inst::Nop]));
        f.blocks.push(block("join", vec![Inst::Ret]));
        f
    }

    #[test]
    fn diamond_edges() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        // entry (0) -> then (2) via jcc, -> else (1) via fall-through
        assert_eq!(cfg.succs[0], vec![2, 1]);
        // else (1) -> join (3)
        assert_eq!(cfg.succs[1], vec![3]);
        // then (2) falls through to join (3)
        assert_eq!(cfg.succs[2], vec![3]);
        // join (3) returns
        assert!(cfg.succs[3].is_empty());
        assert_eq!(cfg.preds[3], vec![1, 2]);
    }

    #[test]
    fn ret_has_no_fallthrough() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![Inst::Ret]));
        f.blocks.push(block("b", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        assert!(cfg.succs[0].is_empty());
    }

    #[test]
    fn jump_to_exit_function_is_not_an_edge() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "a",
            vec![
                Inst::Jcc {
                    cc: Cc::Ne,
                    target: "exit_function".into(),
                },
                Inst::Ret,
            ],
        ));
        let cfg = Cfg::build(&f);
        assert!(cfg.succs[0].is_empty());
    }

    #[test]
    fn reverse_post_order_starts_at_entry() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 4);
        // join must come after both then and else.
        let pos = |b: usize| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(3) > pos(1) && pos(3) > pos(2));
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![Inst::Ret]));
        f.blocks.push(block("dead", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.reverse_post_order(), vec![0]);
    }

    #[test]
    fn empty_function() {
        let f = AsmFunction::new("main");
        let cfg = Cfg::build(&f);
        assert!(cfg.is_empty());
        assert_eq!(cfg.len(), 0);
        assert!(cfg.reverse_post_order().is_empty());
    }
}
