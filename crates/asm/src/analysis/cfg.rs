//! Intra-function control-flow graph over labelled blocks.

use std::collections::HashMap;

use crate::program::AsmFunction;

/// Successor/predecessor relation between a function's blocks.
///
/// Block indices refer to positions in [`AsmFunction::blocks`].  A
/// conditional jump mid-block contributes an edge to its target *and* the
/// block continues; the block's final fall-through or terminator decides
/// the remaining edges.  Edges to `exit_function` (the detector) are not
/// recorded — detection ends the program.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `succs[b]` = indices of blocks reachable from block `b` in one step.
    pub succs: Vec<Vec<usize>>,
    /// `preds[b]` = indices of blocks from which `b` is reachable in one
    /// step.
    pub preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds the CFG of `f`.
    pub fn build(f: &AsmFunction) -> Cfg {
        let label_to_idx: HashMap<&str, usize> = f
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.label.as_str(), i))
            .collect();
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut falls_through = true;
            for ai in &b.insts {
                match &ai.inst {
                    crate::inst::Inst::Jmp { target } => {
                        if let Some(&t) = label_to_idx.get(target.as_str()) {
                            succs[bi].push(t);
                        }
                        falls_through = false;
                    }
                    crate::inst::Inst::Jcc { target, .. } => {
                        if let Some(&t) = label_to_idx.get(target.as_str()) {
                            if !succs[bi].contains(&t) {
                                succs[bi].push(t);
                            }
                        }
                    }
                    crate::inst::Inst::Ret => {
                        falls_through = false;
                    }
                    _ => {}
                }
                // Instructions after an unconditional terminator are dead
                // code: they can neither add edges nor re-enable
                // fall-through.
                if !falls_through {
                    break;
                }
            }
            if falls_through && bi + 1 < n && !succs[bi].contains(&(bi + 1)) {
                succs[bi].push(bi + 1);
            }
        }
        let mut preds = vec![Vec::new(); n];
        for (bi, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(bi);
            }
        }
        Cfg { succs, preds }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if the function has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Blocks in reverse post-order from the entry (useful for dataflow).
    ///
    /// Contract: only blocks *reachable from the entry block* (index 0)
    /// appear in the order.  Blocks with no path from the entry are
    /// omitted — dataflow clients that must visit every block should
    /// append [`Cfg::unreachable_blocks`], which is disjoint from this
    /// order and together with it covers all block indices.
    pub fn reverse_post_order(&self) -> Vec<usize> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (node, next-succ-index).
        let mut stack = vec![(0usize, 0usize)];
        visited[0] = true;
        while let Some(frame) = stack.last_mut() {
            let node = frame.0;
            if frame.1 < self.succs[node].len() {
                let s = self.succs[node][frame.1];
                frame.1 += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    /// Blocks with no path from the entry block, in ascending index
    /// order.  Complements [`Cfg::reverse_post_order`]: every block index
    /// is in exactly one of the two sequences.
    pub fn unreachable_blocks(&self) -> Vec<usize> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut reachable = vec![false; n];
        for b in self.reverse_post_order() {
            reachable[b] = true;
        }
        (0..n).filter(|&b| !reachable[b]).collect()
    }

    /// Immediate dominators, computed with the iterative
    /// Cooper–Harvey–Kennedy algorithm over the reverse post-order.
    ///
    /// `idom[b]` is the immediate dominator of block `b`; the entry block
    /// dominates itself (`idom[0] == Some(0)`), and unreachable blocks
    /// have `idom[b] == None`.
    pub fn dominators(&self) -> Dominators {
        let n = self.len();
        let mut idom: Vec<Option<usize>> = vec![None; n];
        if n == 0 {
            return Dominators { idom };
        }
        let rpo = self.reverse_post_order();
        // Position of each block in the RPO; unreachable blocks keep
        // usize::MAX and are never consulted.
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }
        idom[0] = Some(0);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &self.preds[b] {
                    if idom[p].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(cur, p, &idom, &rpo_pos),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }
}

/// Walks two dominator-tree ancestries up to their common ancestor.
fn intersect(a: usize, b: usize, idom: &[Option<usize>], rpo_pos: &[usize]) -> usize {
    let (mut x, mut y) = (a, b);
    while x != y {
        while rpo_pos[x] > rpo_pos[y] {
            x = idom[x].expect("reachable block has an idom");
        }
        while rpo_pos[y] > rpo_pos[x] {
            y = idom[y].expect("reachable block has an idom");
        }
    }
    x
}

/// Dominator tree of a [`Cfg`] (see [`Cfg::dominators`]).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of block `b` (`None` when `b` is
    /// unreachable from the entry; the entry maps to itself).
    pub idom: Vec<Option<usize>>,
}

impl Dominators {
    /// True if block `a` dominates block `b` (every path from the entry
    /// to `b` passes through `a`).  Reflexive; for an unreachable `b` the
    /// only dominator reported is `b` itself.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Cc;
    use crate::inst::Inst;
    use crate::program::{AsmBlock, AsmFunction};
    use crate::provenance::Provenance;

    fn block(label: &str, insts: Vec<Inst>) -> AsmBlock {
        let mut b = AsmBlock::new(label);
        for i in insts {
            b.push(i, Provenance::Synthetic);
        }
        b
    }

    fn diamond() -> AsmFunction {
        // entry -> (then | else) -> join
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "entry",
            vec![Inst::Jcc {
                cc: Cc::E,
                target: "then".into(),
            }],
        ));
        f.blocks.push(block(
            "else",
            vec![Inst::Jmp {
                target: "join".into(),
            }],
        ));
        f.blocks.push(block("then", vec![Inst::Nop]));
        f.blocks.push(block("join", vec![Inst::Ret]));
        f
    }

    #[test]
    fn diamond_edges() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        // entry (0) -> then (2) via jcc, -> else (1) via fall-through
        assert_eq!(cfg.succs[0], vec![2, 1]);
        // else (1) -> join (3)
        assert_eq!(cfg.succs[1], vec![3]);
        // then (2) falls through to join (3)
        assert_eq!(cfg.succs[2], vec![3]);
        // join (3) returns
        assert!(cfg.succs[3].is_empty());
        assert_eq!(cfg.preds[3], vec![1, 2]);
    }

    #[test]
    fn ret_has_no_fallthrough() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![Inst::Ret]));
        f.blocks.push(block("b", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        assert!(cfg.succs[0].is_empty());
    }

    #[test]
    fn jump_to_exit_function_is_not_an_edge() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "a",
            vec![
                Inst::Jcc {
                    cc: Cc::Ne,
                    target: "exit_function".into(),
                },
                Inst::Ret,
            ],
        ));
        let cfg = Cfg::build(&f);
        assert!(cfg.succs[0].is_empty());
    }

    #[test]
    fn reverse_post_order_starts_at_entry() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 4);
        // join must come after both then and else.
        let pos = |b: usize| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(3) > pos(1) && pos(3) > pos(2));
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![Inst::Ret]));
        f.blocks.push(block("dead", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.reverse_post_order(), vec![0]);
    }

    #[test]
    fn dead_tail_after_jmp_adds_no_edges() {
        // Garbage after an unconditional jmp must not create edges or
        // re-enable fall-through.
        let mut f = AsmFunction::new("main");
        f.blocks.push(block(
            "a",
            vec![
                Inst::Jmp { target: "c".into() },
                // Dead tail: a conditional jump and plain instructions.
                Inst::Jcc { cc: Cc::E, target: "b".into() },
                Inst::Nop,
            ],
        ));
        f.blocks.push(block("b", vec![Inst::Ret]));
        f.blocks.push(block("c", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        // Only the jmp edge; no edge to "b", no fall-through to "b".
        assert_eq!(cfg.succs[0], vec![2]);
        assert!(cfg.preds[1].is_empty());
    }

    #[test]
    fn dead_tail_after_ret_does_not_fall_through() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![Inst::Ret, Inst::Nop]));
        f.blocks.push(block("b", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        assert!(cfg.succs[0].is_empty());
    }

    #[test]
    fn orphan_block_reported_by_unreachable_blocks() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![Inst::Jmp { target: "c".into() }]));
        f.blocks.push(block("orphan", vec![Inst::Ret]));
        f.blocks.push(block("c", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        let rpo = cfg.reverse_post_order();
        let unreachable = cfg.unreachable_blocks();
        assert_eq!(rpo, vec![0, 2]);
        assert_eq!(unreachable, vec![1]);
        // Together they partition the block indices.
        let mut all: Vec<usize> = rpo.iter().chain(&unreachable).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn unreachable_blocks_empty_for_fully_connected_cfg() {
        let cfg = Cfg::build(&diamond());
        assert!(cfg.unreachable_blocks().is_empty());
    }

    #[test]
    fn dominators_of_diamond() {
        // entry (0) -> then (2) | else (1) -> join (3)
        let cfg = Cfg::build(&diamond());
        let dom = cfg.dominators();
        assert_eq!(dom.idom[0], Some(0));
        assert_eq!(dom.idom[1], Some(0));
        assert_eq!(dom.idom[2], Some(0));
        // join is reached from both arms: its idom is the entry.
        assert_eq!(dom.idom[3], Some(0));
        assert!(dom.dominates(0, 3));
        assert!(!dom.dominates(1, 3));
        assert!(!dom.dominates(2, 3));
        assert!(dom.dominates(3, 3));
    }

    #[test]
    fn dominators_of_chain_and_loop() {
        // a -> b -> c, with a back-edge c -> b.
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![Inst::Nop]));
        f.blocks.push(block("b", vec![Inst::Nop]));
        f.blocks.push(block(
            "c",
            vec![Inst::Jcc { cc: Cc::Ne, target: "b".into() }, Inst::Ret],
        ));
        let cfg = Cfg::build(&f);
        let dom = cfg.dominators();
        assert_eq!(dom.idom[1], Some(0));
        assert_eq!(dom.idom[2], Some(1));
        assert!(dom.dominates(1, 2));
        assert!(!dom.dominates(2, 1));
    }

    #[test]
    fn dominators_unreachable_block_has_none() {
        let mut f = AsmFunction::new("main");
        f.blocks.push(block("a", vec![Inst::Ret]));
        f.blocks.push(block("dead", vec![Inst::Ret]));
        let cfg = Cfg::build(&f);
        let dom = cfg.dominators();
        assert_eq!(dom.idom[1], None);
        assert!(!dom.dominates(0, 1));
    }

    #[test]
    fn empty_function() {
        let f = AsmFunction::new("main");
        let cfg = Cfg::build(&f);
        assert!(cfg.is_empty());
        assert_eq!(cfg.len(), 0);
        assert!(cfg.reverse_post_order().is_empty());
    }
}
