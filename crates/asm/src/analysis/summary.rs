//! Per-function fault-propagation interface summaries (FastFlip-style).
//!
//! The coverage analysis (PR 4) classifies every injectable site of a
//! function in isolation: its scan stops at the first block boundary
//! and returns `Unknown` whenever live taint survives past it.  This
//! module goes one step further and computes, for every site byte, the
//! **architectural footprint through which the fault can escape the
//! function boundary**: which live-out GPR bytes, SIMD registers,
//! RFLAGS, and memory regions can still differ from the golden run
//! when control leaves the function.  A caller-side composition rule
//! (`ferrum_faultsim::compose`) then maps these footprints through the
//! liveness at each call site to lift per-function verdicts to
//! whole-program ones — FastFlip's "compose per-section injection
//! results" idea applied to FERRUM's byte-exact site model.
//!
//! # Soundness doctrine
//!
//! The escape scan inherits the coverage analysis's exact-taint rules
//! wholesale ([`coverage`](super::coverage) module docs): it tracks
//! the exact set of bytes differing from golden, propagates only
//! through exactness-preserving operations, and *widens to the full
//! footprint* the moment exactness would be lost (tainted stores,
//! arithmetic, calls with live taint, budget overflow).  The footprint
//! is therefore a superset of anything a dynamic fault at that site
//! can corrupt at function exit, and the summary never contradicts the
//! coverage verdict — it only refines `Unknown` with escape
//! information.  Where coverage bails at the first block boundary, the
//! escape scan keeps following the CFG (both arms of application
//! branches, jump targets, fall-throughs) until every path has
//! converged, escaped, or widened.

use std::collections::BTreeMap;

use crate::analysis::coverage::{
    protection_step, simd_reads, simd_writes, CoverageMap, SiteCoverage, StaticVerdict, Step, Taint,
};
use crate::analysis::liveness::{byte_bit, inst_kills, inst_reads, reg_bytes, ByteSet};
use crate::inst::{DestClass, Inst};
use crate::printer::print_inst;
use crate::program::{AsmFunction, AsmProgram};
use crate::provenance::Provenance;
use crate::reg::Gpr;
use crate::{EXIT_FUNCTION, PRINT_I64};

/// The architectural state through which a fault can leave a function.
///
/// The footprint is an over-approximation: a set bit means the fault
/// *may* escape through that byte/register, a clear bit means it
/// provably cannot.  [`EscapeFootprint::full`] is the absorbing "lost
/// exactness" element.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EscapeFootprint {
    /// GPR bytes that may differ at function exit (same packing as
    /// [`ByteSet`]).
    pub gpr: ByteSet,
    /// SIMD registers (bit per register index) that may differ at
    /// function exit.
    pub simd: u16,
    /// RFLAGS may differ at exit.
    pub flags: bool,
    /// Memory written by the function may differ (includes the output
    /// stream: a corrupted `print_i64` argument widens to full).
    pub mem: bool,
    /// Taint crossed into a callee the scan could not follow.
    pub callee: bool,
}

impl EscapeFootprint {
    /// The empty footprint: the fault provably converges inside the
    /// function on every path that does not detect.
    pub fn empty() -> EscapeFootprint {
        EscapeFootprint::default()
    }

    /// The full footprint: exactness was lost, anything may escape.
    pub fn full() -> EscapeFootprint {
        EscapeFootprint {
            gpr: ByteSet::MAX,
            simd: 0xffff,
            flags: true,
            mem: true,
            callee: false,
        }
    }

    /// True when nothing escapes.
    pub fn is_empty(&self) -> bool {
        self.gpr == 0 && self.simd == 0 && !self.flags && !self.mem && !self.callee
    }

    /// True when the footprint is the absorbing widened element.
    pub fn is_full(&self) -> bool {
        self.gpr == ByteSet::MAX && self.simd == 0xffff && self.flags && self.mem
    }

    /// True when the fault escapes only through general-purpose
    /// register bytes — the one shape the composition rule can map
    /// through caller-side liveness.
    pub fn register_only(&self) -> bool {
        self.gpr != 0 && self.simd == 0 && !self.flags && !self.mem && !self.callee
    }

    /// Union with another footprint.
    pub fn merge(&mut self, o: &EscapeFootprint) {
        self.gpr |= o.gpr;
        self.simd |= o.simd;
        self.flags |= o.flags;
        self.mem |= o.mem;
        self.callee |= o.callee;
    }
}

/// Summary of one verdict unit (one destination byte) of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitSummary {
    /// The coverage verdict, adopted verbatim (the summary never
    /// upgrades or downgrades it — soundness floor is PR 4's rules).
    pub verdict: StaticVerdict,
    /// What the fault can corrupt at function exit.
    pub escape: EscapeFootprint,
    /// Some explored path ends in a protection checker that fires.
    /// Load-bearing for composition: `Unknown` may be lifted to
    /// `Masked` only when the footprint is clean *and* no path
    /// detects (a detecting path yields `Detected`, not `Benign`).
    pub may_detect: bool,
}

/// Summary of one injectable site, mirroring [`SiteCoverage`] unit
/// for unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSummary {
    /// Flat program counter of the instruction.
    pub pc: usize,
    /// Injectable destination width in bits.
    pub bits: u32,
    /// Provenance of the instruction.
    pub prov: Provenance,
    /// One summary per destination byte, indexed like
    /// [`SiteCoverage::verdicts`].
    pub units: Vec<UnitSummary>,
}

/// Escape-class rollup over a function's units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EscapeRollup {
    /// Units whose footprint is empty (converge or detect in-function).
    pub clean: usize,
    /// Units escaping only through GPR bytes (composable).
    pub register: usize,
    /// Units with any wider escape (SIMD, flags, memory, callee).
    pub wide: usize,
    /// Units with at least one detecting path.
    pub may_detect: usize,
}

/// The fault-propagation interface summary of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSummary {
    /// Function name.
    pub name: String,
    /// Content hash of the function body (name, labels, instructions,
    /// provenance) — the incremental-campaign cache key.
    pub hash: u64,
    /// Flat pc of the function's first instruction.
    pub pc_start: usize,
    /// One past the flat pc of the function's last instruction.
    pub pc_end: usize,
    /// Per-site summaries, in program order.
    pub sites: Vec<SiteSummary>,
}

impl FunctionSummary {
    /// Escape-class rollup over all units.
    pub fn escape_rollup(&self) -> EscapeRollup {
        let mut r = EscapeRollup::default();
        for s in &self.sites {
            for u in &s.units {
                if u.escape.is_empty() {
                    r.clean += 1;
                } else if u.escape.register_only() {
                    r.register += 1;
                } else {
                    r.wide += 1;
                }
                if u.may_detect {
                    r.may_detect += 1;
                }
            }
        }
        r
    }
}

/// The whole-program summary map.
#[derive(Debug, Clone, Default)]
pub struct SummaryMap {
    /// Per-function summaries, in program order.
    pub functions: Vec<FunctionSummary>,
    /// Flat pc → (function index, site index).
    index: BTreeMap<usize, (u32, u32)>,
}

impl SummaryMap {
    /// Analyses `p` from scratch (computes a fresh [`CoverageMap`]).
    pub fn analyze(p: &AsmProgram) -> SummaryMap {
        SummaryMap::build(p, &CoverageMap::analyze(p))
    }

    /// Builds the summary on top of an existing coverage map (which
    /// must have been computed for the same program).
    pub fn build(p: &AsmProgram, coverage: &CoverageMap) -> SummaryMap {
        let mut map = SummaryMap::default();
        let mut pc = 0usize;
        for (f, fc) in p.functions.iter().zip(&coverage.functions) {
            debug_assert_eq!(f.name, fc.name);
            let fs = summarize_function(f, &fc.sites, &mut pc);
            let fi = map.functions.len() as u32;
            for (si, s) in fs.sites.iter().enumerate() {
                map.index.insert(s.pc, (fi, si as u32));
            }
            map.functions.push(fs);
        }
        map
    }

    /// The site summary at flat pc `pc`, if injectable.
    pub fn site(&self, pc: usize) -> Option<&SiteSummary> {
        let &(fi, si) = self.index.get(&pc)?;
        Some(&self.functions[fi as usize].sites[si as usize])
    }

    /// The function whose pc range contains `pc`.
    pub fn function_of_pc(&self, pc: usize) -> Option<&FunctionSummary> {
        self.functions
            .iter()
            .find(|f| f.pc_start <= pc && pc < f.pc_end)
    }

    /// The summary for the unit governing a fault at `(pc, raw_bit)`,
    /// mirroring [`SiteCoverage::verdict_for`].
    pub fn unit_at(&self, pc: usize, raw_bit: u16) -> Option<&UnitSummary> {
        let s = self.site(pc)?;
        if s.units.len() == 1 {
            return Some(&s.units[0]);
        }
        let bit = u32::from(raw_bit) % s.bits;
        Some(&s.units[(bit / 8) as usize])
    }

    /// Total number of summarized sites.
    pub fn total_sites(&self) -> usize {
        self.functions.iter().map(|f| f.sites.len()).sum()
    }
}

/// Content hash of a function body (FNV-1a over the printed
/// instructions, block labels and provenance tags).  This is the
/// incremental-campaign cache key: any textual change to the function
/// — including a provenance-only change, which can alter analysis
/// results — produces a different hash.
pub fn function_hash(f: &AsmFunction) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xff; // field separator
        h = h.wrapping_mul(PRIME);
    };
    write(f.name.as_bytes());
    for b in &f.blocks {
        write(b.label.as_bytes());
        for ai in &b.insts {
            write(print_inst(&ai.inst).as_bytes());
            write(format!("{:?}", ai.prov).as_bytes());
        }
    }
    h
}

/// Builds the summary for one function, advancing the flat `pc`
/// exactly like `coverage::analyze_function` does.
fn summarize_function(f: &AsmFunction, sites: &[SiteCoverage], pc: &mut usize) -> FunctionSummary {
    let pc_start = *pc;
    // Per-block live-after sets are not needed here: deadness was
    // already folded into the coverage verdicts, and the escape scan
    // tracks exact overwrites instead of liveness.
    let labels: BTreeMap<&str, usize> = f
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.label.as_str(), i))
        .collect();
    let budget = 8 * f.blocks.len() + 64;
    let mut out_sites = Vec::with_capacity(sites.len());
    let mut next_site = 0usize;
    for (bi, b) in f.blocks.iter().enumerate() {
        for (i, ai) in b.insts.iter().enumerate() {
            let this_pc = *pc;
            *pc += 1;
            if ai.inst.injectable_bits().is_none() {
                continue;
            }
            let site = &sites[next_site];
            next_site += 1;
            debug_assert_eq!(site.pc, this_pc);
            let units = summarize_site(f, &labels, budget, bi, i, &ai.inst, site);
            out_sites.push(SiteSummary {
                pc: this_pc,
                bits: site.bits,
                prov: site.prov,
                units,
            });
        }
    }
    debug_assert_eq!(next_site, sites.len());
    FunctionSummary {
        name: f.name.clone(),
        hash: function_hash(f),
        pc_start,
        pc_end: *pc,
        sites: out_sites,
    }
}

/// Summaries for every verdict unit of one site, mirroring the unit
/// order of `coverage::analyze_function`.
fn summarize_site(
    f: &AsmFunction,
    labels: &BTreeMap<&str, usize>,
    budget: usize,
    bi: usize,
    i: usize,
    inst: &Inst,
    site: &SiteCoverage,
) -> Vec<UnitSummary> {
    let gpr_seed = |g: Gpr, byte: u8| Taint {
        gpr: byte_bit(g, byte),
        ..Taint::default()
    };
    let seeds: Vec<Option<Taint>> = match inst.dest_class() {
        DestClass::Gpr(r) => (0..r.width.bytes() as u8)
            .map(|byte| Some(gpr_seed(r.gpr, byte)))
            .collect(),
        DestClass::RaxRdxPair(w) => {
            let nb = w.bytes() as u8;
            (0..2 * nb)
                .map(|k| {
                    let (g, byte) = if k < nb {
                        (Gpr::Rax, k)
                    } else {
                        (Gpr::Rdx, k - nb)
                    };
                    Some(gpr_seed(g, byte))
                })
                .collect()
        }
        // A flipped condition bit can redirect any dependent branch;
        // no taint seed models that, so the unit stays fully widened.
        DestClass::Rflags => vec![None],
        DestClass::Xmm(x) => (0..16u8).map(|byte| Some(simd_seed(x.0, byte))).collect(),
        DestClass::Ymm(y) => (0..32u8).map(|byte| Some(simd_seed(y.0, byte))).collect(),
        DestClass::Zmm(z) => (0..64u8).map(|byte| Some(simd_seed(z.0, byte))).collect(),
        DestClass::None => vec![],
    };
    debug_assert_eq!(seeds.len(), site.verdicts.len());
    seeds
        .into_iter()
        .zip(&site.verdicts)
        .map(|(seed, &verdict)| match verdict {
            StaticVerdict::Masked => UnitSummary {
                verdict,
                escape: EscapeFootprint::empty(),
                may_detect: false,
            },
            StaticVerdict::Detected => UnitSummary {
                verdict,
                escape: EscapeFootprint::empty(),
                may_detect: true,
            },
            StaticVerdict::Vulnerable => UnitSummary {
                verdict,
                escape: EscapeFootprint::full(),
                may_detect: false,
            },
            StaticVerdict::Unknown => match seed {
                None => UnitSummary {
                    verdict,
                    escape: EscapeFootprint::full(),
                    may_detect: false,
                },
                Some(taint) => {
                    let (escape, may_detect) = escape_scan(f, labels, budget, bi, i + 1, taint);
                    UnitSummary {
                        verdict,
                        escape,
                        may_detect,
                    }
                }
            },
        })
        .collect()
}

fn simd_seed(reg: u8, byte: u8) -> Taint {
    let mut t = Taint::default();
    t.simd[reg as usize] = 1u64 << byte;
    t
}

/// True when `a` taints every byte `b` taints.  Exploring a subset
/// taint after its superset adds nothing: escape events are monotone
/// in the taint set (more tainted bytes → more escape, and a checker
/// that fires on the subset either fires on the superset too or the
/// superset bails to the full footprint).
fn subsumes(a: &Taint, b: &Taint) -> bool {
    a.gpr | b.gpr == a.gpr
        && a.simd
            .iter()
            .zip(&b.simd)
            .all(|(&am, &bm)| am | bm == am)
}

/// CFG-following escape scan: explores every golden-consistent path
/// from the seed, accumulating the union of escape events.  Returns
/// the footprint and whether any path ends in a firing checker.
///
/// Path-end events:
/// * taint clears → the runs converged, nothing escapes on this path;
/// * `ret` (or falling off the function) → every tainted register
///   byte escapes into the caller;
/// * checker fires / control reaches `exit_function` → detection;
/// * exactness lost (tainted store/arithmetic, live taint across a
///   call, unknown branch target, exploration budget exhausted) →
///   widen to [`EscapeFootprint::full`] and stop.
fn escape_scan(
    f: &AsmFunction,
    labels: &BTreeMap<&str, usize>,
    mut budget: usize,
    bi0: usize,
    i0: usize,
    seed: Taint,
) -> (EscapeFootprint, bool) {
    let mut fp = EscapeFootprint::empty();
    let mut may_detect = false;
    let mut visited: Vec<Vec<Taint>> = vec![Vec::new(); f.blocks.len()];
    let mut work: Vec<(usize, usize, Taint)> = vec![(bi0, i0, seed)];
    let escape_regs = |fp: &mut EscapeFootprint, taint: &Taint| {
        fp.gpr |= taint.gpr;
        for (r, &m) in taint.simd.iter().enumerate() {
            if m != 0 {
                fp.simd |= 1 << r;
            }
        }
    };
    'work: while let Some((bi, start, mut taint)) = work.pop() {
        if start == 0 {
            // Block-entry memoisation with subsumption: only a taint
            // adding new bytes over everything already explored at
            // this entry is worth walking again.
            if visited[bi].iter().any(|v| subsumes(v, &taint)) {
                continue;
            }
            if budget == 0 {
                return (EscapeFootprint::full(), may_detect);
            }
            budget -= 1;
            visited[bi].push(taint.clone());
        }
        let block = &f.blocks[bi].insts;
        let mut i = start;
        loop {
            if taint.is_clear() {
                // Converged: bit-identical to golden from here on.
                continue 'work;
            }
            if i >= block.len() {
                if bi + 1 < f.blocks.len() {
                    work.push((bi + 1, 0, taint));
                } else {
                    escape_regs(&mut fp, &taint);
                }
                continue 'work;
            }
            let ai = &block[i];
            match &ai.inst {
                Inst::Ret => {
                    escape_regs(&mut fp, &taint);
                    continue 'work;
                }
                Inst::Call { target } if target == EXIT_FUNCTION => {
                    may_detect = true;
                    continue 'work;
                }
                Inst::Call { target } if target == PRINT_I64 => {
                    if taint.gpr & reg_bytes(Gpr::Rdi) != 0 {
                        // The corrupted value reaches the output
                        // stream: an SDC in the making.
                        return (EscapeFootprint::full(), may_detect);
                    }
                    // The intrinsic reads `%rdi` and appends to the
                    // output; it writes no register, so taint is
                    // exactly preserved.
                    i += 1;
                    continue;
                }
                Inst::Call { .. } => {
                    // Live taint crossing into a callee: the callee
                    // may consume it as an argument, spill it, or
                    // merge it into its accumulators — only a
                    // fully-converged state may cross (same rule as
                    // the coverage scan).
                    let mut full = EscapeFootprint::full();
                    full.callee = true;
                    return (full, may_detect);
                }
                Inst::Jmp { target } => {
                    if target == EXIT_FUNCTION {
                        may_detect = true;
                    } else if let Some(&t) = labels.get(target.as_str()) {
                        work.push((t, 0, taint));
                    } else {
                        return (EscapeFootprint::full(), may_detect);
                    }
                    continue 'work;
                }
                Inst::Jcc { target, .. } => {
                    // Flags are untainted on every surviving path (a
                    // tainted flag-writer detects or bails), so the
                    // branch goes exactly where golden went.
                    if target == EXIT_FUNCTION {
                        // Golden completed, so golden never exited:
                        // the branch falls through.
                    } else if let Some(&t) = labels.get(target.as_str()) {
                        // Golden's direction is unknown statically:
                        // explore both arms.
                        work.push((t, 0, taint.clone()));
                    } else {
                        return (EscapeFootprint::full(), may_detect);
                    }
                    i += 1;
                    continue;
                }
                _ => {}
            }
            let reads_taint = inst_reads(&ai.inst) & taint.gpr != 0
                || simd_reads(&ai.inst)
                    .iter()
                    .any(|&(r, m)| taint.simd[r as usize] & m != 0);
            if reads_taint {
                if !ai.prov.is_protection() {
                    // Application computation consumed the corrupted
                    // value: from here anything may be corrupted.
                    return (EscapeFootprint::full(), may_detect);
                }
                match protection_step(block, i, &taint) {
                    Step::Detected => {
                        may_detect = true;
                        continue 'work;
                    }
                    Step::Keep(t) => taint = t,
                    Step::Bail => return (EscapeFootprint::full(), may_detect),
                }
            } else {
                taint.gpr &= !inst_kills(&ai.inst);
                for (r, m) in simd_writes(&ai.inst) {
                    taint.simd[r as usize] &= !m;
                }
            }
            i += 1;
        }
    }
    (fp, may_detect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Cc;
    use crate::inst::{AluOp, Inst};
    use crate::operand::Operand;
    use crate::program::{AsmBlock, AsmInst, AsmProgram};
    use crate::provenance::{Mechanism, TechniqueTag};
    use crate::reg::{Reg, Width};

    fn prot(inst: Inst) -> AsmInst {
        AsmInst::new(
            inst,
            Provenance::Protection(TechniqueTag::Ferrum, Mechanism::Check),
        )
    }

    fn app(inst: Inst) -> AsmInst {
        AsmInst::synthetic(inst)
    }

    fn program(insts: Vec<AsmInst>) -> AsmProgram {
        let mut b = AsmBlock::new("entry");
        b.insts = insts;
        let mut f = AsmFunction::new("main");
        f.blocks.push(b);
        let mut p = AsmProgram::new();
        p.functions.push(f);
        p
    }

    fn mov64(s: Gpr, d: Gpr) -> Inst {
        Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(s)),
            dst: Operand::Reg(Reg::q(d)),
        }
    }

    fn unit_for(map: &SummaryMap, pc: usize) -> &UnitSummary {
        &map.site(pc).expect("site").units[0]
    }

    #[test]
    fn summary_adopts_coverage_verdicts_unit_for_unit() {
        let p = program(vec![
            app(mov64(Gpr::Rcx, Gpr::Rax)),
            app(mov64(Gpr::Rax, Gpr::Rdi)),
            app(Inst::Call {
                target: PRINT_I64.into(),
            }),
            app(Inst::Ret),
        ]);
        let cov = CoverageMap::analyze(&p);
        let map = SummaryMap::build(&p, &cov);
        assert_eq!(map.total_sites(), cov.total_sites());
        for (fs, fc) in map.functions.iter().zip(&cov.functions) {
            for (ss, sc) in fs.sites.iter().zip(&fc.sites) {
                assert_eq!(ss.pc, sc.pc);
                assert_eq!(ss.units.len(), sc.verdicts.len());
                for (u, &v) in ss.units.iter().zip(&sc.verdicts) {
                    assert_eq!(u.verdict, v);
                }
            }
        }
    }

    #[test]
    fn unknown_at_block_end_refined_to_register_escape() {
        // rax flows across a block boundary into `ret`: coverage says
        // Unknown (its scan stops at the boundary), the escape scan
        // follows the fall-through and records a register-only escape.
        let mut b0 = AsmBlock::new("entry");
        b0.insts.push(app(mov64(Gpr::Rcx, Gpr::Rax)));
        let mut b1 = AsmBlock::new("tail");
        b1.insts.push(app(Inst::Ret));
        let mut f = AsmFunction::new("main");
        f.blocks.push(b0);
        f.blocks.push(b1);
        let mut p = AsmProgram::new();
        p.functions.push(f);
        let map = SummaryMap::analyze(&p);
        let u = unit_for(&map, 0);
        assert_eq!(u.verdict, StaticVerdict::Unknown);
        assert!(u.escape.register_only(), "escape = {:?}", u.escape);
        // Unit 0 is destination byte 0: exactly that byte escapes.
        assert_eq!(u.escape.gpr, byte_bit(Gpr::Rax, 0));
        assert!(!u.may_detect);
    }

    #[test]
    fn unknown_overwritten_in_next_block_has_empty_footprint() {
        // A tainted SIMD register is overwritten with a golden value
        // in the next block.  Coverage says Unknown (there is no SIMD
        // liveness, so its block-end bail cannot claim Masked); the
        // escape scan tracks the exact overwrite across the boundary
        // and proves the empty footprint, so composition may lift the
        // verdict to Masked.
        use crate::reg::Xmm;
        let mut b0 = AsmBlock::new("entry");
        b0.insts.push(app(Inst::MovqToXmm {
            src: Operand::Reg(Reg::q(Gpr::Rcx)),
            dst: Xmm::new(0),
        }));
        let mut b1 = AsmBlock::new("tail");
        b1.insts.push(app(Inst::MovqToXmm {
            src: Operand::Reg(Reg::q(Gpr::Rdx)),
            dst: Xmm::new(0),
        }));
        b1.insts.push(app(Inst::Ret));
        let mut f = AsmFunction::new("main");
        f.blocks.push(b0);
        f.blocks.push(b1);
        let mut p = AsmProgram::new();
        p.functions.push(f);
        let map = SummaryMap::analyze(&p);
        let u = unit_for(&map, 0);
        assert_eq!(u.verdict, StaticVerdict::Unknown);
        assert!(u.escape.is_empty(), "escape = {:?}", u.escape);
        assert!(!u.may_detect);
    }

    #[test]
    fn checker_in_next_block_sets_may_detect() {
        // Taint survives into the next block where a protection
        // checker consumes it: every path detects, the footprint is
        // empty but may_detect blocks a Masked lift.
        let mut b0 = AsmBlock::new("entry");
        b0.insts.push(app(mov64(Gpr::Rcx, Gpr::Rax)));
        let mut b1 = AsmBlock::new("check");
        b1.insts.push(prot(Inst::Cmp {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rax)),
            dst: Operand::Reg(Reg::q(Gpr::R10)),
        }));
        b1.insts.push(prot(Inst::Jcc {
            cc: Cc::Ne,
            target: EXIT_FUNCTION.into(),
        }));
        b1.insts.push(app(Inst::Ret));
        let mut f = AsmFunction::new("main");
        f.blocks.push(b0);
        f.blocks.push(b1);
        let mut p = AsmProgram::new();
        p.functions.push(f);
        let map = SummaryMap::analyze(&p);
        let u = unit_for(&map, 0);
        assert_eq!(u.verdict, StaticVerdict::Unknown);
        assert!(u.escape.is_empty(), "escape = {:?}", u.escape);
        assert!(u.may_detect);
    }

    #[test]
    fn vulnerable_and_flags_units_are_fully_widened() {
        let p = program(vec![
            app(mov64(Gpr::Rcx, Gpr::Rax)),
            app(Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Operand::Reg(Reg::q(Gpr::Rdi)),
            }),
            app(Inst::Cmp {
                w: Width::W64,
                src: Operand::Imm(0),
                dst: Operand::Reg(Reg::q(Gpr::Rdi)),
            }),
            app(Inst::Ret),
        ]);
        let map = SummaryMap::analyze(&p);
        // mov's value feeds the add: Vulnerable, full footprint.
        let u = unit_for(&map, 0);
        assert_eq!(u.verdict, StaticVerdict::Vulnerable);
        assert!(u.escape.is_full());
        // cmp writes RFLAGS: single Unknown unit, full footprint.
        let u = unit_for(&map, 2);
        assert_eq!(u.verdict, StaticVerdict::Unknown);
        assert!(u.escape.is_full());
    }

    #[test]
    fn taint_crossing_a_call_widens_with_callee_flag() {
        let p = program(vec![
            app(mov64(Gpr::Rcx, Gpr::Rbx)),
            app(Inst::Call {
                target: "helper".into(),
            }),
            app(mov64(Gpr::Rbx, Gpr::Rdi)),
            app(Inst::Ret),
        ]);
        let map = SummaryMap::analyze(&p);
        let u = unit_for(&map, 0);
        assert_eq!(u.verdict, StaticVerdict::Unknown);
        assert!(u.escape.callee, "escape = {:?}", u.escape);
        assert!(u.escape.is_full());
    }

    #[test]
    fn tainted_print_argument_widens_to_full() {
        // A corrupted %rdi reaching print_i64 is output corruption.
        let mut b0 = AsmBlock::new("entry");
        b0.insts.push(app(mov64(Gpr::Rcx, Gpr::Rdi)));
        let mut b1 = AsmBlock::new("out");
        b1.insts.push(app(Inst::Call {
            target: PRINT_I64.into(),
        }));
        b1.insts.push(app(Inst::Ret));
        let mut f = AsmFunction::new("main");
        f.blocks.push(b0);
        f.blocks.push(b1);
        let mut p = AsmProgram::new();
        p.functions.push(f);
        let map = SummaryMap::analyze(&p);
        let u = unit_for(&map, 0);
        assert_eq!(u.verdict, StaticVerdict::Unknown);
        assert!(u.escape.is_full());
        assert!(!u.escape.callee);
    }

    #[test]
    fn both_branch_arms_are_explored() {
        // One arm returns with taint in rax, the other clears it: the
        // footprint is the union (register escape), proving the scan
        // explored both.
        let mut b0 = AsmBlock::new("entry");
        b0.insts.push(app(mov64(Gpr::Rcx, Gpr::Rax)));
        b0.insts.push(app(Inst::Jcc {
            cc: Cc::E,
            target: "clear".into(),
        }));
        b0.insts.push(app(Inst::Ret)); // taint escapes here
        let mut b1 = AsmBlock::new("clear");
        b1.insts.push(app(Inst::Mov {
            w: Width::W64,
            src: Operand::Imm(0),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        }));
        b1.insts.push(app(Inst::Ret)); // converged here
        let mut f = AsmFunction::new("main");
        f.blocks.push(b0);
        f.blocks.push(b1);
        let mut p = AsmProgram::new();
        p.functions.push(f);
        let map = SummaryMap::analyze(&p);
        let u = unit_for(&map, 0);
        assert_eq!(u.verdict, StaticVerdict::Unknown);
        assert!(u.escape.register_only());
        assert_eq!(u.escape.gpr, byte_bit(Gpr::Rax, 0));
    }

    #[test]
    fn loops_terminate_via_subsumption() {
        // A loop carrying taint around a back edge must converge via
        // the visited-set subsumption check, not the budget.  The
        // taint sits in %rax (live into `ret`, so coverage cannot
        // claim Masked at the block boundary) while the loop counts
        // in %rcx without touching it.
        let mut b0 = AsmBlock::new("entry");
        b0.insts.push(app(mov64(Gpr::Rcx, Gpr::Rax)));
        let mut b1 = AsmBlock::new("loop");
        b1.insts.push(app(Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            src: Operand::Imm(1),
            dst: Operand::Reg(Reg::q(Gpr::Rcx)),
        }));
        b1.insts.push(app(Inst::Cmp {
            w: Width::W64,
            src: Operand::Imm(10),
            dst: Operand::Reg(Reg::q(Gpr::Rcx)),
        }));
        b1.insts.push(app(Inst::Jcc {
            cc: Cc::Ne,
            target: "loop".into(),
        }));
        b1.insts.push(app(Inst::Ret));
        let mut f = AsmFunction::new("main");
        f.blocks.push(b0);
        f.blocks.push(b1);
        let mut p = AsmProgram::new();
        p.functions.push(f);
        let map = SummaryMap::analyze(&p);
        let u = unit_for(&map, 0);
        assert_eq!(u.verdict, StaticVerdict::Unknown);
        assert!(u.escape.register_only());
        assert_eq!(u.escape.gpr, byte_bit(Gpr::Rax, 0));
    }

    #[test]
    fn footprint_covers_coverage_scan_semantics() {
        // Masked/Detected units always get the empty footprint;
        // Vulnerable always gets the full one.
        let p = program(vec![
            app(mov64(Gpr::Rcx, Gpr::R10)),
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(0),
                dst: Operand::Reg(Reg::q(Gpr::R10)),
            }),
            app(mov64(Gpr::R10, Gpr::Rdi)),
            app(Inst::Ret),
        ]);
        let map = SummaryMap::analyze(&p);
        let u = unit_for(&map, 0);
        assert_eq!(u.verdict, StaticVerdict::Masked);
        assert!(u.escape.is_empty());
        assert!(!u.may_detect);
    }

    #[test]
    fn function_hash_tracks_content() {
        let mut f = AsmFunction::new("f");
        let mut b = AsmBlock::new("entry");
        b.insts.push(app(mov64(Gpr::Rcx, Gpr::Rax)));
        b.insts.push(app(Inst::Ret));
        f.blocks.push(b);
        let h0 = function_hash(&f);
        assert_eq!(h0, function_hash(&f), "hash is deterministic");

        // An instruction edit changes the hash.
        let mut g = f.clone();
        g.blocks[0].insts.insert(0, app(Inst::Nop));
        assert_ne!(h0, function_hash(&g));

        // A provenance-only edit changes the hash too.
        let mut g = f.clone();
        g.blocks[0].insts[0] = prot(mov64(Gpr::Rcx, Gpr::Rax));
        assert_ne!(h0, function_hash(&g));

        // A renamed block changes the hash.
        let mut g = f.clone();
        g.blocks[0].label = "other".into();
        assert_ne!(h0, function_hash(&g));
    }

    #[test]
    fn catalog_summaries_refine_unknowns() {
        // On a real protected workload the escape scan must decide
        // (empty or register-only footprint) at least one unit that
        // coverage left Unknown — the whole point of the layer.
        use crate::parser::parse_program;
        // Use a small synthetic protected-style function instead of a
        // workload (the asm crate cannot depend on the pipeline).
        let src = "\
.globl main
main:
  movq %rdi, %r10
  movq %rdi, %rax
  jmp tail
tail:
  addq $0, %rcx
  ret
";
        let p = parse_program(src).expect("parse");
        let map = SummaryMap::analyze(&p);
        let refined = map
            .functions
            .iter()
            .flat_map(|f| &f.sites)
            .flat_map(|s| &s.units)
            .filter(|u| {
                u.verdict == StaticVerdict::Unknown
                    && (u.escape.is_empty() || u.escape.register_only())
            })
            .count();
        assert!(refined > 0, "escape scan refined no Unknown units");
    }

    #[test]
    fn escape_is_monotone_in_verdict_strength() {
        // Structural invariant on a mixed program: decided units have
        // empty footprints, Vulnerable units full ones.
        let p = program(vec![
            app(mov64(Gpr::Rcx, Gpr::Rax)),
            app(mov64(Gpr::Rax, Gpr::Rdi)),
            app(Inst::Ret),
        ]);
        let map = SummaryMap::analyze(&p);
        for f in &map.functions {
            for s in &f.sites {
                for u in &s.units {
                    match u.verdict {
                        StaticVerdict::Masked | StaticVerdict::Detected => {
                            assert!(u.escape.is_empty())
                        }
                        StaticVerdict::Vulnerable => assert!(u.escape.is_full()),
                        StaticVerdict::Unknown => {}
                    }
                }
            }
        }
    }

    #[test]
    fn rollup_counts_units() {
        let p = program(vec![
            app(mov64(Gpr::Rcx, Gpr::Rax)),
            app(mov64(Gpr::Rax, Gpr::Rdi)),
            app(Inst::Ret),
        ]);
        let map = SummaryMap::analyze(&p);
        let r = map.functions[0].escape_rollup();
        let total: usize = map.functions[0]
            .sites
            .iter()
            .map(|s| s.units.len())
            .sum();
        assert_eq!(r.clean + r.register + r.wide, total);
    }
}
