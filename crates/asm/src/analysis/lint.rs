//! `ferrum-lint` — static soundness analysis of *protected* assembly.
//!
//! The protection passes promise the invariant documented in
//! `ferrum-eddi`: every single bit flip in the destination of an
//! injectable instruction is masked, detected, or crashes — never a
//! silent data corruption.  This module verifies the four structural
//! contracts that invariant rests on, path-insensitively but soundly,
//! with a forward *shadow-equivalence* dataflow over the [`Cfg`]:
//!
//! 1. **Checked synchronisation** ([`LintContract::CheckedSync`]): the
//!    result of every injectable instruction is verified — by an
//!    adjacent scalar checker (`xor`/`cmp` + `jne exit_function`) or by
//!    capture into a SIMD batch — before any non-protection instruction,
//!    call, or `ret` consumes it.  The dataflow tracks *dirty* registers
//!    (unverified results) and every copy a checker makes of them; a
//!    checker whose operands were clobbered since duplication does not
//!    clean the site.
//! 2. **Batch integrity** ([`LintContract::BatchIntegrity`]): SIMD batch
//!    accumulators are never aliased or clobbered between accumulation
//!    and the `vpxor`+`vptest` drain, each (register, lane) slot holds at
//!    most one pending capture, and the batch is drained before any
//!    control transfer or block end.  A store may consume a
//!    captured-but-undrained value: the forced drain at the next control
//!    transfer still detects the fault before output can escape.
//! 3. **Deferred flag checks** ([`LintContract::DeferredFlags`]): a
//!    protected `cmp`/`test` (Fig. 5 idiom: `setcc` pair around a
//!    duplicate compare) must have its pair verified on **every** CFG
//!    successor of the consuming branch before anything overwrites the
//!    pair registers, and — when the function uses FERRUM-style
//!    protection — no consumed compare may be left unprotected.
//! 4. **Requisition balance** ([`LintContract::Requisition`]): stack
//!    requisitions (Fig. 7) are balanced on every path, restored through
//!    red-zone-verified pops, and the requisitioned registers are never
//!    touched by non-protection code while on the stack.
//!
//! Protection code is identified by [`Provenance::is_protection`], so
//! the lint must run on in-memory pass output (a parsed listing has lost
//! provenance).  Functions with no assembly-level protection tags are
//! skipped: there is no contract to verify.  IR-level signature
//! protection (`HybridAsmEddi` retags) is trusted for compare coverage —
//! contract 3's unprotected-compare rule only applies to functions
//! carrying `Ferrum` tags.
//!
//! Unreachable blocks are skipped per the [`Cfg::reverse_post_order`]
//! contract: they never execute, so no fault there is observable.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::analysis::cfg::Cfg;
use crate::analysis::liveness::Liveness;
use crate::flags::Cc;
use crate::inst::{AluOp, DestClass, Inst};
use crate::operand::Operand;
use crate::printer::print_inst;
use crate::program::{AsmFunction, AsmProgram};
use crate::provenance::{GlueKind, Provenance, TechniqueTag};
use crate::reg::{Gpr, ARG_GPRS};

/// The four FERRUM protection contracts (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintContract {
    /// Every injectable result is checked before it is consumed.
    CheckedSync,
    /// SIMD batch accumulators are exclusive and drained at flush points.
    BatchIntegrity,
    /// Deferred flag pairs are checked on every successor.
    DeferredFlags,
    /// Stack requisitions are balanced and verified on every path.
    Requisition,
}

impl LintContract {
    /// Stable short name used by reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            LintContract::CheckedSync => "checked-sync",
            LintContract::BatchIntegrity => "batch-integrity",
            LintContract::DeferredFlags => "deferred-flags",
            LintContract::Requisition => "requisition",
        }
    }
}

/// One violation of a protection contract at a concrete program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Which contract is violated.
    pub contract: LintContract,
    /// Enclosing function name.
    pub function: String,
    /// Label of the block containing the offending instruction.
    pub block: String,
    /// Index of the offending instruction within the block.
    pub inst_index: usize,
    /// Provenance of the offending instruction.
    pub provenance: Provenance,
    /// Human-readable description of the violation.
    pub explanation: String,
}

/// Result of linting a whole program.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in function/block/instruction order.
    pub findings: Vec<LintFinding>,
    /// Functions examined (including skipped unprotected ones).
    pub functions_scanned: usize,
    /// Instructions examined.
    pub insts_scanned: usize,
}

impl LintReport {
    /// True when no contract violation was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings for one contract.
    pub fn by_contract(&self, c: LintContract) -> impl Iterator<Item = &LintFinding> {
        self.findings.iter().filter(move |f| f.contract == c)
    }
}

/// Checker metadata a protection pass hands to the lint: which
/// resources the pass claims to have reserved.  The lint verifies the
/// claims — original code must never touch a reserved register, and
/// nothing outside the drain protocol may write a batch accumulator —
/// in addition to the shape inference it performs on its own.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtectionManifest {
    /// GPRs the pass reserved function-wide (scratch + comparison
    /// pair).  Empty when the pass used per-block stack requisition
    /// instead of dedicated registers.
    pub reserved_gprs: Vec<Gpr>,
    /// XMM register indices serving as SIMD batch accumulators.
    pub accumulators: Vec<u8>,
}

/// Lints every function of `p`.
pub fn lint_program(p: &AsmProgram) -> LintReport {
    lint_program_with(p, &BTreeMap::new())
}

/// Lints every function of `p`, consulting per-function manifests
/// (keyed by function name) where available.
pub fn lint_program_with(
    p: &AsmProgram,
    manifests: &BTreeMap<String, ProtectionManifest>,
) -> LintReport {
    let mut report = LintReport::default();
    for f in &p.functions {
        report.functions_scanned += 1;
        report.insts_scanned += f.insts().count();
        report
            .findings
            .extend(lint_function_with(f, manifests.get(&f.name)));
    }
    report
}

/// Lints one function.  Returns findings in block/instruction order.
pub fn lint_function(f: &AsmFunction) -> Vec<LintFinding> {
    lint_function_with(f, None)
}

/// Lints one function with optional pass-provided checker metadata.
pub fn lint_function_with(
    f: &AsmFunction,
    manifest: Option<&ProtectionManifest>,
) -> Vec<LintFinding> {
    let enforce = Enforce::detect(f);
    if !enforce.c1 {
        // No assembly-level protection present: nothing to verify.
        return Vec::new();
    }
    let cfg = Cfg::build(f);
    let lv = Liveness::compute(f, &cfg);
    let mut accs = accumulator_set(f);
    let mut reserved: Vec<Gpr> = Vec::new();
    if let Some(m) = manifest {
        accs.extend(m.accumulators.iter().copied());
        reserved.extend(m.reserved_gprs.iter().copied());
    }
    let ctx = Ctx {
        f,
        lv: &lv,
        accs: &accs,
        reserved: &reserved,
        enforce,
    };

    // Fixpoint over block entry facts (worklist seeded with the entry).
    let n = f.blocks.len();
    let mut entry: Vec<Option<Fact>> = vec![None; n];
    if n == 0 {
        return Vec::new();
    }
    entry[0] = Some(Fact::default());
    let mut work = vec![0usize];
    let mut rounds = 0usize;
    while let Some(bi) = work.pop() {
        rounds += 1;
        if rounds > n * 64 + 64 {
            break; // defensive: facts are monotone, this should not hit
        }
        let fact = entry[bi].clone().expect("worklist blocks have facts");
        let (edges, _) = scan_block(&ctx, bi, &fact, false);
        for (t, ef) in edges {
            let merged = match &entry[t] {
                None => ef,
                Some(old) => join(old, &ef),
            };
            if entry[t].as_ref() != Some(&merged) {
                entry[t] = Some(merged);
                if !work.contains(&t) {
                    work.push(t);
                }
            }
        }
    }

    // Final pass with stable entry facts: collect findings.
    let mut findings = Vec::new();
    for bi in cfg.reverse_post_order() {
        let Some(fact) = entry[bi].clone() else {
            continue;
        };
        let (edges, mut fs) = scan_block(&ctx, bi, &fact, true);
        findings.append(&mut fs);
        // Requisition stacks must agree at join points: an edge whose
        // stack differs from the fixpoint entry of its target means some
        // other path into that target pushes or pops differently.
        for (t, ef) in edges {
            if let Some(te) = &entry[t] {
                if ef.stack != te.stack {
                    findings.push(LintFinding {
                        contract: LintContract::Requisition,
                        function: f.name.clone(),
                        block: f.blocks[bi].label.clone(),
                        inst_index: f.blocks[bi].insts.len().saturating_sub(1),
                        provenance: Provenance::Synthetic,
                        explanation: format!(
                            "requisition stack unbalanced across paths into `{}`",
                            f.blocks[t].label
                        ),
                    });
                }
            }
        }
    }
    dedupe_by_dominance(&cfg, f, &mut findings);
    findings
}

/// Which contracts apply, derived from the protection tags present.
#[derive(Debug, Clone, Copy)]
struct Enforce {
    /// Assembly-level protection is present: track dirty results.
    c1: bool,
    /// FERRUM-style flag protection expected: consumed compares must use
    /// the deferred idiom (hybrid covers compares at the IR level).
    compares: bool,
}

impl Enforce {
    fn detect(f: &AsmFunction) -> Enforce {
        let mut ferrum = false;
        let mut hybrid = false;
        for ai in f.insts() {
            if let Provenance::Protection(tag, _) = ai.prov {
                match tag {
                    TechniqueTag::Ferrum => ferrum = true,
                    TechniqueTag::HybridAsmEddi => hybrid = true,
                    TechniqueTag::IrEddi => {}
                }
            }
        }
        Enforce {
            c1: ferrum || hybrid,
            compares: ferrum,
        }
    }
}

/// SIMD accumulator registers: every XMM index a protection capture
/// writes.  Input programs contain no SIMD (the passes reject it), so
/// any protection `movq`/`pinsrq` into an XMM register is a batch slot.
fn accumulator_set(f: &AsmFunction) -> BTreeSet<u8> {
    let mut accs = BTreeSet::new();
    for ai in f.insts() {
        if !ai.prov.is_protection() {
            continue;
        }
        match &ai.inst {
            Inst::MovqToXmm { dst, .. } | Inst::Pinsrq { dst, .. } => {
                accs.insert(dst.0);
            }
            _ => {}
        }
    }
    accs
}

/// Identifies the original-site instruction a piece of dirt came from.
type SiteId = (usize, usize);

/// One slot of the modelled requisition/protection stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StackEntry {
    /// Protection push of a requisitioned register (Fig. 7 save): made in
    /// the block prologue, restored through a red-zone-verified pop, and
    /// untouchable by original code while on the stack.
    Req(Gpr),
    /// Protection push capturing an unverified result (idiv scheme).
    Capture(SiteId),
    /// Mid-block protection save of a clean live value (e.g. the
    /// dividend's `%rdx` before `idiv` replay) — read back by address or
    /// discarded, with none of the requisition obligations.
    Save(Gpr),
    /// Anything else (frame saves, non-register pushes).
    Plain,
}

/// A protected compare whose pair check is still outstanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PairPending {
    p0: Gpr,
    p1: Gpr,
    site: SiteId,
}

/// Dataflow fact at a block boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Fact {
    /// Registers holding unverified original results (and copies made by
    /// protection code), keyed by register.
    dirty: BTreeMap<Gpr, SiteId>,
    /// Outstanding deferred flag pair, if any.
    pair: Option<PairPending>,
    /// Modelled stack of protection pushes (bottom first).
    stack: Vec<StackEntry>,
}

fn join(a: &Fact, b: &Fact) -> Fact {
    let mut dirty = a.dirty.clone();
    for (g, s) in &b.dirty {
        dirty
            .entry(*g)
            .and_modify(|cur| {
                if *s < *cur {
                    *cur = *s;
                }
            })
            .or_insert(*s);
    }
    // Keep the longer stack: missing pops surface at the eventual `ret`.
    let stack = if b.stack.len() > a.stack.len() {
        b.stack.clone()
    } else {
        a.stack.clone()
    };
    Fact {
        dirty,
        pair: a.pair.or(b.pair),
        stack,
    }
}

struct Ctx<'a> {
    f: &'a AsmFunction,
    lv: &'a Liveness,
    accs: &'a BTreeSet<u8>,
    /// Manifest-declared function-wide reserved GPRs (empty without a
    /// manifest, or in requisition mode).
    reserved: &'a [Gpr],
    enforce: Enforce,
}

/// What the immediately preceding protection instruction armed: the
/// `jne exit_function` that follows consumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Armed {
    /// Scalar check (`xor`/`cmp`) over these registers.
    Scalar(Vec<Gpr>),
    /// SIMD batch drain (`vptest*`).
    Drain,
}

/// Scans one block from `entry`, returning the facts on each out-edge
/// and (when `collect`) the findings.
#[allow(clippy::too_many_lines)]
fn scan_block(
    ctx: &Ctx<'_>,
    bi: usize,
    entry: &Fact,
    collect: bool,
) -> (Vec<(usize, Fact)>, Vec<LintFinding>) {
    let f = ctx.f;
    let b = &f.blocks[bi];
    let label_of = |l: &str| f.blocks.iter().position(|bb| bb.label == l);
    let mut fact = entry.clone();
    let mut findings = Vec::new();
    let mut edges: Vec<(usize, Fact)> = Vec::new();
    // Batch slots are block-local: stock code drains before block end.
    let mut slots: BTreeMap<(u8, u8), SiteId> = BTreeMap::new();
    let mut armed: Option<Armed> = None;
    // Fig. 5 idiom recognised but consumer branch not yet reached.
    let mut armed_pair: Option<PairPending> = None;

    let push_finding =
        |findings: &mut Vec<LintFinding>, c: LintContract, i: usize, p: Provenance, e: String| {
            if collect {
                findings.push(LintFinding {
                    contract: c,
                    function: f.name.clone(),
                    block: b.label.clone(),
                    inst_index: i,
                    provenance: p,
                    explanation: e,
                });
            }
        };

    // Requisition pushes appear in the block "prologue": before the
    // first instruction that is neither protection nor frame setup.
    // Protection pushes later in the block are value saves (idiv).
    let mut in_prologue = true;

    let mut i = 0usize;
    while i < b.insts.len() {
        let ai = &b.insts[i];
        let inst = &ai.inst;
        let prov = ai.prov;
        let this_armed = armed.take();
        if !prov.is_protection() && prov != Provenance::Glue(GlueKind::FrameSetup) {
            in_prologue = false;
        }

        // -- Batch flush points: any control transfer except the checker
        // branch itself must see an empty batch.
        let is_checker_jcc = matches!(
            inst,
            Inst::Jcc { cc: Cc::Ne, target } if target == crate::EXIT_FUNCTION
        ) && prov.is_protection();
        if inst.is_control() && !is_checker_jcc && !slots.is_empty() {
            push_finding(
                &mut findings,
                LintContract::BatchIntegrity,
                i,
                prov,
                format!(
                    "SIMD batch holds {} undrained capture(s) at `{}`",
                    slots.len(),
                    print_inst(inst)
                ),
            );
            slots.clear();
        }

        if prov.is_protection() {
            match inst {
                // ---- batch captures -------------------------------------
                Inst::MovqToXmm { src, dst } | Inst::Pinsrq { src, dst, .. } => {
                    let lane = match inst {
                        Inst::Pinsrq { lane, .. } => *lane,
                        _ => 0,
                    };
                    let key = (dst.0, lane);
                    if let Some(prev) = slots.get(&key) {
                        push_finding(
                            &mut findings,
                            LintContract::BatchIntegrity,
                            i,
                            prov,
                            format!(
                                "batch slot %xmm{} lane {lane} reused before drain \
                                 (pending capture from block {} inst {})",
                                dst.0, prev.0, prev.1
                            ),
                        );
                    }
                    let origin = match src {
                        Operand::Reg(r) => fact.dirty.remove(&r.gpr).unwrap_or((bi, i)),
                        _ => (bi, i),
                    };
                    slots.insert(key, origin);
                }
                // ---- batch drain ----------------------------------------
                Inst::Vptest { .. } | Inst::Vptest128 { .. } | Inst::Vptest512 { .. } => {
                    armed = Some(Armed::Drain);
                }
                // Widening/xor steps of the drain protocol: allowed
                // writes to the accumulators.
                Inst::Vpxor { .. }
                | Inst::Vpxor128 { .. }
                | Inst::Vpxor512 { .. }
                | Inst::Vinserti128 { .. }
                | Inst::Vinserti64x4 { .. } => {}
                // ---- the checker branch ---------------------------------
                Inst::Jcc { cc: Cc::Ne, target } if target == crate::EXIT_FUNCTION => {
                    match this_armed {
                        Some(Armed::Drain) => slots.clear(),
                        Some(Armed::Scalar(regs)) => {
                            for g in &regs {
                                fact.dirty.remove(g);
                            }
                            if let Some(p) = fact.pair {
                                if regs.contains(&p.p0) && regs.contains(&p.p1) {
                                    fact.pair = None;
                                }
                            }
                        }
                        None => {
                            // A bare checker compares nothing: harmless
                            // for soundness, so not a finding.
                        }
                    }
                }
                // ---- scalar checks arm the next jne ---------------------
                Inst::Cmp { src, dst, .. } => {
                    let mut regs = Vec::new();
                    if let Operand::Reg(r) = src {
                        regs.push(r.gpr);
                    }
                    if let Operand::Reg(r) = dst {
                        regs.push(r.gpr);
                    }
                    armed = Some(Armed::Scalar(regs));
                }
                Inst::Alu {
                    op: AluOp::Xor,
                    src,
                    dst,
                    ..
                } if matches!((src, dst), (Operand::Reg(_), Operand::Reg(_))) => {
                    let mut regs = Vec::new();
                    if let (Operand::Reg(s), Operand::Reg(d)) = (src, dst) {
                        regs.push(s.gpr);
                        // The xor overwrites the duplicate: apply the
                        // write rules below before arming with it.
                        regs.push(d.gpr);
                    }
                    protection_writes(ctx, &mut fact, inst, i, prov, &mut findings, collect, bi);
                    armed = Some(Armed::Scalar(regs));
                    check_pair_clobber(&mut fact, inst, i, prov, &mut findings, collect, f, b);
                    i += 1;
                    continue;
                }
                // ---- stack protocol -------------------------------------
                Inst::Push { src } => {
                    let entry = match src {
                        Operand::Reg(r) => match fact.dirty.get(&r.gpr) {
                            Some(site) => StackEntry::Capture(*site),
                            None if in_prologue => StackEntry::Req(r.gpr),
                            None => StackEntry::Save(r.gpr),
                        },
                        _ => StackEntry::Plain,
                    };
                    fact.stack.push(entry);
                }
                Inst::Pop { dst } => {
                    let g = match dst {
                        Operand::Reg(r) => Some(r.gpr),
                        _ => None,
                    };
                    match fact.stack.pop() {
                        None => push_finding(
                            &mut findings,
                            LintContract::Requisition,
                            i,
                            prov,
                            "protection pop with no matching push on any path".into(),
                        ),
                        Some(StackEntry::Capture(site)) => {
                            if let Some(g) = g {
                                fact.dirty.insert(g, site);
                            }
                        }
                        Some(StackEntry::Req(saved)) => {
                            if g != Some(saved) {
                                push_finding(
                                    &mut findings,
                                    LintContract::Requisition,
                                    i,
                                    prov,
                                    format!(
                                        "requisition pop restores {:?}, but {:?} was saved",
                                        g, saved
                                    ),
                                );
                            }
                            if let Some(g) = g {
                                fact.dirty.remove(&g);
                                if !red_zone_verified(b, i, g) {
                                    push_finding(
                                        &mut findings,
                                        LintContract::Requisition,
                                        i,
                                        prov,
                                        format!(
                                            "requisition pop of {g:?} lacks the red-zone \
                                             verification (`cmpq -8(%rsp)` + `jne`)"
                                        ),
                                    );
                                }
                            }
                        }
                        Some(StackEntry::Save(_)) | Some(StackEntry::Plain) => {
                            if let Some(g) = g {
                                fact.dirty.remove(&g);
                            }
                        }
                    }
                }
                // Protection `add $8k, %rsp` discards stack slots (the
                // idiv scheme's saved input).
                Inst::Alu {
                    op: AluOp::Add,
                    src: Operand::Imm(k),
                    dst: Operand::Reg(r),
                    ..
                } if r.gpr == Gpr::Rsp => {
                    let mut n = (*k / 8).max(0);
                    while n > 0 {
                        match fact.stack.pop() {
                            Some(StackEntry::Req(g)) => push_finding(
                                &mut findings,
                                LintContract::Requisition,
                                i,
                                prov,
                                format!("requisitioned {g:?} discarded without restore"),
                            ),
                            Some(_) => {}
                            None => break,
                        }
                        n -= 1;
                    }
                }
                _ => {
                    // Any other protection instruction: apply the
                    // register-write rules (copies propagate dirt,
                    // overwrites of a sole copy lose the check).
                    protection_writes(ctx, &mut fact, inst, i, prov, &mut findings, collect, bi);
                }
            }
            check_pair_clobber(&mut fact, inst, i, prov, &mut findings, collect, f, b);
            // Protection jumps (stub tails) are edges too, as are the
            // hybrid pass's retagged IR-level checker branches (their
            // targets are ordinary detect blocks, not `exit_function`).
            match inst {
                Inst::Jmp { target } => {
                    if let Some(t) = label_of(target) {
                        edges.push((t, fact.clone()));
                    }
                    return (edges, findings);
                }
                Inst::Jcc { target, .. } if target != crate::EXIT_FUNCTION => {
                    if let Some(t) = label_of(target) {
                        edges.push((t, fact.clone()));
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        // ------------- non-protection instruction ------------------------

        // Reads of dirty registers: the unverified value is consumed.
        let mut reads: Vec<Gpr> = inst.gprs_read();
        if matches!(inst, Inst::Call { .. }) {
            reads.extend(ARG_GPRS);
        }
        if matches!(inst, Inst::Ret) {
            reads.push(Gpr::Rax);
        }
        for g in &reads {
            if let Some(site) = fact.dirty.remove(g) {
                push_finding(
                    &mut findings,
                    LintContract::CheckedSync,
                    i,
                    prov,
                    format!(
                        "`{}` consumes unverified result in {g:?} \
                         (site at block {} inst {}, no checker in between)",
                        print_inst(inst),
                        site.0,
                        site.1
                    ),
                );
            }
        }

        // Reads/writes of requisitioned registers while they are saved.
        let req_regs: Vec<Gpr> = fact
            .stack
            .iter()
            .filter_map(|e| match e {
                StackEntry::Req(g) => Some(*g),
                _ => None,
            })
            .collect();
        if !req_regs.is_empty() {
            for g in inst.gprs_read().iter().chain(inst.gprs_written().iter()) {
                if req_regs.contains(g) {
                    push_finding(
                        &mut findings,
                        LintContract::Requisition,
                        i,
                        prov,
                        format!(
                            "`{}` touches requisitioned register {g:?} while it is \
                             on the requisition stack",
                            print_inst(inst)
                        ),
                    );
                    break;
                }
            }
        }

        // Manifest-declared reservations: original code must never write
        // a reserved protection register — the duplicates live there.
        // Calls are exempt: the pass re-establishes protection state
        // around them (and callee clobbers are modelled above).
        if !ctx.reserved.is_empty() && !matches!(inst, Inst::Call { .. }) {
            for g in inst.gprs_written() {
                if ctx.reserved.contains(&g) {
                    push_finding(
                        &mut findings,
                        LintContract::CheckedSync,
                        i,
                        prov,
                        format!(
                            "`{}` writes {g:?}, which the protection pass \
                             reserved function-wide (manifest violation)",
                            print_inst(inst)
                        ),
                    );
                }
            }
        }

        // Batch accumulators may only be written by the protection
        // capture/drain protocol, never by original code.
        if let Inst::MovqToXmm { dst, .. } | Inst::Pinsrq { dst, .. } = inst {
            if ctx.accs.contains(&dst.0) {
                push_finding(
                    &mut findings,
                    LintContract::BatchIntegrity,
                    i,
                    prov,
                    format!(
                        "non-protection `{}` writes batch accumulator %xmm{}",
                        print_inst(inst),
                        dst.0
                    ),
                );
            }
        }

        // Deferred-flags idiom recognition at an original compare.
        if matches!(inst, Inst::Cmp { .. } | Inst::Test { .. }) {
            if let Some(pp) = match_deferred_idiom(b, i) {
                armed_pair = Some(PairPending {
                    p0: pp.0,
                    p1: pp.1,
                    site: (bi, i),
                });
            } else if ctx.enforce.compares && consumed_flags(b, i) {
                push_finding(
                    &mut findings,
                    LintContract::DeferredFlags,
                    i,
                    prov,
                    format!(
                        "`{}` feeds a branch/setcc but is not protected by the \
                         deferred setcc-pair idiom",
                        print_inst(inst)
                    ),
                );
            }
        }

        match inst {
            Inst::Jcc { target, .. } => {
                // Consumer of a protected compare: the pair becomes
                // pending on the fall-through and on the taken edge.
                if let Some(pp) = armed_pair.take() {
                    fact.pair = Some(pp);
                }
                if target != crate::EXIT_FUNCTION {
                    if let Some(t) = label_of(target) {
                        edges.push((t, fact.clone()));
                    }
                }
            }
            Inst::Setcc { .. } => {
                if let Some(pp) = armed_pair.take() {
                    fact.pair = Some(pp);
                }
            }
            Inst::Call { .. } => {
                if let Some(p) = fact.pair.take() {
                    push_finding(
                        &mut findings,
                        LintContract::DeferredFlags,
                        i,
                        prov,
                        format!(
                            "call with unchecked flag pair from block {} inst {}",
                            p.site.0, p.site.1
                        ),
                    );
                }
                // The callee clobbers caller-saved registers: dirt there
                // is destroyed, i.e. masked.
                for g in [
                    Gpr::Rax,
                    Gpr::Rcx,
                    Gpr::Rdx,
                    Gpr::Rsi,
                    Gpr::Rdi,
                    Gpr::R8,
                    Gpr::R9,
                    Gpr::R10,
                    Gpr::R11,
                ] {
                    fact.dirty.remove(&g);
                }
            }
            Inst::Ret => {
                if let Some(p) = fact.pair {
                    push_finding(
                        &mut findings,
                        LintContract::DeferredFlags,
                        i,
                        prov,
                        format!(
                            "function returns with unchecked flag pair from \
                             block {} inst {}",
                            p.site.0, p.site.1
                        ),
                    );
                }
                if fact.stack.iter().any(|e| matches!(e, StackEntry::Req(_))) {
                    push_finding(
                        &mut findings,
                        LintContract::Requisition,
                        i,
                        prov,
                        "function returns with requisitioned registers still saved".into(),
                    );
                }
                return (edges, findings);
            }
            Inst::Jmp { target } => {
                if let Some(t) = label_of(target) {
                    edges.push((t, fact.clone()));
                }
                return (edges, findings);
            }
            Inst::Push { src } => {
                // Original pushes (frame saves) participate in the LIFO.
                let _ = src;
                fact.stack.push(StackEntry::Plain);
            }
            Inst::Pop { dst } => match fact.stack.pop() {
                Some(StackEntry::Req(g)) => {
                    push_finding(
                        &mut findings,
                        LintContract::Requisition,
                        i,
                        prov,
                        format!(
                            "original pop unwinds past requisitioned {g:?} \
                             (restore missing on this path)"
                        ),
                    );
                }
                Some(_) | None => {
                    let _ = dst;
                }
            },
            _ => {}
        }

        check_pair_clobber(&mut fact, inst, i, prov, &mut findings, collect, f, b);

        // Writes: a new injectable result makes its destination dirty.
        if ctx.enforce.c1 {
            if inst.injectable_bits().is_some() {
                match inst.dest_class() {
                    DestClass::Gpr(r) => {
                        fact.dirty.insert(r.gpr, (bi, i));
                    }
                    DestClass::RaxRdxPair(_) => {
                        fact.dirty.insert(Gpr::Rax, (bi, i));
                        fact.dirty.insert(Gpr::Rdx, (bi, i));
                    }
                    // Flag results are handled by the compare logic.
                    _ => {}
                }
            } else {
                // Non-site writes overwrite (mask) any dirt there.
                for g in inst.gprs_written() {
                    fact.dirty.remove(&g);
                }
            }
        }

        i += 1;
    }

    // Block end (fall-through).
    if !slots.is_empty() {
        push_finding(
            &mut findings,
            LintContract::BatchIntegrity,
            b.insts.len().saturating_sub(1),
            Provenance::Synthetic,
            format!(
                "SIMD batch holds {} undrained capture(s) at block end",
                slots.len()
            ),
        );
    }
    // Dirt in registers dead at the block boundary is masked.
    let live_gone: Vec<Gpr> = fact
        .dirty
        .keys()
        .filter(|g| !ctx.lv.live_out_contains(bi, **g))
        .copied()
        .collect();
    for g in live_gone {
        fact.dirty.remove(&g);
    }
    if bi + 1 < f.blocks.len() {
        edges.push((bi + 1, fact));
    }
    (edges, findings)
}

/// Applies the register-write rules for a protection instruction: a
/// `mov` from a dirty register propagates the dirt to the copy; an
/// overwrite of the *only* remaining copy of an unverified result
/// destroys the check (a finding); any other overwrite just clears the
/// local copy.
#[allow(clippy::too_many_arguments)]
fn protection_writes(
    ctx: &Ctx<'_>,
    fact: &mut Fact,
    inst: &Inst,
    i: usize,
    prov: Provenance,
    findings: &mut Vec<LintFinding>,
    collect: bool,
    bi: usize,
) {
    // Copy rule first: mov dirty-reg -> reg transfers the dirt.
    if let Inst::Mov {
        src: Operand::Reg(s),
        dst: Operand::Reg(d),
        ..
    } = inst
    {
        if let Some(site) = fact.dirty.get(&s.gpr).copied() {
            fact.dirty.insert(d.gpr, site);
            return;
        }
    }
    for g in inst.gprs_written() {
        if let Some(site) = fact.dirty.get(&g).copied() {
            let copies_elsewhere = fact
                .dirty
                .iter()
                .any(|(og, os)| *og != g && *os == site)
                || fact
                    .stack
                    .iter()
                    .any(|e| matches!(e, StackEntry::Capture(s) if *s == site));
            if !copies_elsewhere && collect {
                findings.push(LintFinding {
                    contract: LintContract::CheckedSync,
                    function: ctx.f.name.clone(),
                    block: ctx.f.blocks[bi].label.clone(),
                    inst_index: i,
                    provenance: prov,
                    explanation: format!(
                        "protection code overwrites the only unverified copy of \
                         {g:?} (site at block {} inst {})",
                        site.0, site.1
                    ),
                });
            }
            fact.dirty.remove(&g);
        }
    }
}

/// A write to an outstanding flag-pair register (other than the check
/// itself) loses the deferred comparison.
#[allow(clippy::too_many_arguments)]
fn check_pair_clobber(
    fact: &mut Fact,
    inst: &Inst,
    i: usize,
    prov: Provenance,
    findings: &mut Vec<LintFinding>,
    collect: bool,
    f: &AsmFunction,
    b: &crate::program::AsmBlock,
) {
    let Some(p) = fact.pair else {
        return;
    };
    // The resolving `cmpb p0, p1` reads, not writes, the pair.
    for g in inst.gprs_written() {
        if g == p.p0 || g == p.p1 {
            if collect {
                findings.push(LintFinding {
                    contract: LintContract::DeferredFlags,
                    function: f.name.clone(),
                    block: b.label.clone(),
                    inst_index: i,
                    provenance: prov,
                    explanation: format!(
                        "`{}` overwrites flag-pair register {g:?} before the \
                         deferred check of the compare at block {} inst {}",
                        print_inst(inst),
                        p.site.0,
                        p.site.1
                    ),
                });
            }
            fact.pair = None;
            return;
        }
    }
}

/// Matches the Fig. 5 idiom starting at the original compare `b[i]`:
/// `setcc p0` / duplicate compare / `setcc p1`, all protection-tagged.
/// Returns the pair registers.
fn match_deferred_idiom(b: &crate::program::AsmBlock, i: usize) -> Option<(Gpr, Gpr)> {
    let prot_setcc = |ai: &crate::program::AsmInst| -> Option<Gpr> {
        if !ai.prov.is_protection() {
            return None;
        }
        match &ai.inst {
            Inst::Setcc {
                dst: Operand::Reg(r),
                ..
            } => Some(r.gpr),
            _ => None,
        }
    };
    let p0 = prot_setcc(b.insts.get(i + 1)?)?;
    let dup = b.insts.get(i + 2)?;
    if !dup.prov.is_protection() || dup.inst != b.insts[i].inst {
        return None;
    }
    let p1 = prot_setcc(b.insts.get(i + 3)?)?;
    Some((p0, p1))
}

/// True if the flags produced at `b[i]` are read by a non-protection
/// instruction before the next flags writer (block-local, mirroring the
/// backend's flag discipline).
fn consumed_flags(b: &crate::program::AsmBlock, i: usize) -> bool {
    for ai in &b.insts[i + 1..] {
        if ai.inst.reads_flags() && !ai.prov.is_protection() {
            return true;
        }
        if ai.inst.writes_flags() {
            return false;
        }
    }
    false
}

/// True if the requisition pop at `b[i]` (restoring `g`) is followed by
/// the red-zone verification: `cmpq -8(%rsp), g` then `jne
/// exit_function`, both protection-tagged.
fn red_zone_verified(b: &crate::program::AsmBlock, i: usize, g: Gpr) -> bool {
    let Some(cmp) = b.insts.get(i + 1) else {
        return false;
    };
    let Some(jne) = b.insts.get(i + 2) else {
        return false;
    };
    let cmp_ok = cmp.prov.is_protection()
        && matches!(
            &cmp.inst,
            Inst::Cmp {
                src: Operand::Mem(m),
                dst: Operand::Reg(r),
                ..
            } if m.base == Some(Gpr::Rsp) && m.disp == -8 && r.gpr == g
        );
    let jne_ok = jne.prov.is_protection()
        && matches!(
            &jne.inst,
            Inst::Jcc { cc: Cc::Ne, target } if target == crate::EXIT_FUNCTION
        );
    cmp_ok && jne_ok
}

/// Drops findings that restate the same defect at a dominated program
/// point: if the same contract+explanation-site pair fires in block `a`
/// and in block `b` with `a` dominating `b`, only `a`'s finding is kept.
fn dedupe_by_dominance(cfg: &Cfg, f: &AsmFunction, findings: &mut Vec<LintFinding>) {
    if findings.len() < 2 {
        return;
    }
    let dom = cfg.dominators();
    let index_of = |label: &str| f.blocks.iter().position(|b| b.label == label);
    let mut keep = vec![true; findings.len()];
    for i in 0..findings.len() {
        for j in 0..findings.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            let (a, b) = (&findings[i], &findings[j]);
            if a.contract == b.contract
                && a.explanation == b.explanation
                && a.block != b.block
            {
                if let (Some(ab), Some(bb)) = (index_of(&a.block), index_of(&b.block)) {
                    if dom.dominates(ab, bb) {
                        keep[j] = false;
                    }
                }
            }
        }
    }
    let mut it = keep.iter();
    findings.retain(|_| *it.next().unwrap());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Inst};
    use crate::operand::{MemRef, Operand};
    use crate::program::{AsmBlock, AsmFunction};
    use crate::reg::{Reg, Width, Xmm};

    const P: Provenance =
        Provenance::Protection(TechniqueTag::Ferrum, crate::provenance::Mechanism::Dup);
    const O: Provenance = Provenance::Synthetic;

    fn slot(disp: i64) -> Operand {
        Operand::Mem(MemRef::base_disp(Gpr::Rbp, disp))
    }

    fn load(dst: Gpr) -> Inst {
        Inst::Mov {
            w: Width::W64,
            src: slot(-8),
            dst: Operand::Reg(Reg::q(dst)),
        }
    }

    fn store(src: Gpr) -> Inst {
        Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(src)),
            dst: slot(-16),
        }
    }

    fn xor_rr(src: Gpr, dst: Gpr) -> Inst {
        Inst::Alu {
            op: AluOp::Xor,
            w: Width::W64,
            src: Operand::Reg(Reg::q(src)),
            dst: Operand::Reg(Reg::q(dst)),
        }
    }

    fn jne_exit() -> Inst {
        Inst::Jcc {
            cc: Cc::Ne,
            target: crate::EXIT_FUNCTION.into(),
        }
    }

    fn func(insts: Vec<(Inst, Provenance)>) -> AsmFunction {
        let mut f = AsmFunction::new("main");
        let mut b = AsmBlock::new("entry");
        for (i, p) in insts {
            b.push(i, p);
        }
        f.blocks.push(b);
        f
    }

    fn contracts(fs: &[LintFinding]) -> Vec<LintContract> {
        fs.iter().map(|f| f.contract).collect()
    }

    #[test]
    fn unprotected_function_is_skipped() {
        let f = func(vec![(load(Gpr::Rcx), O), (store(Gpr::Rcx), O), (Inst::Ret, O)]);
        assert!(lint_function(&f).is_empty());
    }

    #[test]
    fn dup_first_scalar_idiom_is_clean() {
        // Fig. 4: duplicate load, original load, xor-compare, checker.
        let f = func(vec![
            (load(Gpr::R10), P),
            (load(Gpr::Rcx), O),
            (xor_rr(Gpr::Rcx, Gpr::R10), P),
            (jne_exit(), P),
            (store(Gpr::Rcx), O),
            (Inst::Ret, O),
        ]);
        assert!(lint_function(&f).is_empty());
    }

    #[test]
    fn dropped_checker_flags_the_consuming_store() {
        // Same idiom, but the `jne exit_function` was removed: the store
        // consumes an unverified result.
        let f = func(vec![
            (load(Gpr::R10), P),
            (load(Gpr::Rcx), O),
            (xor_rr(Gpr::Rcx, Gpr::R10), P),
            (store(Gpr::Rcx), O),
            (Inst::Ret, O),
        ]);
        let fs = lint_function(&f);
        assert_eq!(contracts(&fs), vec![LintContract::CheckedSync]);
        assert_eq!(fs[0].inst_index, 3);
    }

    #[test]
    fn batch_capture_and_drain_is_clean() {
        let f = func(vec![
            (
                Inst::MovqToXmm {
                    src: slot(-8),
                    dst: Xmm::new(2),
                },
                P,
            ),
            (load(Gpr::Rcx), O),
            (
                Inst::MovqToXmm {
                    src: Operand::Reg(Reg::q(Gpr::Rcx)),
                    dst: Xmm::new(3),
                },
                P,
            ),
            (store(Gpr::Rcx), O),
            (
                Inst::Vpxor128 {
                    a: Xmm::new(3),
                    b: Xmm::new(2),
                    dst: Xmm::new(2),
                },
                P,
            ),
            (
                Inst::Vptest128 {
                    a: Xmm::new(2),
                    b: Xmm::new(2),
                },
                P,
            ),
            (jne_exit(), P),
            (Inst::Ret, O),
        ]);
        assert!(lint_function(&f).is_empty());
    }

    #[test]
    fn batch_slot_reuse_before_drain_is_flagged() {
        let cap = |g: Gpr| Inst::MovqToXmm {
            src: Operand::Reg(Reg::q(g)),
            dst: Xmm::new(2),
        };
        let f = func(vec![
            (load(Gpr::Rcx), O),
            (cap(Gpr::Rcx), P),
            (load(Gpr::Rbx), O),
            (cap(Gpr::Rbx), P), // same slot, not drained yet
            (
                Inst::Vptest128 {
                    a: Xmm::new(2),
                    b: Xmm::new(2),
                },
                P,
            ),
            (jne_exit(), P),
            (Inst::Ret, O),
        ]);
        let fs = lint_function(&f);
        assert_eq!(contracts(&fs), vec![LintContract::BatchIntegrity]);
        assert_eq!(fs[0].inst_index, 3);
    }

    #[test]
    fn undrained_batch_at_ret_is_flagged() {
        let f = func(vec![
            (load(Gpr::Rcx), O),
            (
                Inst::MovqToXmm {
                    src: Operand::Reg(Reg::q(Gpr::Rcx)),
                    dst: Xmm::new(2),
                },
                P,
            ),
            (Inst::Ret, O),
        ]);
        let fs = lint_function(&f);
        assert_eq!(contracts(&fs), vec![LintContract::BatchIntegrity]);
    }

    fn cmp_rr(src: Gpr, dst: Gpr) -> Inst {
        Inst::Cmp {
            w: Width::W64,
            src: Operand::Reg(Reg::q(src)),
            dst: Operand::Reg(Reg::q(dst)),
        }
    }

    fn setcc(dst: Gpr) -> Inst {
        Inst::Setcc {
            cc: Cc::E,
            dst: Operand::Reg(Reg::b(dst)),
        }
    }

    fn pair_check_cmp() -> Inst {
        Inst::Cmp {
            w: Width::W8,
            src: Operand::Reg(Reg::b(Gpr::R12)),
            dst: Operand::Reg(Reg::b(Gpr::R13)),
        }
    }

    /// Deferred-flags function: `cmp` in `entry` consumed by a `jcc` to
    /// `taken`; `check_taken` controls whether the taken-edge recheck is
    /// present (its absence is the SkipEdgeRecheck mutation).
    fn deferred_fn(check_taken: bool) -> AsmFunction {
        let mut f = AsmFunction::new("main");
        let mut entry = AsmBlock::new("entry");
        entry.push(cmp_rr(Gpr::Rcx, Gpr::Rdx), O);
        entry.push(setcc(Gpr::R12), P);
        entry.push(cmp_rr(Gpr::Rcx, Gpr::Rdx), P);
        entry.push(setcc(Gpr::R13), P);
        entry.push(
            Inst::Jcc {
                cc: Cc::E,
                target: "taken".into(),
            },
            O,
        );
        entry.push(pair_check_cmp(), P);
        entry.push(jne_exit(), P);
        let mut fall = AsmBlock::new("fall");
        fall.push(Inst::Ret, O);
        let mut taken = AsmBlock::new("taken");
        if check_taken {
            taken.push(pair_check_cmp(), P);
            taken.push(jne_exit(), P);
        }
        taken.push(Inst::Ret, O);
        f.blocks.push(entry);
        f.blocks.push(fall);
        f.blocks.push(taken);
        f
    }

    #[test]
    fn deferred_pair_checked_on_both_edges_is_clean() {
        assert!(lint_function(&deferred_fn(true)).is_empty());
    }

    #[test]
    fn missing_recheck_on_taken_edge_is_flagged() {
        let fs = lint_function(&deferred_fn(false));
        assert_eq!(contracts(&fs), vec![LintContract::DeferredFlags]);
        assert_eq!(fs[0].block, "taken");
    }

    fn push_r(g: Gpr) -> Inst {
        Inst::Push {
            src: Operand::Reg(Reg::q(g)),
        }
    }

    fn pop_r(g: Gpr) -> Inst {
        Inst::Pop {
            dst: Operand::Reg(Reg::q(g)),
        }
    }

    fn red_zone_cmp(g: Gpr) -> Inst {
        Inst::Cmp {
            w: Width::W64,
            src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
            dst: Operand::Reg(Reg::q(g)),
        }
    }

    #[test]
    fn requisition_with_red_zone_restore_is_clean() {
        let f = func(vec![
            (push_r(Gpr::R12), P),
            (load(Gpr::R12), P), // protection may use the requisitioned reg
            (pop_r(Gpr::R12), P),
            (red_zone_cmp(Gpr::R12), P),
            (jne_exit(), P),
            (Inst::Ret, O),
        ]);
        assert!(lint_function(&f).is_empty());
    }

    #[test]
    fn requisition_pop_without_red_zone_is_flagged() {
        let f = func(vec![
            (push_r(Gpr::R12), P),
            (pop_r(Gpr::R12), P),
            (Inst::Ret, O),
        ]);
        let fs = lint_function(&f);
        assert_eq!(contracts(&fs), vec![LintContract::Requisition]);
    }

    #[test]
    fn original_code_touching_requisitioned_register_is_flagged() {
        let f = func(vec![
            (push_r(Gpr::R12), P),
            (
                Inst::Alu {
                    op: AluOp::Add,
                    w: Width::W64,
                    src: Operand::Reg(Reg::q(Gpr::R12)),
                    dst: Operand::Reg(Reg::q(Gpr::Rax)),
                },
                O,
            ),
            (pop_r(Gpr::R12), P),
            (red_zone_cmp(Gpr::R12), P),
            (jne_exit(), P),
            (Inst::Ret, O),
        ]);
        let fs = lint_function(&f);
        assert!(contracts(&fs).contains(&LintContract::Requisition));
    }

    #[test]
    fn return_with_unrestored_requisition_is_flagged() {
        let f = func(vec![(push_r(Gpr::R12), P), (Inst::Nop, O), (Inst::Ret, O)]);
        let fs = lint_function(&f);
        assert_eq!(contracts(&fs), vec![LintContract::Requisition]);
    }

    #[test]
    fn mid_block_value_save_is_not_a_requisition() {
        // The idiv scheme pushes a live input mid-block and later
        // discards the slot with `add $8, %rsp`; no finding.
        let f = func(vec![
            (Inst::Nop, O), // ends the block prologue
            (push_r(Gpr::Rdx), P),
            (
                Inst::Alu {
                    op: AluOp::Add,
                    w: Width::W64,
                    src: Operand::Imm(8),
                    dst: Operand::Reg(Reg::q(Gpr::Rsp)),
                },
                P,
            ),
            (Inst::Ret, O),
        ]);
        assert!(lint_function(&f).is_empty());
    }

    #[test]
    fn unprotected_consumed_compare_is_flagged_under_ferrum() {
        let mut f = AsmFunction::new("main");
        let mut entry = AsmBlock::new("entry");
        // Something FERRUM-protected elsewhere in the function...
        entry.push(load(Gpr::R10), P);
        entry.push(load(Gpr::Rcx), O);
        entry.push(xor_rr(Gpr::Rcx, Gpr::R10), P);
        entry.push(jne_exit(), P);
        // ...but this consumed compare has no deferred protection.
        entry.push(cmp_rr(Gpr::Rcx, Gpr::Rdx), O);
        entry.push(
            Inst::Jcc {
                cc: Cc::E,
                target: "out".into(),
            },
            O,
        );
        let mut out = AsmBlock::new("out");
        out.push(Inst::Ret, O);
        f.blocks.push(entry);
        f.blocks.push(out);
        let fs = lint_function(&f);
        assert_eq!(contracts(&fs), vec![LintContract::DeferredFlags]);
        assert_eq!(fs[0].inst_index, 4);
    }

    #[test]
    fn manifest_flags_original_write_to_reserved_register() {
        let f = func(vec![
            (load(Gpr::R10), P),
            (load(Gpr::Rcx), O),
            (xor_rr(Gpr::Rcx, Gpr::R10), P),
            (jne_exit(), P),
            (store(Gpr::Rcx), O),
            (load(Gpr::R11), O), // original code writes a reserved register
            (Inst::Ret, O),
        ]);
        // Without the manifest the write looks like ordinary original
        // code; the pass's claim is what makes it a violation.
        assert!(lint_function(&f).is_empty());
        let m = ProtectionManifest {
            reserved_gprs: vec![Gpr::R10, Gpr::R11, Gpr::R12],
            accumulators: Vec::new(),
        };
        let fs = lint_function_with(&f, Some(&m));
        assert_eq!(contracts(&fs), vec![LintContract::CheckedSync]);
        assert_eq!(fs[0].inst_index, 5);
    }

    #[test]
    fn manifest_flags_non_protection_write_to_accumulator() {
        let f = func(vec![
            (load(Gpr::R10), P),
            (load(Gpr::Rcx), O),
            (xor_rr(Gpr::Rcx, Gpr::R10), P),
            (jne_exit(), P),
            (store(Gpr::Rcx), O),
            (
                Inst::MovqToXmm {
                    src: Operand::Reg(Reg::q(Gpr::Rcx)),
                    dst: Xmm::new(2),
                },
                O,
            ),
            (Inst::Ret, O),
        ]);
        // %xmm2 is never written by protection code, so inference alone
        // cannot know it is an accumulator.
        assert!(lint_function(&f).is_empty());
        let m = ProtectionManifest {
            reserved_gprs: Vec::new(),
            accumulators: vec![2],
        };
        let fs = lint_function_with(&f, Some(&m));
        assert_eq!(contracts(&fs), vec![LintContract::BatchIntegrity]);
    }

    #[test]
    fn report_aggregates_across_functions() {
        let mut p = AsmProgram::default();
        p.functions.push(deferred_fn(true));
        p.functions.push(deferred_fn(false));
        let rep = lint_program(&p);
        assert_eq!(rep.functions_scanned, 2);
        assert!(!rep.is_clean());
        assert_eq!(rep.by_contract(LintContract::DeferredFlags).count(), 1);
        assert_eq!(rep.by_contract(LintContract::CheckedSync).count(), 0);
    }
}
