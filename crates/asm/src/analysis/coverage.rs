//! Static per-site vulnerability analysis: an ACE-style coverage map
//! that decides fault-injection outcomes *before* running the injector.
//!
//! The paper measures FERRUM's coverage empirically by injecting
//! thousands of single-bit faults per benchmark.  Much of that budget
//! is provably redundant: for a large fraction of (instruction ×
//! destination-byte) sites the outcome is statically decidable from
//! the very structure FERRUM itself relies on — a flipped byte that is
//! dead before its next use is architecturally masked, and a flipped
//! byte whose every def-to-use path flows into a protection checker is
//! guaranteed to be detected.  This module classifies every injectable
//! site of an [`AsmProgram`] into a [`StaticVerdict`] and rolls the
//! verdicts up into a [`CoverageMap`] that the campaign engine
//! (`ferrum_faultsim::run_campaign_pruned`) uses to skip
//! statically-decided injections.
//!
//! # Site model
//!
//! The map mirrors the injector exactly.  A *site* is one instruction
//! with an injectable destination ([`Inst::injectable_bits`]); the
//! injector flips `raw_bit % bits` of that destination at write-back.
//! Eight bit flips within one byte corrupt the same byte with eight
//! different non-zero deltas, and every claim this analysis makes is
//! delta-independent, so the verdict unit is the **byte**:
//! a site with `bits` injectable bits carries `bits / 8` verdicts
//! (RFLAGS sites, 4 condition bits, carry a single unit).  The
//! dynamic fault `FaultSpec { dyn_index, raw_bit }` maps onto
//! [`SiteCoverage::verdict_for`] through the instruction's flat
//! program counter.
//!
//! # Soundness doctrine
//!
//! `Masked` and `Detected` are *load-bearing*: the pruned campaign
//! engine books them as `Benign`/`Detected` without executing, so a
//! wrong claim silently corrupts measured SDC probabilities.  Both
//! verdicts therefore rest on an **exact taint** argument, not a
//! conservative one:
//!
//! * The golden run completed, so every protection check compared
//!   equal operands at every dynamic instance (its `jne exit_function`
//!   was never taken).
//! * A single-byte flip makes the tainted byte differ from golden by a
//!   non-zero delta.  The scan tracks the *exact* set of bytes that
//!   differ, propagating only through operations that preserve the
//!   per-byte non-zero-delta invariant (register-width moves, SIMD
//!   lane inserts, one-side-tainted XORs) and bailing to `Unknown` the
//!   moment exactness would be lost (tainted stores, arithmetic,
//!   both-sides-tainted combines, unrecognised control flow).
//! * `Detected`: a checker (`cmp`/`xor` + `jne exit_function`, or
//!   `vptest reg, reg` + `jne exit_function`) consumes exactly one
//!   tainted operand — golden equality plus a non-zero delta forces
//!   the branch to fire.
//! * `Masked`: the tainted bytes are dead (per byte-granular
//!   [`Liveness`]) or fully overwritten with golden values before any
//!   instruction reads them — execution is bit-identical thereafter.
//!
//! `Vulnerable` (a non-protection instruction consumed the corrupted
//! value) and `Unknown` are advisory only; the injector still runs
//! those sites.

use std::collections::BTreeMap;

use crate::analysis::cfg::Cfg;
use crate::analysis::lint::ProtectionManifest;
use crate::analysis::liveness::{
    byte_bit, inst_kills, inst_reads, read_bytes, reg_bytes, ByteSet, Liveness,
};
use crate::flags::Cc;
use crate::inst::{AluOp, DestClass, Inst};
use crate::operand::Operand;
use crate::program::{AsmFunction, AsmInst, AsmProgram};
use crate::provenance::{Mechanism, Provenance};
use crate::reg::{Gpr, Width};
use crate::EXIT_FUNCTION;

/// The static outcome class of one fault-site byte.
///
/// Ordered as a lattice of decreasing knowledge: `Masked` and
/// `Detected` are sound guarantees (the pruned engine books them
/// without executing), `Vulnerable` is a structural prediction (the
/// corrupted value reached application computation), `Unknown` is the
/// analysis declining to claim anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StaticVerdict {
    /// The flipped byte is dead or overwritten before any use: the
    /// faulty run is guaranteed bit-identical to golden (`Benign`).
    Masked,
    /// Every path from the flip runs through a protection checker that
    /// is guaranteed to fire: the faulty run exits via
    /// `exit_function` (`Detected`).
    Detected,
    /// A non-protection instruction consumes the corrupted value; the
    /// fault escapes into application state (may still end up benign,
    /// detected later, or an SDC — the injector decides).
    Vulnerable,
    /// The analysis lost exactness (store, arithmetic, unrecognised
    /// control flow) before reaching a decision.
    Unknown,
}

impl StaticVerdict {
    /// All verdicts, in report order.
    pub const ALL: [StaticVerdict; 4] = [
        StaticVerdict::Masked,
        StaticVerdict::Detected,
        StaticVerdict::Vulnerable,
        StaticVerdict::Unknown,
    ];

    /// Stable text label (report and JSON key).
    pub fn label(self) -> &'static str {
        match self {
            StaticVerdict::Masked => "masked",
            StaticVerdict::Detected => "detected",
            StaticVerdict::Vulnerable => "vulnerable",
            StaticVerdict::Unknown => "unknown",
        }
    }

    /// True when the pruned campaign engine may skip the injection.
    pub fn is_decided(self) -> bool {
        matches!(self, StaticVerdict::Masked | StaticVerdict::Detected)
    }
}

impl std::fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-verdict unit counts, merged bottom-up from sites to functions
/// to the whole program (and per mechanism).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Units proven benign.
    pub masked: usize,
    /// Units proven detected.
    pub detected: usize,
    /// Units escaping into application state.
    pub vulnerable: usize,
    /// Units the analysis declined to classify.
    pub unknown: usize,
}

impl VerdictCounts {
    /// Adds one unit with verdict `v`.
    pub fn add(&mut self, v: StaticVerdict) {
        match v {
            StaticVerdict::Masked => self.masked += 1,
            StaticVerdict::Detected => self.detected += 1,
            StaticVerdict::Vulnerable => self.vulnerable += 1,
            StaticVerdict::Unknown => self.unknown += 1,
        }
    }

    /// Accumulates another rollup into this one.
    pub fn merge(&mut self, o: &VerdictCounts) {
        self.masked += o.masked;
        self.detected += o.detected;
        self.vulnerable += o.vulnerable;
        self.unknown += o.unknown;
    }

    /// Total units counted.
    pub fn total(&self) -> usize {
        self.masked + self.detected + self.vulnerable + self.unknown
    }

    /// The count for one verdict.
    pub fn get(&self, v: StaticVerdict) -> usize {
        match v {
            StaticVerdict::Masked => self.masked,
            StaticVerdict::Detected => self.detected,
            StaticVerdict::Vulnerable => self.vulnerable,
            StaticVerdict::Unknown => self.unknown,
        }
    }

    /// Lower bound on the static-site detection fraction: only the
    /// units *proven* detected count.
    pub fn detection_lower_bound(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.detected as f64 / self.total() as f64
    }

    /// Upper bound on the static-site detection fraction: everything
    /// that is not proven masked could in principle be detected.
    pub fn detection_upper_bound(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        1.0 - self.masked as f64 / self.total() as f64
    }

    /// Fraction of units with a sound (skippable) verdict.
    pub fn decided_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.masked + self.detected) as f64 / self.total() as f64
    }
}

/// The verdicts for one injectable instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteCoverage {
    /// Flat program counter of the instruction (matches
    /// `ferrum_cpu::Image` load order: functions → blocks →
    /// instructions, in declaration order).
    pub pc: usize,
    /// Injectable destination width in bits
    /// ([`Inst::injectable_bits`]); the injector flips
    /// `raw_bit % bits`.
    pub bits: u32,
    /// Provenance of the instruction (mechanism rollups key off this).
    pub prov: Provenance,
    /// One verdict per destination byte, indexed `flipped_bit / 8`
    /// (RFLAGS sites carry a single unit).
    pub verdicts: Vec<StaticVerdict>,
}

impl SiteCoverage {
    /// The verdict governing an injector bit choice, mirroring
    /// `apply_fault`: the flipped bit is `raw_bit % bits` and the
    /// verdict unit is its byte.  For `rdx:rax` pair destinations the
    /// selector runs across both halves, so `sel / 8` indexes the
    /// concatenated rax-then-rdx byte units directly.
    pub fn verdict_for(&self, raw_bit: u16) -> StaticVerdict {
        if self.verdicts.len() == 1 {
            return self.verdicts[0];
        }
        let bit = u32::from(raw_bit) % self.bits;
        self.verdicts[(bit / 8) as usize]
    }

    /// Number of verdict units at this site.
    pub fn units(&self) -> usize {
        self.verdicts.len()
    }
}

/// Coverage for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionCoverage {
    /// Function name.
    pub name: String,
    /// Sites in program order.
    pub sites: Vec<SiteCoverage>,
    /// Unit rollup over all of this function's sites.
    pub rollup: VerdictCounts,
}

/// The whole-program static coverage map.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    /// Per-function coverage, in program order.
    pub functions: Vec<FunctionCoverage>,
    /// Flat pc → (function index, site index).
    index: BTreeMap<usize, (u32, u32)>,
}

impl CoverageMap {
    /// Analyses `p` without protection manifests.
    pub fn analyze(p: &AsmProgram) -> CoverageMap {
        CoverageMap::analyze_with(p, None)
    }

    /// Analyses `p`, cross-checking `Detected` claims against
    /// per-function [`ProtectionManifest`]s where available: a scalar
    /// register-register check none of whose operands is a reserved
    /// register, or a batch flush test on a register the manifest does
    /// not list as an accumulator, is demoted to `Unknown` — the
    /// checker is not one the protection pass declared, so the
    /// golden-equality premise is not vouched for.
    pub fn analyze_with(
        p: &AsmProgram,
        manifests: Option<&BTreeMap<String, ProtectionManifest>>,
    ) -> CoverageMap {
        let mut map = CoverageMap::default();
        let mut pc = 0usize;
        for f in &p.functions {
            let manifest = manifests.and_then(|m| m.get(&f.name));
            let fc = analyze_function(f, &mut pc, manifest);
            let fi = map.functions.len() as u32;
            for (si, s) in fc.sites.iter().enumerate() {
                map.index.insert(s.pc, (fi, si as u32));
            }
            map.functions.push(fc);
        }
        map
    }

    /// The site at flat pc `pc`, if that instruction is injectable.
    pub fn site(&self, pc: usize) -> Option<&SiteCoverage> {
        let &(fi, si) = self.index.get(&pc)?;
        Some(&self.functions[fi as usize].sites[si as usize])
    }

    /// The verdict governing a fault at `(pc, raw_bit)`.
    pub fn verdict_at(&self, pc: usize, raw_bit: u16) -> Option<StaticVerdict> {
        self.site(pc).map(|s| s.verdict_for(raw_bit))
    }

    /// Whole-program unit rollup.
    pub fn rollup(&self) -> VerdictCounts {
        let mut c = VerdictCounts::default();
        for f in &self.functions {
            c.merge(&f.rollup);
        }
        c
    }

    /// Unit rollups keyed by emitting mechanism (`None` = application
    /// / glue code), in [`Mechanism::ALL`] order with the application
    /// bucket first.
    pub fn mechanism_rollup(&self) -> Vec<(Option<Mechanism>, VerdictCounts)> {
        let mut buckets: BTreeMap<Option<Mechanism>, VerdictCounts> = BTreeMap::new();
        for f in &self.functions {
            for s in &f.sites {
                let b = buckets.entry(s.prov.mechanism()).or_default();
                for &v in &s.verdicts {
                    b.add(v);
                }
            }
        }
        buckets.into_iter().collect()
    }

    /// Total number of injectable sites (instructions).
    pub fn total_sites(&self) -> usize {
        self.functions.iter().map(|f| f.sites.len()).sum()
    }
}

/// Exact taint: the set of bytes currently differing from the golden
/// run, each by a non-zero delta.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Taint {
    /// GPR bytes (same packing as [`ByteSet`]).
    pub(crate) gpr: ByteSet,
    /// One byte-mask per SIMD register (64 bytes each).
    pub(crate) simd: [u64; 16],
}

impl Taint {
    pub(crate) fn is_clear(&self) -> bool {
        self.gpr == 0 && self.simd_clear()
    }

    pub(crate) fn simd_clear(&self) -> bool {
        self.simd.iter().all(|&m| m == 0)
    }

    fn gpr_view(&self, g: Gpr) -> u128 {
        (self.gpr >> (g.index() * 8)) & 0xff
    }

    fn set_gpr_view(&mut self, g: Gpr, bytes: u128) {
        self.gpr = (self.gpr & !reg_bytes(g)) | (bytes << (g.index() * 8));
    }
}

/// Byte-exact SIMD reads of `inst` as `(register index, byte mask)`.
pub(crate) fn simd_reads(inst: &Inst) -> Vec<(u8, u64)> {
    const X: u64 = 0xffff; // 16 bytes
    const Y: u64 = 0xffff_ffff; // 32 bytes
    match inst {
        Inst::MovqFromXmm { src, .. } => vec![(src.0, 0xff)],
        Inst::Pextrq { lane, src, .. } => vec![(src.0, 0xffu64 << (8 * lane))],
        Inst::Vinserti128 { src, src2, .. } => vec![(src.0, X), (src2.0, Y)],
        Inst::Vpxor { a, b, .. } | Inst::Vptest { a, b } => vec![(a.0, Y), (b.0, Y)],
        Inst::Vpxor128 { a, b, .. } | Inst::Vptest128 { a, b } => vec![(a.0, X), (b.0, X)],
        Inst::Vinserti64x4 { src, src2, .. } => vec![(src.0, Y), (src2.0, u64::MAX)],
        Inst::Vpxor512 { a, b, .. } | Inst::Vptest512 { a, b } => {
            vec![(a.0, u64::MAX), (b.0, u64::MAX)]
        }
        _ => vec![],
    }
}

/// Byte-exact SIMD write masks of `inst`, matching the machine's
/// write-back semantics (`movq` zeroes lane 1 and preserves the upper
/// lanes; the VEX 128-bit form zeroes *all* upper bytes; `pinsrq`
/// writes only its lane).  When the instruction's inputs are
/// untainted the written bytes become golden, so these masks are also
/// the taint-kill masks.
pub(crate) fn simd_writes(inst: &Inst) -> Vec<(u8, u64)> {
    const X: u64 = 0xffff;
    const Y: u64 = 0xffff_ffff;
    match inst {
        Inst::MovqToXmm { dst, .. } => vec![(dst.0, X)],
        Inst::Pinsrq { lane, dst, .. } => vec![(dst.0, 0xffu64 << (8 * lane))],
        Inst::Vinserti128 { dst, .. } | Inst::Vpxor { dst, .. } => vec![(dst.0, Y)],
        Inst::Vpxor128 { dst, .. } => vec![(dst.0, u64::MAX)],
        Inst::Vinserti64x4 { dst, .. } | Inst::Vpxor512 { dst, .. } => vec![(dst.0, u64::MAX)],
        _ => vec![],
    }
}

/// True when any memory operand of `inst` computes its address from a
/// tainted register (the access would diverge — exactness is lost).
fn mem_address_tainted(inst: &Inst, taint: &Taint) -> bool {
    let mem_regs = |op: &Operand, set: &mut ByteSet| {
        if let Operand::Mem(m) = op {
            for g in m.regs_read() {
                *set |= reg_bytes(g);
            }
        }
    };
    let mut set: ByteSet = 0;
    match inst {
        Inst::Mov { src, dst, .. }
        | Inst::Alu { src, dst, .. }
        | Inst::Cmp { src, dst, .. }
        | Inst::Test { src, dst, .. } => {
            mem_regs(src, &mut set);
            mem_regs(dst, &mut set);
        }
        Inst::Movsx { src, .. } | Inst::Movzx { src, .. } => mem_regs(src, &mut set),
        Inst::Unary { dst, .. } | Inst::Shift { dst, .. } | Inst::Setcc { dst, .. } => {
            mem_regs(dst, &mut set);
        }
        Inst::Imul { src, .. } | Inst::Idiv { src, .. } => mem_regs(src, &mut set),
        Inst::Lea { mem, .. } => {
            for g in mem.regs_read() {
                set |= reg_bytes(g);
            }
        }
        Inst::Push { src } => mem_regs(src, &mut set),
        Inst::Pop { dst } => mem_regs(dst, &mut set),
        Inst::MovqToXmm { src, .. } | Inst::Pinsrq { src, .. } => mem_regs(src, &mut set),
        _ => {}
    }
    set & taint.gpr != 0
}

/// True when the *value* of operand `op` (read at width `w`) carries
/// taint.  Memory values are never tainted: the scan bails at any
/// tainted store, so memory in the scanned region is golden.
fn value_taint(op: &Operand, w: Width, taint: &Taint) -> bool {
    match op {
        Operand::Reg(r) => taint.gpr & read_bytes(r.gpr, w) != 0,
        Operand::Imm(_) | Operand::Mem(_) => false,
    }
}

/// True when `block[i + 1]` is a protection `jne exit_function` — the
/// second half of every FERRUM/EDDI checker idiom.
fn next_is_exit_check(block: &[AsmInst], i: usize) -> bool {
    matches!(
        block.get(i + 1),
        Some(AsmInst {
            inst: Inst::Jcc { cc: Cc::Ne, target },
            prov,
        }) if prov.is_protection() && target == EXIT_FUNCTION
    )
}

/// One step of the scan at a protection instruction that reads taint.
pub(crate) enum Step {
    /// A checker is guaranteed to fire: the site is detected.
    Detected,
    /// Exact propagation succeeded; continue with the new taint.
    Keep(Taint),
    /// Exactness lost.
    Bail,
}

/// Handles a protection instruction consuming tainted data: recognise
/// the checker idioms (→ [`Step::Detected`]), propagate through
/// exactness-preserving data movement, or bail.
pub(crate) fn protection_step(block: &[AsmInst], i: usize, taint: &Taint) -> Step {
    let inst = &block[i].inst;
    if mem_address_tainted(inst, taint) {
        return Step::Bail;
    }
    match inst {
        // Scalar checker: `cmp`/`xor` with exactly one tainted operand
        // followed by `jne exit_function`.  Golden operands were equal
        // at every dynamic instance (the program completed), and the
        // tainted operand differs by a non-zero delta within the
        // compared width, so the branch must fire.
        Inst::Cmp { w, src, dst }
        | Inst::Alu {
            op: AluOp::Xor,
            w,
            src,
            dst,
        } => {
            let st = value_taint(src, *w, taint);
            let dt = value_taint(dst, *w, taint);
            if st != dt && next_is_exit_check(block, i) {
                Step::Detected
            } else {
                Step::Bail
            }
        }
        // Batch flush test: `vptest r, r` + `jne exit_function`.
        // Golden ZF was always set, so the golden accumulator is zero;
        // the tainted byte makes it non-zero and the branch fires.
        // Distinct operands give no such guarantee.
        Inst::Vptest { a, b } if a == b => {
            if next_is_exit_check(block, i) {
                Step::Detected
            } else {
                Step::Bail
            }
        }
        Inst::Vptest128 { a, b } if a == b => {
            if next_is_exit_check(block, i) {
                Step::Detected
            } else {
                Step::Bail
            }
        }
        Inst::Vptest512 { a, b } if a == b => {
            if next_is_exit_check(block, i) {
                Step::Detected
            } else {
                Step::Bail
            }
        }
        // Register-to-register move: exact byte-wise taint transfer
        // (W64 replaces, W32 zero-extends — both kill all eight
        // destination bytes; W16/W8 merge into the low bytes).
        Inst::Mov {
            w,
            src: Operand::Reg(s),
            dst: Operand::Reg(d),
        } => {
            let low: u128 = match w {
                Width::W8 => 0x01,
                Width::W16 => 0x03,
                Width::W32 => 0x0f,
                Width::W64 => 0xff,
            };
            let moved = taint.gpr_view(s.gpr) & low;
            let mut t = taint.clone();
            t.gpr &= !crate::analysis::liveness::kill_bytes(d.gpr, *w);
            t.gpr |= moved << (d.gpr.index() * 8);
            Step::Keep(t)
        }
        // GPR → XMM lane 0 (`movq`): lane 0 takes the source bytes,
        // lane 1 is zeroed (golden), upper lanes are preserved.
        Inst::MovqToXmm {
            src: Operand::Reg(s),
            dst,
        } => {
            let moved = (taint.gpr_view(s.gpr) & 0xff) as u64;
            let mut t = taint.clone();
            t.simd[dst.0 as usize] = (t.simd[dst.0 as usize] & !0xffffu64) | moved;
            Step::Keep(t)
        }
        // GPR → XMM lane insert: writes exactly the 8-byte lane.
        Inst::Pinsrq {
            lane,
            src: Operand::Reg(s),
            dst,
        } => {
            let moved = (taint.gpr_view(s.gpr) & 0xff) as u64;
            let mut t = taint.clone();
            let m = 0xffu64 << (8 * lane);
            t.simd[dst.0 as usize] = (t.simd[dst.0 as usize] & !m) | (moved << (8 * lane));
            Step::Keep(t)
        }
        // XMM lane → GPR (W64 destination kills all eight bytes).
        Inst::MovqFromXmm { src, dst } => {
            let moved = (taint.simd[src.0 as usize] & 0xff) as u128;
            let mut t = taint.clone();
            t.set_gpr_view(dst.gpr, moved);
            Step::Keep(t)
        }
        Inst::Pextrq { lane, src, dst } => {
            let moved = ((taint.simd[src.0 as usize] >> (8 * lane)) & 0xff) as u128;
            let mut t = taint.clone();
            t.set_gpr_view(dst.gpr, moved);
            Step::Keep(t)
        }
        // 128-bit lane merge into a YMM: exact byte shuffle; the top
        // 32 bytes of the destination register are preserved.
        Inst::Vinserti128 {
            lane,
            src,
            src2,
            dst,
        } => {
            let xs = taint.simd[src.0 as usize] & 0xffff;
            let ys = taint.simd[src2.0 as usize] & 0xffff_ffff;
            let merged = (ys & !(0xffffu64 << (16 * lane))) | (xs << (16 * lane));
            let mut t = taint.clone();
            t.simd[dst.0 as usize] = (t.simd[dst.0 as usize] & !0xffff_ffffu64) | merged;
            Step::Keep(t)
        }
        // 256-bit lane merge into a ZMM: writes all 64 bytes.
        Inst::Vinserti64x4 {
            lane,
            src,
            src2,
            dst,
        } => {
            let ys = taint.simd[src.0 as usize] & 0xffff_ffff;
            let zs = taint.simd[src2.0 as usize];
            let mut t = taint.clone();
            t.simd[dst.0 as usize] = (zs & !(0xffff_ffffu64 << (32 * lane))) | (ys << (32 * lane));
            Step::Keep(t)
        }
        // One-side-per-byte tainted XOR: each tainted result byte
        // differs by exactly the one operand's delta (non-zero).  A
        // byte tainted on *both* sides could cancel — bail.
        Inst::Vpxor { a, b, dst } => {
            let at = taint.simd[a.0 as usize] & 0xffff_ffff;
            let bt = taint.simd[b.0 as usize] & 0xffff_ffff;
            if at & bt != 0 {
                return Step::Bail;
            }
            let mut t = taint.clone();
            t.simd[dst.0 as usize] = (t.simd[dst.0 as usize] & !0xffff_ffffu64) | at | bt;
            Step::Keep(t)
        }
        Inst::Vpxor128 { a, b, dst } => {
            let at = taint.simd[a.0 as usize] & 0xffff;
            let bt = taint.simd[b.0 as usize] & 0xffff;
            if at & bt != 0 {
                return Step::Bail;
            }
            let mut t = taint.clone();
            // VEX semantics zero every upper byte of the destination.
            t.simd[dst.0 as usize] = at | bt;
            Step::Keep(t)
        }
        Inst::Vpxor512 { a, b, dst } => {
            let at = taint.simd[a.0 as usize];
            let bt = taint.simd[b.0 as usize];
            if at & bt != 0 {
                return Step::Bail;
            }
            let mut t = taint.clone();
            t.simd[dst.0 as usize] = at | bt;
            Step::Keep(t)
        }
        _ => Step::Bail,
    }
}

/// Verdict when the scan stops at position `i` with taint still held:
/// `Masked` iff every tainted byte is provably dead from here on (no
/// SIMD taint — SIMD registers have no liveness — and no GPR taint
/// byte in the live-after set).
fn bail_verdict(taint: &Taint, live_after: ByteSet) -> StaticVerdict {
    if taint.simd_clear() && taint.gpr & live_after == 0 {
        StaticVerdict::Masked
    } else {
        StaticVerdict::Unknown
    }
}

/// Scans forward from `start` within one block, tracking the exact
/// tainted-byte set seeded at the fault site.
fn scan(block: &[AsmInst], after: &[ByteSet], start: usize, mut taint: Taint) -> StaticVerdict {
    let mut i = start;
    loop {
        if taint.is_clear() {
            // Every corrupted byte was overwritten with its golden
            // value: the runs have converged.
            return StaticVerdict::Masked;
        }
        if i >= block.len() {
            return bail_verdict(&taint, after[block.len() - 1]);
        }
        let ai = &block[i];
        let inst = &ai.inst;

        let reads_taint = inst_reads(inst) & taint.gpr != 0
            || simd_reads(inst)
                .iter()
                .any(|&(r, m)| taint.simd[r as usize] & m != 0);

        if reads_taint {
            if !ai.prov.is_protection() {
                return StaticVerdict::Vulnerable;
            }
            match protection_step(block, i, &taint) {
                Step::Detected => return StaticVerdict::Detected,
                Step::Keep(t) => taint = t,
                // The instruction consumed tainted data in a way the
                // propagation rules don't model (a store, arithmetic,
                // a cancelling combine): the corruption may now live
                // in memory or flags, so deadness of the *registers*
                // proves nothing — never claim Masked here.
                Step::Bail => return StaticVerdict::Unknown,
            }
        } else {
            // Untainted operands: the instruction computes exactly the
            // golden values, so its writes are exact taint kills.
            match inst {
                Inst::Jcc { cc: Cc::Ne, target }
                    if ai.prov.is_protection() && target == EXIT_FUNCTION =>
                {
                    // Flags are untainted (any tainted flag-writer
                    // would have detected or bailed above), so this
                    // checker branch falls through exactly as in the
                    // golden run.
                }
                Inst::Jcc { .. } | Inst::Jmp { .. } | Inst::Ret => {
                    // Control leaves the straight-line region on the
                    // golden path; the liveness bail rule covers every
                    // successor path.
                    return bail_verdict(&taint, after[i]);
                }
                Inst::Call { .. } => {
                    // The callee may spill callee-saved registers or
                    // merge SIMD accumulator lanes we cannot see from
                    // here; only a fully-converged state may cross.
                    return bail_verdict(&taint, after[i]);
                }
                _ => {
                    taint.gpr &= !inst_kills(inst);
                    for (r, m) in simd_writes(inst) {
                        taint.simd[r as usize] &= !m;
                    }
                }
            }
        }
        i += 1;
    }
}

/// Classifies one destination byte of a GPR-writing site.
fn classify_gpr_byte(
    block: &[AsmInst],
    after: &[ByteSet],
    i: usize,
    g: Gpr,
    byte: u8,
) -> StaticVerdict {
    if byte_bit(g, byte) & after[i] == 0 {
        // Dead at write-back: the corrupted byte is overwritten on
        // every path before any read.
        return StaticVerdict::Masked;
    }
    let taint = Taint {
        gpr: byte_bit(g, byte),
        ..Taint::default()
    };
    scan(block, after, i + 1, taint)
}

/// Classifies one destination byte of a SIMD-writing site (no SIMD
/// liveness exists, so masking is only discovered by the scan's exact
/// overwrite tracking).
fn classify_simd_byte(
    block: &[AsmInst],
    after: &[ByteSet],
    i: usize,
    reg: u8,
    byte: u8,
) -> StaticVerdict {
    let mut taint = Taint::default();
    taint.simd[reg as usize] = 1u64 << byte;
    scan(block, after, i + 1, taint)
}

/// True when a `Detected` claim at `block[i]` is consistent with the
/// protection pass's own manifest: scalar register-register checks
/// must involve a reserved register, and batch flush tests must test a
/// declared accumulator.  Checks with a memory operand (red-zone
/// verification) involve no reserved register by design.
fn detection_matches_manifest(inst: &Inst, m: &ProtectionManifest) -> bool {
    match inst {
        Inst::Cmp { src, dst, .. } | Inst::Alu { src, dst, .. } => {
            if m.reserved_gprs.is_empty() {
                return true; // requisition mode: checks use app regs + red zone
            }
            match (src, dst) {
                (Operand::Reg(a), Operand::Reg(b)) => {
                    m.reserved_gprs.contains(&a.gpr) || m.reserved_gprs.contains(&b.gpr)
                }
                _ => true,
            }
        }
        Inst::Vptest { a, .. } => m.accumulators.is_empty() || m.accumulators.contains(&a.0),
        Inst::Vptest128 { a, .. } => m.accumulators.is_empty() || m.accumulators.contains(&a.0),
        Inst::Vptest512 { a, .. } => m.accumulators.is_empty() || m.accumulators.contains(&a.0),
        _ => true,
    }
}

/// When a manifest is available, demote `Detected` verdicts whose
/// deciding checker the manifest does not vouch for.  The deciding
/// checker is re-discovered by re-running the scan; demotion is rare
/// (it indicates a disagreement between the pass and the analysis),
/// so the cost does not matter.
fn validate_against_manifest(
    verdict: StaticVerdict,
    block: &[AsmInst],
    manifest: Option<&ProtectionManifest>,
) -> StaticVerdict {
    let Some(m) = manifest else { return verdict };
    if verdict != StaticVerdict::Detected {
        return verdict;
    }
    // Every checker idiom the scan can credit lives in this block;
    // accept the claim iff *some* manifest-consistent checker exists.
    let any_consistent = block.iter().enumerate().any(|(i, ai)| {
        ai.prov.is_protection()
            && next_is_exit_check(block, i)
            && detection_matches_manifest(&ai.inst, m)
    });
    if any_consistent {
        verdict
    } else {
        StaticVerdict::Unknown
    }
}

/// Classifies every injectable site of `f`, advancing the flat `pc`.
fn analyze_function(
    f: &AsmFunction,
    pc: &mut usize,
    manifest: Option<&ProtectionManifest>,
) -> FunctionCoverage {
    let cfg = Cfg::build(f);
    let lv = Liveness::compute(f, &cfg);
    let mut sites = Vec::new();
    let mut rollup = VerdictCounts::default();
    for (bi, b) in f.blocks.iter().enumerate() {
        let after = lv.live_after_each(f, bi);
        for (i, ai) in b.insts.iter().enumerate() {
            let this_pc = *pc;
            *pc += 1;
            let Some(bits) = ai.inst.injectable_bits() else {
                continue;
            };
            let verdicts: Vec<StaticVerdict> = match ai.inst.dest_class() {
                DestClass::Gpr(r) => (0..r.width.bytes() as u8)
                    .map(|byte| classify_gpr_byte(&b.insts, &after, i, r.gpr, byte))
                    .collect(),
                DestClass::RaxRdxPair(w) => {
                    let nb = w.bytes() as u8;
                    (0..2 * nb)
                        .map(|k| {
                            let (g, byte) = if k < nb {
                                (Gpr::Rax, k)
                            } else {
                                (Gpr::Rdx, k - nb)
                            };
                            classify_gpr_byte(&b.insts, &after, i, g, byte)
                        })
                        .collect()
                }
                DestClass::Rflags => vec![StaticVerdict::Unknown],
                DestClass::Xmm(x) => (0..16u8)
                    .map(|byte| classify_simd_byte(&b.insts, &after, i, x.0, byte))
                    .collect(),
                DestClass::Ymm(y) => (0..32u8)
                    .map(|byte| classify_simd_byte(&b.insts, &after, i, y.0, byte))
                    .collect(),
                DestClass::Zmm(z) => (0..64u8)
                    .map(|byte| classify_simd_byte(&b.insts, &after, i, z.0, byte))
                    .collect(),
                DestClass::None => continue,
            };
            let verdicts: Vec<StaticVerdict> = verdicts
                .into_iter()
                .map(|v| validate_against_manifest(v, &b.insts, manifest))
                .collect();
            for &v in &verdicts {
                rollup.add(v);
            }
            sites.push(SiteCoverage {
                pc: this_pc,
                bits,
                prov: ai.prov,
                verdicts,
            });
        }
    }
    FunctionCoverage {
        name: f.name.clone(),
        sites,
        rollup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::operand::MemRef;
    use crate::program::{AsmBlock, AsmFunction, AsmProgram};
    use crate::provenance::TechniqueTag;
    use crate::reg::Reg;

    fn prot(inst: Inst) -> AsmInst {
        AsmInst::new(
            inst,
            Provenance::Protection(TechniqueTag::Ferrum, Mechanism::Check),
        )
    }

    fn app(inst: Inst) -> AsmInst {
        AsmInst::synthetic(inst)
    }

    fn program(insts: Vec<AsmInst>) -> AsmProgram {
        let mut b = AsmBlock::new("entry");
        b.insts = insts;
        let mut f = AsmFunction::new("main");
        f.blocks.push(b);
        let mut p = AsmProgram::new();
        p.functions.push(f);
        p
    }

    fn mov64(s: Gpr, d: Gpr) -> Inst {
        Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(s)),
            dst: Operand::Reg(Reg::q(d)),
        }
    }

    #[test]
    fn dead_destination_is_masked() {
        // r10 is written and immediately overwritten before the
        // terminator; every byte of the first write is dead.
        let p = program(vec![
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::R10)),
            }),
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(8),
                dst: Operand::Reg(Reg::q(Gpr::R10)),
            }),
            app(Inst::Ret),
        ]);
        let map = CoverageMap::analyze(&p);
        let site = map.site(0).expect("site at pc 0");
        assert_eq!(site.verdicts, vec![StaticVerdict::Masked; 8]);
    }

    #[test]
    fn checked_duplicate_is_detected() {
        // The canonical FERRUM idiom: dup into r10, use rax, then
        // cmp r10, rax + jne exit_function.  A flip in the dup is
        // caught by the checker.
        let p = program(vec![
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            prot(mov64(Gpr::Rax, Gpr::R10)),
            prot(Inst::Cmp {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::R10)),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            prot(Inst::Jcc {
                cc: Cc::Ne,
                target: EXIT_FUNCTION.into(),
            }),
            app(Inst::Ret),
        ]);
        let map = CoverageMap::analyze(&p);
        let dup = map.site(1).expect("dup site");
        assert_eq!(dup.verdicts, vec![StaticVerdict::Detected; 8]);
    }

    #[test]
    fn app_consumption_is_vulnerable() {
        // rax feeds an application add before any checker sees it.
        let p = program(vec![
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            app(Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Operand::Reg(Reg::q(Gpr::Rcx)),
            }),
            app(Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
            }),
            app(Inst::Ret),
        ]);
        let map = CoverageMap::analyze(&p);
        let site = map.site(0).expect("site");
        assert_eq!(site.verdicts, vec![StaticVerdict::Vulnerable; 8]);
    }

    #[test]
    fn tainted_store_is_unknown() {
        // A flip in rax escapes through a protection push (a store):
        // exactness is lost, and rax stays live past the block.
        let p = program(vec![
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            prot(Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            app(Inst::Ret),
        ]);
        let map = CoverageMap::analyze(&p);
        let site = map.site(0).expect("site");
        assert_eq!(site.verdicts, vec![StaticVerdict::Unknown; 8]);
    }

    #[test]
    fn copy_after_shadow_is_not_credited_but_dup_site_is() {
        // EDDI-style copy-*after*: the shadow is a copy of the result,
        // so a flip at the original propagates into the shadow and the
        // compare passes — the analysis must not claim detection for
        // the original (both compare operands are tainted → bail).
        // The shadow copy itself, though, is checked one-sided.
        let p = program(vec![
            app(Inst::Mov {
                w: Width::W32,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::l(Gpr::Rax)),
            }),
            prot(Inst::Mov {
                w: Width::W32,
                src: Operand::Reg(Reg::l(Gpr::Rax)),
                dst: Operand::Reg(Reg::l(Gpr::R10)),
            }),
            prot(Inst::Cmp {
                w: Width::W32,
                src: Operand::Reg(Reg::l(Gpr::R10)),
                dst: Operand::Reg(Reg::l(Gpr::Rax)),
            }),
            prot(Inst::Jcc {
                cc: Cc::Ne,
                target: EXIT_FUNCTION.into(),
            }),
            app(Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            app(Inst::Ret),
        ]);
        let map = CoverageMap::analyze(&p);
        let orig = map.site(0).expect("w32 producer site");
        assert_eq!(orig.bits, 32);
        assert_eq!(orig.verdicts, vec![StaticVerdict::Unknown; 4]);
        let dup = map.site(1).expect("w32 shadow-copy site");
        assert_eq!(dup.bits, 32);
        assert_eq!(dup.verdicts, vec![StaticVerdict::Detected; 4]);
    }

    #[test]
    fn simd_capture_chain_is_detected() {
        // Batched idiom: two captures into xmm0/xmm1 lanes, xor, test,
        // jne.  A flip in the captured scratch register is caught.
        let p = program(vec![
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::R10)),
            }),
            prot(Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::R10)),
                dst: crate::reg::Xmm(0),
            }),
            prot(Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::R10)),
                dst: crate::reg::Xmm(1),
            }),
            prot(Inst::Vpxor128 {
                a: crate::reg::Xmm(0),
                b: crate::reg::Xmm(1),
                dst: crate::reg::Xmm(2),
            }),
            prot(Inst::Vptest128 {
                a: crate::reg::Xmm(2),
                b: crate::reg::Xmm(2),
            }),
            prot(Inst::Jcc {
                cc: Cc::Ne,
                target: EXIT_FUNCTION.into(),
            }),
            app(Inst::Ret),
        ]);
        let map = CoverageMap::analyze(&p);
        // The first capture's XMM destination: a flip in lane 0 or the
        // zeroed lane 1 reaches the vptest; upper bytes are dead in
        // this chain only via the vpxor128 write-back, which doesn't
        // touch xmm0 — they stay Unknown.
        let cap = map.site(1).expect("capture site");
        assert_eq!(cap.bits, 128);
        for byte in 0..16 {
            assert_eq!(
                cap.verdicts[byte],
                StaticVerdict::Detected,
                "xmm byte {byte}"
            );
        }
        // Both-sides-tainted xor: a flip in the *scratch* register
        // feeds both captures → the xor deltas cancel; the analysis
        // must NOT claim detection for r10's site once both captures
        // read it.  (Site 0 is the r10 write.)
        let r10 = map.site(0).expect("r10 site");
        assert!(
            r10.verdicts.iter().all(|&v| v != StaticVerdict::Detected),
            "cancelling xor must not be credited: {:?}",
            r10.verdicts
        );
    }

    #[test]
    fn pair_and_flags_units_map_raw_bits() {
        let p = program(vec![
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(9),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(3),
                dst: Operand::Reg(Reg::q(Gpr::Rcx)),
            }),
            app(Inst::Cqo { w: Width::W64 }),
            app(Inst::Idiv {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
            }),
            app(Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            app(Inst::Cmp {
                w: Width::W64,
                src: Operand::Imm(0),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            app(Inst::Ret),
        ]);
        let map = CoverageMap::analyze(&p);
        let idiv = map.site(3).expect("idiv site");
        assert_eq!(idiv.bits, 128);
        assert_eq!(idiv.units(), 16);
        // raw_bit 64 selects rdx byte 0 == unit 8.
        assert_eq!(idiv.verdict_for(64), idiv.verdicts[8]);
        let cmp = map.site(5).expect("flags site");
        assert_eq!(cmp.units(), 1);
        assert_eq!(cmp.verdict_for(200), StaticVerdict::Unknown);
    }

    #[test]
    fn rollups_sum_to_total_units() {
        let p = program(vec![
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            prot(mov64(Gpr::Rax, Gpr::R10)),
            prot(Inst::Cmp {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::R10)),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            prot(Inst::Jcc {
                cc: Cc::Ne,
                target: EXIT_FUNCTION.into(),
            }),
            app(Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            app(Inst::Ret),
        ]);
        let map = CoverageMap::analyze(&p);
        let total: usize = map
            .functions
            .iter()
            .flat_map(|f| &f.sites)
            .map(SiteCoverage::units)
            .sum();
        assert_eq!(map.rollup().total(), total);
        let mech_total: usize = map
            .mechanism_rollup()
            .iter()
            .map(|(_, c)| c.total())
            .sum();
        assert_eq!(mech_total, total);
    }

    #[test]
    fn manifest_demotes_unvouched_checker() {
        // Same detected idiom, but the manifest says the pass reserved
        // r12 only — the r10 checker is not vouched for.
        let insts = vec![
            app(Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            prot(mov64(Gpr::Rax, Gpr::R10)),
            prot(Inst::Cmp {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::R10)),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            prot(Inst::Jcc {
                cc: Cc::Ne,
                target: EXIT_FUNCTION.into(),
            }),
            app(Inst::Ret),
        ];
        let p = program(insts);
        let mut manifests = BTreeMap::new();
        manifests.insert(
            "main".to_owned(),
            ProtectionManifest {
                reserved_gprs: vec![Gpr::R12],
                accumulators: vec![],
            },
        );
        let demoted = CoverageMap::analyze_with(&p, Some(&manifests));
        assert_eq!(
            demoted.site(1).unwrap().verdicts,
            vec![StaticVerdict::Unknown; 8]
        );
        // With a truthful manifest the claim stands.
        manifests.insert(
            "main".to_owned(),
            ProtectionManifest {
                reserved_gprs: vec![Gpr::R10],
                accumulators: vec![],
            },
        );
        let kept = CoverageMap::analyze_with(&p, Some(&manifests));
        assert_eq!(
            kept.site(1).unwrap().verdicts,
            vec![StaticVerdict::Detected; 8]
        );
    }

    #[test]
    fn red_zone_pop_check_is_detected() {
        // Requisition idiom: pop, then compare against the still-warm
        // stack slot in the red zone.
        let p = program(vec![
            app(Inst::Push {
                src: Operand::Imm(5),
            }),
            app(Inst::Pop {
                dst: Operand::Reg(Reg::q(Gpr::Rcx)),
            }),
            prot(Inst::Cmp {
                w: Width::W64,
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
                dst: Operand::Reg(Reg::q(Gpr::Rcx)),
            }),
            prot(Inst::Jcc {
                cc: Cc::Ne,
                target: EXIT_FUNCTION.into(),
            }),
            app(Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
            }),
            app(Inst::Ret),
        ]);
        let map = CoverageMap::analyze(&p);
        let pop = map.site(1).expect("pop site");
        assert_eq!(pop.verdicts, vec![StaticVerdict::Detected; 8]);
    }
}
