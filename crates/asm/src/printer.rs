//! AT&T-style textual output for instructions and programs.
//!
//! The format matches the listings in the paper's figures, e.g.
//! `movslq %ecx, %r10`, `vinserti128 $1, %xmm2, %ymm0, %ymm0`,
//! `jne exit_function`.  [`crate::parser`] parses this format back.

use std::fmt::Write as _;

use crate::inst::{Inst, ShiftAmount};
use crate::program::{AsmProgram, DataObject};

/// Renders one instruction in AT&T syntax (no trailing newline).
pub fn print_inst(inst: &Inst) -> String {
    match inst {
        Inst::Mov { w, src, dst } => format!("mov{} {}, {}", w.suffix(), src, dst),
        Inst::Movsx {
            src_w,
            dst_w,
            src,
            dst,
        } => {
            format!("movs{}{} {}, {}", src_w.suffix(), dst_w.suffix(), src, dst)
        }
        Inst::Movzx {
            src_w,
            dst_w,
            src,
            dst,
        } => {
            format!("movz{}{} {}, {}", src_w.suffix(), dst_w.suffix(), src, dst)
        }
        Inst::Lea { mem, dst } => format!("leaq {}, {}", mem, dst),
        Inst::Alu { op, w, src, dst } => {
            format!("{}{} {}, {}", op.mnemonic(), w.suffix(), src, dst)
        }
        Inst::Imul { w, src, dst } => format!("imul{} {}, {}", w.suffix(), src, dst),
        Inst::Unary { op, w, dst } => format!("{}{} {}", op.mnemonic(), w.suffix(), dst),
        Inst::Shift { op, w, amount, dst } => match amount {
            ShiftAmount::Imm(n) => format!("{}{} ${}, {}", op.mnemonic(), w.suffix(), n, dst),
            ShiftAmount::Cl => format!("{}{} %cl, {}", op.mnemonic(), w.suffix(), dst),
        },
        Inst::Cqo { w } => match w {
            crate::reg::Width::W64 => "cqto".to_owned(),
            _ => "cltd".to_owned(),
        },
        Inst::Idiv { w, src } => format!("idiv{} {}", w.suffix(), src),
        Inst::Cmp { w, src, dst } => format!("cmp{} {}, {}", w.suffix(), src, dst),
        Inst::Test { w, src, dst } => format!("test{} {}, {}", w.suffix(), src, dst),
        Inst::Setcc { cc, dst } => format!("set{} {}", cc.mnemonic(), dst),
        Inst::Jmp { target } => format!("jmp {target}"),
        Inst::Jcc { cc, target } => format!("j{} {}", cc.mnemonic(), target),
        Inst::Call { target } => format!("call {target}"),
        Inst::Ret => "ret".to_owned(),
        Inst::Push { src } => format!("pushq {src}"),
        Inst::Pop { dst } => format!("popq {dst}"),
        Inst::MovqToXmm { src, dst } => format!("movq {}, {}", src, dst),
        Inst::MovqFromXmm { src, dst } => format!("movq {}, {}", src, dst),
        Inst::Pinsrq { lane, src, dst } => format!("pinsrq ${}, {}, {}", lane, src, dst),
        Inst::Pextrq { lane, src, dst } => format!("pextrq ${}, {}, {}", lane, src, dst),
        Inst::Vinserti128 {
            lane,
            src,
            src2,
            dst,
        } => {
            format!("vinserti128 ${}, {}, {}, {}", lane, src, src2, dst)
        }
        Inst::Vpxor { a, b, dst } => format!("vpxor {}, {}, {}", a, b, dst),
        Inst::Vptest { a, b } => format!("vptest {}, {}", a, b),
        Inst::Vpxor128 { a, b, dst } => format!("vpxor {}, {}, {}", a, b, dst),
        Inst::Vptest128 { a, b } => format!("vptest {}, {}", a, b),
        Inst::Vinserti64x4 {
            lane,
            src,
            src2,
            dst,
        } => {
            format!("vinserti64x4 ${}, {}, {}, {}", lane, src, src2, dst)
        }
        Inst::Vpxor512 { a, b, dst } => format!("vpxorq {}, {}, {}", a, b, dst),
        Inst::Vptest512 { a, b } => format!("vptestq {}, {}", a, b),
        Inst::Nop => "nop".to_owned(),
    }
}

/// Renders a whole program as an assembly listing with provenance
/// comments.
pub fn print_program(p: &AsmProgram) -> String {
    let mut out = String::new();
    for d in &p.data {
        print_data(&mut out, d);
    }
    for f in &p.functions {
        let _ = writeln!(out, ".globl {}", f.name);
        let _ = writeln!(out, "{}:", f.name);
        for b in &f.blocks {
            let _ = writeln!(out, "{}:", b.label);
            for ai in &b.insts {
                let _ = writeln!(out, "\t{}\t# {}", print_inst(&ai.inst), ai.prov);
            }
        }
    }
    out
}

fn print_data(out: &mut String, d: &DataObject) {
    let _ = writeln!(out, ".data {}:", d.name);
    for w in &d.words {
        let _ = writeln!(out, "\t.quad {w}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Cc;
    use crate::inst::{AluOp, ShiftOp, UnaryOp};
    use crate::operand::{MemRef, Operand};
    use crate::program::single_block_main;
    use crate::reg::{Gpr, Reg, Width, Xmm, Ymm};

    #[test]
    fn paper_fig4_general_instruction_protection() {
        // movslq %ecx, %r10 / movslq %ecx, %rcx / xorq %rcx, %r10
        let dup = Inst::Movsx {
            src_w: Width::W32,
            dst_w: Width::W64,
            src: Operand::Reg(Reg::l(Gpr::Rcx)),
            dst: Reg::q(Gpr::R10),
        };
        assert_eq!(print_inst(&dup), "movslq %ecx, %r10");
        let check = Inst::Alu {
            op: AluOp::Xor,
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rcx)),
            dst: Operand::Reg(Reg::q(Gpr::R10)),
        };
        assert_eq!(print_inst(&check), "xorq %rcx, %r10");
        assert_eq!(
            print_inst(&Inst::Jcc {
                cc: Cc::Ne,
                target: "exit_function".into()
            }),
            "jne exit_function"
        );
    }

    #[test]
    fn paper_fig5_comparison_protection() {
        let cmp = Inst::Cmp {
            w: Width::W32,
            src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -12)),
            dst: Operand::Reg(Reg::l(Gpr::Rax)),
        };
        assert_eq!(print_inst(&cmp), "cmpl -12(%rbp), %eax");
        let set = Inst::Setcc {
            cc: Cc::E,
            dst: Operand::Reg(Reg::b(Gpr::R11)),
        };
        assert_eq!(print_inst(&set), "sete %r11b");
    }

    #[test]
    fn paper_fig6_simd_sequence() {
        assert_eq!(
            print_inst(&Inst::MovqToXmm {
                src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -24)),
                dst: Xmm::new(0),
            }),
            "movq -24(%rbp), %xmm0"
        );
        assert_eq!(
            print_inst(&Inst::Pinsrq {
                lane: 1,
                src: Operand::Mem(MemRef::base_disp(Gpr::Rax, 8)),
                dst: Xmm::new(0),
            }),
            "pinsrq $1, 8(%rax), %xmm0"
        );
        assert_eq!(
            print_inst(&Inst::Vinserti128 {
                lane: 1,
                src: Xmm::new(2),
                src2: Ymm::new(0),
                dst: Ymm::new(0),
            }),
            "vinserti128 $1, %xmm2, %ymm0, %ymm0"
        );
        assert_eq!(
            print_inst(&Inst::Vpxor {
                a: Ymm::new(1),
                b: Ymm::new(0),
                dst: Ymm::new(0)
            }),
            "vpxor %ymm1, %ymm0, %ymm0"
        );
        assert_eq!(
            print_inst(&Inst::Vptest {
                a: Ymm::new(0),
                b: Ymm::new(0)
            }),
            "vptest %ymm0, %ymm0"
        );
    }

    #[test]
    fn paper_fig7_stack_requisition() {
        assert_eq!(
            print_inst(&Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::R10))
            }),
            "pushq %r10"
        );
        assert_eq!(
            print_inst(&Inst::Pop {
                dst: Operand::Reg(Reg::q(Gpr::R10))
            }),
            "popq %r10"
        );
    }

    #[test]
    fn misc_instructions() {
        assert_eq!(print_inst(&Inst::Cqo { w: Width::W64 }), "cqto");
        assert_eq!(print_inst(&Inst::Cqo { w: Width::W32 }), "cltd");
        assert_eq!(
            print_inst(&Inst::Idiv {
                w: Width::W32,
                src: Operand::Reg(Reg::l(Gpr::Rcx))
            }),
            "idivl %ecx"
        );
        assert_eq!(
            print_inst(&Inst::Shift {
                op: ShiftOp::Sar,
                w: Width::W64,
                amount: ShiftAmount::Imm(3),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            }),
            "sarq $3, %rax"
        );
        assert_eq!(
            print_inst(&Inst::Unary {
                op: UnaryOp::Neg,
                w: Width::W32,
                dst: Operand::Reg(Reg::l(Gpr::Rdx)),
            }),
            "negl %edx"
        );
        assert_eq!(
            print_inst(&Inst::Lea {
                mem: MemRef::global("arr", 0),
                dst: Reg::q(Gpr::Rax)
            }),
            "leaq arr(%rip), %rax"
        );
        assert_eq!(print_inst(&Inst::Nop), "nop");
        assert_eq!(print_inst(&Inst::Ret), "ret");
        assert_eq!(
            print_inst(&Inst::Call {
                target: "print_i64".into()
            }),
            "call print_i64"
        );
    }

    #[test]
    fn program_listing_contains_labels_and_provenance() {
        let p = single_block_main(vec![Inst::Nop]);
        let text = print_program(&p);
        assert!(text.contains("main:"));
        assert!(text.contains("main_entry:"));
        assert!(text.contains("nop"));
        assert!(text.contains("# synthetic"));
    }
}
