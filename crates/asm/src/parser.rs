//! Parser for the AT&T-style syntax produced by [`crate::printer`].
//!
//! The parser accepts exactly the printer's output language (plus
//! insignificant whitespace and `#` comments), which gives a cheap
//! round-trip property that the proptests exercise: `parse(print(i)) == i`.

use std::fmt;

use crate::flags::Cc;
use crate::inst::{AluOp, Inst, ShiftAmount, ShiftOp, UnaryOp};
use crate::operand::{MemRef, Operand, Scale};
use crate::program::{AsmBlock, AsmFunction, AsmInst, AsmProgram, DataObject};
use crate::provenance::Provenance;
use crate::reg::{Gpr, Reg, Width, Xmm, Ymm, Zmm};

/// A parse failure, with the offending text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// The text being parsed when the error occurred.
    pub text: String,
}

impl ParseError {
    fn new(message: impl Into<String>, text: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            text: text.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {} in `{}`", self.message, self.text)
    }
}

impl std::error::Error for ParseError {}

/// Splits an operand list on commas that are not inside parentheses.
fn split_operands(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        parts.push(last);
    }
    parts
}

/// Parses one operand.
pub fn parse_operand(s: &str) -> Result<Operand, ParseError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('$') {
        let v: i64 = rest
            .parse()
            .map_err(|_| ParseError::new("bad immediate", s))?;
        return Ok(Operand::Imm(v));
    }
    if let Some(rest) = s.strip_prefix('%') {
        let (g, w) = Gpr::parse(rest).ok_or_else(|| ParseError::new("unknown register", s))?;
        return Ok(Operand::Reg(Reg::gpr(g, w)));
    }
    parse_memref(s).map(Operand::Mem)
}

/// Parses a memory reference like `-24(%rbp)`, `8(%rax, %rcx, 8)`,
/// `sym(%rip)`, or `sym+8(%rax)`.
pub fn parse_memref(s: &str) -> Result<MemRef, ParseError> {
    let s = s.trim();
    let (before, inner) = match s.find('(') {
        Some(i) => {
            let close = s
                .rfind(')')
                .ok_or_else(|| ParseError::new("missing )", s))?;
            (&s[..i], &s[i + 1..close])
        }
        None => (s, ""),
    };
    let mut m = MemRef {
        disp: 0,
        base: None,
        index: None,
        symbol: None,
    };
    let before = before.trim();
    if !before.is_empty() {
        if let Ok(d) = before.parse::<i64>() {
            m.disp = d;
        } else if let Some((sym, d)) = before.split_once('+') {
            m.symbol = Some(sym.trim().to_owned());
            m.disp = d
                .trim()
                .parse()
                .map_err(|_| ParseError::new("bad displacement", s))?;
        } else {
            m.symbol = Some(before.to_owned());
        }
    }
    let inner = inner.trim();
    if !inner.is_empty() && inner != "%rip" {
        let parts = split_operands(inner);
        let mut it = parts.iter();
        if let Some(first) = it.next() {
            // An empty first component is a base-less indexed form,
            // e.g. `(, %r11, 8)`.
            if !first.is_empty() {
                let name = first
                    .strip_prefix('%')
                    .ok_or_else(|| ParseError::new("expected register", s))?;
                let (g, w) = Gpr::parse(name).ok_or_else(|| ParseError::new("bad base", s))?;
                if w != Width::W64 {
                    return Err(ParseError::new("base must be 64-bit", s));
                }
                m.base = Some(g);
            }
        }
        if let Some(second) = it.next() {
            let name = second
                .strip_prefix('%')
                .ok_or_else(|| ParseError::new("expected index register", s))?;
            let (g, _) = Gpr::parse(name).ok_or_else(|| ParseError::new("bad index", s))?;
            let scale = match it.next() {
                Some(f) => {
                    Scale::from_factor(f.parse().map_err(|_| ParseError::new("bad scale", s))?)
                        .ok_or_else(|| ParseError::new("bad scale factor", s))?
                }
                None => Scale::S1,
            };
            m.index = Some((g, scale));
        }
    }
    if m.base.is_none() && m.index.is_none() && m.symbol.is_none() && m.disp == 0 && s != "0" {
        return Err(ParseError::new("empty memory reference", s));
    }
    Ok(m)
}

fn parse_xmm(s: &str) -> Result<Xmm, ParseError> {
    let n = s
        .trim()
        .strip_prefix("%xmm")
        .and_then(|d| d.parse::<u8>().ok())
        .filter(|&n| n < 16)
        .ok_or_else(|| ParseError::new("expected xmm register", s))?;
    Ok(Xmm::new(n))
}

fn parse_ymm(s: &str) -> Result<Ymm, ParseError> {
    let n = s
        .trim()
        .strip_prefix("%ymm")
        .and_then(|d| d.parse::<u8>().ok())
        .filter(|&n| n < 16)
        .ok_or_else(|| ParseError::new("expected ymm register", s))?;
    Ok(Ymm::new(n))
}

fn parse_zmm(s: &str) -> Result<Zmm, ParseError> {
    let n = s
        .trim()
        .strip_prefix("%zmm")
        .and_then(|d| d.parse::<u8>().ok())
        .filter(|&n| n < 16)
        .ok_or_else(|| ParseError::new("expected zmm register", s))?;
    Ok(Zmm::new(n))
}

fn parse_gpr_reg(s: &str) -> Result<Reg, ParseError> {
    match parse_operand(s)? {
        Operand::Reg(r) => Ok(r),
        _ => Err(ParseError::new("expected register", s)),
    }
}

fn parse_lane(s: &str) -> Result<u8, ParseError> {
    s.trim()
        .strip_prefix('$')
        .and_then(|d| d.parse::<u8>().ok())
        .ok_or_else(|| ParseError::new("expected lane immediate", s))
}

/// Parses one instruction in the printer's syntax.
pub fn parse_inst(line: &str) -> Result<Inst, ParseError> {
    let line = match line.find('#') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    };
    let (mn, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let ops = split_operands(rest);
    let err = |m: &str| ParseError::new(m, line);

    // Fixed mnemonics first.
    match mn {
        "nop" => return Ok(Inst::Nop),
        "ret" => return Ok(Inst::Ret),
        "cqto" => return Ok(Inst::Cqo { w: Width::W64 }),
        "cltd" => return Ok(Inst::Cqo { w: Width::W32 }),
        "jmp" => {
            return Ok(Inst::Jmp {
                target: rest.to_owned(),
            })
        }
        "call" => {
            return Ok(Inst::Call {
                target: rest.to_owned(),
            })
        }
        "leaq" => {
            if ops.len() != 2 {
                return Err(err("lea needs 2 operands"));
            }
            return Ok(Inst::Lea {
                mem: parse_memref(ops[0])?,
                dst: parse_gpr_reg(ops[1])?,
            });
        }
        "pushq" => {
            return Ok(Inst::Push {
                src: parse_operand(rest)?,
            })
        }
        "popq" => {
            return Ok(Inst::Pop {
                dst: parse_operand(rest)?,
            })
        }
        "pinsrq" => {
            if ops.len() != 3 {
                return Err(err("pinsrq needs 3 operands"));
            }
            return Ok(Inst::Pinsrq {
                lane: parse_lane(ops[0])?,
                src: parse_operand(ops[1])?,
                dst: parse_xmm(ops[2])?,
            });
        }
        "pextrq" => {
            if ops.len() != 3 {
                return Err(err("pextrq needs 3 operands"));
            }
            return Ok(Inst::Pextrq {
                lane: parse_lane(ops[0])?,
                src: parse_xmm(ops[1])?,
                dst: parse_gpr_reg(ops[2])?,
            });
        }
        "vinserti64x4" => {
            if ops.len() != 4 {
                return Err(err("vinserti64x4 needs 4 operands"));
            }
            return Ok(Inst::Vinserti64x4 {
                lane: parse_lane(ops[0])?,
                src: parse_ymm(ops[1])?,
                src2: parse_zmm(ops[2])?,
                dst: parse_zmm(ops[3])?,
            });
        }
        "vpxorq" => {
            if ops.len() != 3 {
                return Err(err("vpxorq needs 3 operands"));
            }
            return Ok(Inst::Vpxor512 {
                a: parse_zmm(ops[0])?,
                b: parse_zmm(ops[1])?,
                dst: parse_zmm(ops[2])?,
            });
        }
        "vptestq" => {
            if ops.len() != 2 {
                return Err(err("vptestq needs 2 operands"));
            }
            return Ok(Inst::Vptest512 {
                a: parse_zmm(ops[0])?,
                b: parse_zmm(ops[1])?,
            });
        }
        "vinserti128" => {
            if ops.len() != 4 {
                return Err(err("vinserti128 needs 4 operands"));
            }
            return Ok(Inst::Vinserti128 {
                lane: parse_lane(ops[0])?,
                src: parse_xmm(ops[1])?,
                src2: parse_ymm(ops[2])?,
                dst: parse_ymm(ops[3])?,
            });
        }
        "vpxor" => {
            if ops.len() != 3 {
                return Err(err("vpxor needs 3 operands"));
            }
            if ops[0].trim().starts_with("%xmm") {
                return Ok(Inst::Vpxor128 {
                    a: parse_xmm(ops[0])?,
                    b: parse_xmm(ops[1])?,
                    dst: parse_xmm(ops[2])?,
                });
            }
            return Ok(Inst::Vpxor {
                a: parse_ymm(ops[0])?,
                b: parse_ymm(ops[1])?,
                dst: parse_ymm(ops[2])?,
            });
        }
        "vptest" => {
            if ops.len() != 2 {
                return Err(err("vptest needs 2 operands"));
            }
            if ops[0].trim().starts_with("%xmm") {
                return Ok(Inst::Vptest128 {
                    a: parse_xmm(ops[0])?,
                    b: parse_xmm(ops[1])?,
                });
            }
            return Ok(Inst::Vptest {
                a: parse_ymm(ops[0])?,
                b: parse_ymm(ops[1])?,
            });
        }
        "movq" if ops.len() == 2 => {
            // Disambiguate GPR movq / movq-to-xmm / movq-from-xmm.
            let to_xmm = ops[1].starts_with("%xmm");
            let from_xmm = ops[0].starts_with("%xmm");
            if to_xmm {
                return Ok(Inst::MovqToXmm {
                    src: parse_operand(ops[0])?,
                    dst: parse_xmm(ops[1])?,
                });
            }
            if from_xmm {
                return Ok(Inst::MovqFromXmm {
                    src: parse_xmm(ops[0])?,
                    dst: parse_gpr_reg(ops[1])?,
                });
            }
            return Ok(Inst::Mov {
                w: Width::W64,
                src: parse_operand(ops[0])?,
                dst: parse_operand(ops[1])?,
            });
        }
        _ => {}
    }

    // jcc / setcc families.
    if let Some(cc_s) = mn.strip_prefix("set") {
        if let Some(cc) = Cc::parse(cc_s) {
            return Ok(Inst::Setcc {
                cc,
                dst: parse_operand(rest)?,
            });
        }
    }
    if let Some(cc_s) = mn.strip_prefix('j') {
        if let Some(cc) = Cc::parse(cc_s) {
            return Ok(Inst::Jcc {
                cc,
                target: rest.to_owned(),
            });
        }
    }

    // movs/movz with two width suffixes (e.g. movslq, movzbl).
    for (prefix, zero) in [("movs", false), ("movz", true)] {
        if let Some(sfx) = mn.strip_prefix(prefix) {
            let chars: Vec<char> = sfx.chars().collect();
            if chars.len() == 2 {
                if let (Some(sw), Some(dw)) =
                    (Width::from_suffix(chars[0]), Width::from_suffix(chars[1]))
                {
                    if ops.len() != 2 {
                        return Err(err("movsx/movzx need 2 operands"));
                    }
                    let src = parse_operand(ops[0])?;
                    let dst = parse_gpr_reg(ops[1])?;
                    return Ok(if zero {
                        Inst::Movzx {
                            src_w: sw,
                            dst_w: dw,
                            src,
                            dst,
                        }
                    } else {
                        Inst::Movsx {
                            src_w: sw,
                            dst_w: dw,
                            src,
                            dst,
                        }
                    });
                }
            }
        }
    }

    // Width-suffixed families.
    let Some(last) = mn.chars().last() else {
        return Err(err("empty mnemonic"));
    };
    let Some(w) = Width::from_suffix(last) else {
        return Err(err("unknown mnemonic"));
    };
    let stem = &mn[..mn.len() - 1];
    let bin = |f: &dyn Fn(Operand, Operand) -> Inst| -> Result<Inst, ParseError> {
        if ops.len() != 2 {
            return Err(ParseError::new("need 2 operands", line));
        }
        Ok(f(parse_operand(ops[0])?, parse_operand(ops[1])?))
    };
    match stem {
        "mov" => bin(&|src, dst| Inst::Mov { w, src, dst }),
        "add" => bin(&|src, dst| Inst::Alu {
            op: AluOp::Add,
            w,
            src,
            dst,
        }),
        "sub" => bin(&|src, dst| Inst::Alu {
            op: AluOp::Sub,
            w,
            src,
            dst,
        }),
        "and" => bin(&|src, dst| Inst::Alu {
            op: AluOp::And,
            w,
            src,
            dst,
        }),
        "or" => bin(&|src, dst| Inst::Alu {
            op: AluOp::Or,
            w,
            src,
            dst,
        }),
        "xor" => bin(&|src, dst| Inst::Alu {
            op: AluOp::Xor,
            w,
            src,
            dst,
        }),
        "cmp" => bin(&|src, dst| Inst::Cmp { w, src, dst }),
        "test" => bin(&|src, dst| Inst::Test { w, src, dst }),
        "imul" => {
            if ops.len() != 2 {
                return Err(err("imul needs 2 operands"));
            }
            Ok(Inst::Imul {
                w,
                src: parse_operand(ops[0])?,
                dst: parse_gpr_reg(ops[1])?,
            })
        }
        "idiv" => Ok(Inst::Idiv {
            w,
            src: parse_operand(rest)?,
        }),
        "neg" => Ok(Inst::Unary {
            op: UnaryOp::Neg,
            w,
            dst: parse_operand(rest)?,
        }),
        "not" => Ok(Inst::Unary {
            op: UnaryOp::Not,
            w,
            dst: parse_operand(rest)?,
        }),
        "shl" | "shr" | "sar" => {
            let op = match stem {
                "shl" => ShiftOp::Shl,
                "shr" => ShiftOp::Shr,
                _ => ShiftOp::Sar,
            };
            if ops.len() != 2 {
                return Err(err("shift needs 2 operands"));
            }
            let amount = if ops[0] == "%cl" {
                ShiftAmount::Cl
            } else {
                let n = ops[0]
                    .strip_prefix('$')
                    .and_then(|d| d.parse::<u8>().ok())
                    .ok_or_else(|| err("bad shift amount"))?;
                ShiftAmount::Imm(n)
            };
            Ok(Inst::Shift {
                op,
                w,
                amount,
                dst: parse_operand(ops[1])?,
            })
        }
        _ => Err(err("unknown mnemonic")),
    }
}

/// Parses a whole listing produced by [`crate::printer::print_program`].
///
/// # Errors
///
/// Returns the first line that fails to parse.
pub fn parse_program(text: &str) -> Result<AsmProgram, ParseError> {
    let mut prog = AsmProgram::new();
    let mut cur_fn: Option<AsmFunction> = None;
    let mut cur_data: Option<DataObject> = None;
    let mut pending_global: Option<String> = None;

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".data ") {
            if let Some(d) = cur_data.take() {
                prog.data.push(d);
            }
            let name = rest.trim_end_matches(':').trim();
            cur_data = Some(DataObject::new(name, Vec::new()));
            continue;
        }
        if let Some(rest) = line.strip_prefix(".quad") {
            let d = cur_data
                .as_mut()
                .ok_or_else(|| ParseError::new(".quad outside .data", line))?;
            d.words.push(
                rest.trim()
                    .parse()
                    .map_err(|_| ParseError::new("bad .quad value", line))?,
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix(".globl") {
            if let Some(d) = cur_data.take() {
                prog.data.push(d);
            }
            pending_global = Some(rest.trim().to_owned());
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            if let Some(d) = cur_data.take() {
                prog.data.push(d);
            }
            if pending_global.as_deref() == Some(label) {
                // Function start.
                if let Some(f) = cur_fn.take() {
                    prog.functions.push(f);
                }
                cur_fn = Some(AsmFunction::new(label));
                pending_global = None;
            } else {
                let f = cur_fn
                    .as_mut()
                    .ok_or_else(|| ParseError::new("label outside function", line))?;
                f.blocks.push(AsmBlock::new(label));
            }
            continue;
        }
        let inst = parse_inst(line)?;
        let f = cur_fn
            .as_mut()
            .ok_or_else(|| ParseError::new("instruction outside function", line))?;
        if f.blocks.is_empty() {
            f.blocks.push(AsmBlock::new(format!("{}_entry", f.name)));
        }
        let prov = raw
            .split('#')
            .nth(1)
            .map(|c| parse_provenance(c.trim()))
            .unwrap_or(Provenance::Synthetic);
        f.blocks
            .last_mut()
            .expect("block exists")
            .insts
            .push(AsmInst::new(inst, prov));
    }
    if let Some(d) = cur_data.take() {
        prog.data.push(d);
    }
    if let Some(f) = cur_fn.take() {
        prog.functions.push(f);
    }
    Ok(prog)
}

fn parse_provenance(s: &str) -> Provenance {
    use crate::provenance::{GlueKind, Mechanism, TechniqueTag};
    if let Some(id) = s.strip_prefix("ir:") {
        if let Ok(n) = id.parse() {
            return Provenance::FromIr(n);
        }
    }
    if let Some(kind) = s.strip_prefix("glue:") {
        for k in GlueKind::ALL {
            if k.label() == kind {
                return Provenance::Glue(k);
            }
        }
    }
    if let Some(t) = s.strip_prefix("prot:") {
        // `prot:<tag>` (older listings) or `prot:<tag>:<mechanism>`.
        let (t, mech) = match t.split_once(':') {
            Some((t, m)) => (t, Mechanism::parse(m)),
            None => (t, None),
        };
        let tag = match t {
            "ir-eddi" => Some(TechniqueTag::IrEddi),
            "hybrid-asm-eddi" => Some(TechniqueTag::HybridAsmEddi),
            "ferrum" => Some(TechniqueTag::Ferrum),
            _ => None,
        };
        if let Some(tag) = tag {
            return Provenance::Protection(tag, mech.unwrap_or(Mechanism::Dup));
        }
    }
    Provenance::Synthetic
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::{print_inst, print_program};
    use crate::program::single_block_main;

    fn round_trip(text: &str) {
        let inst = parse_inst(text).unwrap_or_else(|e| panic!("parse `{text}`: {e}"));
        assert_eq!(print_inst(&inst), text, "round trip of `{text}`");
    }

    #[test]
    fn parses_paper_listing_instructions() {
        for text in [
            "movslq %ecx, %r10",
            "movslq %ecx, %rcx",
            "xorq %rcx, %r10",
            "jne exit_function",
            "cmpl -12(%rbp), %eax",
            "sete %r11b",
            "jl .LBB7_4",
            "xorb %r11b, %r12b",
            "movq -24(%rbp), %xmm0",
            "movq -24(%rbp), %rax",
            "movq %rax, %xmm1",
            "pinsrq $1, 8(%rax), %xmm0",
            "pinsrq $1, %rdi, %xmm1",
            "vinserti128 $1, %xmm2, %ymm0, %ymm0",
            "vinserti128 $1, %xmm3, %ymm1, %ymm1",
            "vpxor %ymm1, %ymm0, %ymm0",
            "vptest %ymm0, %ymm0",
            "vpxor %xmm1, %xmm0, %xmm0",
            "vptest %xmm0, %xmm0",
            "vinserti64x4 $1, %ymm2, %zmm0, %zmm0",
            "vpxorq %zmm1, %zmm0, %zmm0",
            "vptestq %zmm0, %zmm0",
            "pushq %r10",
            "popq %r10",
            "movslq -68(%rbp), %r10",
            "cmpq %rax, %r10",
            "cmpl $0, -4(%rbp)",
            "je .LBB2_2",
        ] {
            round_trip(text);
        }
    }

    #[test]
    fn parses_general_instruction_forms() {
        for text in [
            "movl $7, %eax",
            "movq %rax, -8(%rbp)",
            "addl %ecx, %eax",
            "subq $16, %rsp",
            "imulq %rcx, %rax",
            "idivl %ecx",
            "cqto",
            "cltd",
            "negl %eax",
            "notq %rdx",
            "shlq $3, %rax",
            "sarl $31, %edx",
            "shrq %cl, %rax",
            "testb %al, %al",
            "leaq 16(%rax, %rcx, 8), %rdx",
            "leaq table(%rip), %rax",
            "movzbl %al, %eax",
            "movq %xmm0, %rax",
            "pextrq $1, %xmm0, %rdi",
            "call print_i64",
            "jmp loop_header",
            "ret",
            "nop",
        ] {
            round_trip(text);
        }
    }

    #[test]
    fn comments_are_ignored() {
        let i = parse_inst("movslq %ecx, %r10 # original instruction").unwrap();
        assert_eq!(print_inst(&i), "movslq %ecx, %r10");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_inst("florble %eax").is_err());
        assert!(parse_inst("movl %eax").is_err());
        assert!(parse_inst("movl $x, %eax").is_err());
        assert!(parse_inst("pinsrq %rax, %xmm0").is_err());
    }

    #[test]
    fn memref_forms_parse() {
        assert_eq!(
            parse_memref("-24(%rbp)").unwrap(),
            MemRef::base_disp(Gpr::Rbp, -24)
        );
        assert_eq!(
            parse_memref("8(%rax, %rcx, 4)").unwrap(),
            MemRef::indexed(Gpr::Rax, Gpr::Rcx, Scale::S4, 8)
        );
        assert_eq!(parse_memref("tab(%rip)").unwrap(), MemRef::global("tab", 0));
        assert_eq!(
            parse_memref("tab+16(%rip)").unwrap(),
            MemRef::global("tab", 16)
        );
        assert!(parse_memref("(%eax)").is_err()); // 32-bit base rejected
                                                  // Base-less indexed form.
        assert_eq!(
            parse_memref("-8(, %r11, 8)").unwrap(),
            MemRef {
                disp: -8,
                base: None,
                index: Some((Gpr::R11, Scale::S8)),
                symbol: None
            }
        );
    }

    #[test]
    fn program_round_trips_through_listing() {
        let p = single_block_main(vec![
            Inst::Mov {
                w: Width::W32,
                src: Operand::Imm(5),
                dst: Operand::Reg(Reg::l(Gpr::Rax)),
            },
            Inst::Call {
                target: "print_i64".into(),
            },
        ]);
        let text = print_program(&p);
        let back = parse_program(&text).expect("program parses");
        assert_eq!(back, p);
    }

    #[test]
    fn program_with_data_round_trips() {
        let mut p = single_block_main(vec![Inst::Nop]);
        p.data.push(DataObject::new("input", vec![1, -2, 3]));
        let text = print_program(&p);
        let back = parse_program(&text).expect("parses");
        assert_eq!(back, p);
    }

    #[test]
    fn provenance_comments_round_trip() {
        use crate::provenance::{GlueKind, Mechanism, TechniqueTag};
        let mut p = single_block_main(vec![]);
        let b = &mut p.functions[0].blocks[0];
        b.insts.clear();
        b.push(Inst::Nop, Provenance::FromIr(12));
        b.push(Inst::Nop, Provenance::Glue(GlueKind::BranchMaterialize));
        for m in Mechanism::ALL {
            b.push(Inst::Nop, Provenance::Protection(TechniqueTag::Ferrum, m));
        }
        b.push(Inst::Ret, Provenance::Synthetic);
        let back = parse_program(&print_program(&p)).expect("parses");
        assert_eq!(back, p);
    }

    #[test]
    fn bare_prot_tag_parses_with_default_mechanism() {
        use crate::provenance::{Mechanism, TechniqueTag};
        assert_eq!(
            parse_provenance("prot:ferrum"),
            Provenance::Protection(TechniqueTag::Ferrum, Mechanism::Dup)
        );
        assert_eq!(
            parse_provenance("prot:ferrum:flag-recheck"),
            Provenance::Protection(TechniqueTag::Ferrum, Mechanism::FlagRecheck)
        );
        assert_eq!(parse_provenance("prot:florble"), Provenance::Synthetic);
    }
}
