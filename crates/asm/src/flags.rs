//! RFLAGS condition flags and condition codes.
//!
//! `cmp`/`test` write only RFLAGS, which makes the flags register the
//! cross-layer fault-injection site the paper highlights in Figs. 8–9:
//! IR-level EDDI never sees the backend-materialised `cmp` and therefore
//! leaves its flag bits unprotected.

use std::fmt;

/// The condition flags modelled by the simulator.
///
/// We model the four flags consumed by the condition codes the backend
/// emits (ZF, SF, CF, OF) plus PF for completeness of `cmp` semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
    /// Parity flag (parity of the low result byte).
    pub pf: bool,
}

/// Identifies one injectable flag bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlagBit {
    Zf,
    Sf,
    Cf,
    Of,
}

impl FlagBit {
    /// The four injectable flags, used when sampling a fault target.
    pub const ALL: [FlagBit; 4] = [FlagBit::Zf, FlagBit::Sf, FlagBit::Cf, FlagBit::Of];
}

impl Flags {
    /// Flips the given flag bit (fault injection into RFLAGS).
    pub fn flip(&mut self, bit: FlagBit) {
        match bit {
            FlagBit::Zf => self.zf = !self.zf,
            FlagBit::Sf => self.sf = !self.sf,
            FlagBit::Cf => self.cf = !self.cf,
            FlagBit::Of => self.of = !self.of,
        }
    }

    /// Computes the flags resulting from `dst - src` at width `w`
    /// (the semantics of `cmp src, dst` and of `sub`).
    pub fn from_sub(dst: u64, src: u64, w: crate::reg::Width) -> Flags {
        let mask = w.mask();
        let a = dst & mask;
        let b = src & mask;
        let result = a.wrapping_sub(b) & mask;
        let sa = w.sext(a);
        let sb = w.sext(b);
        let (sr, of) = match w.bits() {
            8 => {
                let (r, o) = (sa as i8).overflowing_sub(sb as i8);
                (i64::from(r), o)
            }
            16 => {
                let (r, o) = (sa as i16).overflowing_sub(sb as i16);
                (i64::from(r), o)
            }
            32 => {
                let (r, o) = (sa as i32).overflowing_sub(sb as i32);
                (i64::from(r), o)
            }
            _ => sa.overflowing_sub(sb),
        };
        let _ = sr;
        Flags {
            zf: result == 0,
            sf: (result >> (w.bits() - 1)) & 1 == 1,
            cf: a < b,
            of,
            pf: (result as u8).count_ones().is_multiple_of(2),
        }
    }

    /// Computes the flags resulting from `dst + src` at width `w`.
    pub fn from_add(dst: u64, src: u64, w: crate::reg::Width) -> Flags {
        let mask = w.mask();
        let a = dst & mask;
        let b = src & mask;
        let result = a.wrapping_add(b) & mask;
        let sa = w.sext(a);
        let sb = w.sext(b);
        let of = match w.bits() {
            8 => (sa as i8).overflowing_add(sb as i8).1,
            16 => (sa as i16).overflowing_add(sb as i16).1,
            32 => (sa as i32).overflowing_add(sb as i32).1,
            _ => sa.overflowing_add(sb).1,
        };
        Flags {
            zf: result == 0,
            sf: (result >> (w.bits() - 1)) & 1 == 1,
            cf: (a as u128 + b as u128) > mask as u128,
            of,
            pf: (result as u8).count_ones().is_multiple_of(2),
        }
    }

    /// Computes the flags for a logic-op result (`and`/`or`/`xor`/`test`):
    /// CF and OF are cleared, ZF/SF/PF reflect the result.
    pub fn from_logic(result: u64, w: crate::reg::Width) -> Flags {
        let r = result & w.mask();
        Flags {
            zf: r == 0,
            sf: (r >> (w.bits() - 1)) & 1 == 1,
            cf: false,
            of: false,
            pf: (r as u8).count_ones().is_multiple_of(2),
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}{}]",
            if self.zf { "Z" } else { "-" },
            if self.sf { "S" } else { "-" },
            if self.cf { "C" } else { "-" },
            if self.of { "O" } else { "-" },
            if self.pf { "P" } else { "-" },
        )
    }
}

/// x86 condition codes, as used by `jcc` and `setcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cc {
    /// Equal / zero (ZF).
    E,
    /// Not equal / not zero (!ZF).
    Ne,
    /// Signed less (SF != OF).
    L,
    /// Signed less-or-equal (ZF or SF != OF).
    Le,
    /// Signed greater (!ZF and SF == OF).
    G,
    /// Signed greater-or-equal (SF == OF).
    Ge,
    /// Unsigned below (CF).
    B,
    /// Unsigned below-or-equal (CF or ZF).
    Be,
    /// Unsigned above (!CF and !ZF).
    A,
    /// Unsigned above-or-equal (!CF).
    Ae,
    /// Sign (SF).
    S,
    /// Not sign (!SF).
    Ns,
}

impl Cc {
    /// All modelled condition codes.
    pub const ALL: [Cc; 12] = [
        Cc::E,
        Cc::Ne,
        Cc::L,
        Cc::Le,
        Cc::G,
        Cc::Ge,
        Cc::B,
        Cc::Be,
        Cc::A,
        Cc::Ae,
        Cc::S,
        Cc::Ns,
    ];

    /// Evaluates the condition against a flag state.
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cc::E => f.zf,
            Cc::Ne => !f.zf,
            Cc::L => f.sf != f.of,
            Cc::Le => f.zf || (f.sf != f.of),
            Cc::G => !f.zf && (f.sf == f.of),
            Cc::Ge => f.sf == f.of,
            Cc::B => f.cf,
            Cc::Be => f.cf || f.zf,
            Cc::A => !f.cf && !f.zf,
            Cc::Ae => !f.cf,
            Cc::S => f.sf,
            Cc::Ns => !f.sf,
        }
    }

    /// The logically negated condition, e.g. `E` ↔ `Ne`.
    pub fn negate(self) -> Cc {
        match self {
            Cc::E => Cc::Ne,
            Cc::Ne => Cc::E,
            Cc::L => Cc::Ge,
            Cc::Ge => Cc::L,
            Cc::Le => Cc::G,
            Cc::G => Cc::Le,
            Cc::B => Cc::Ae,
            Cc::Ae => Cc::B,
            Cc::Be => Cc::A,
            Cc::A => Cc::Be,
            Cc::S => Cc::Ns,
            Cc::Ns => Cc::S,
        }
    }

    /// AT&T mnemonic suffix (`e`, `ne`, `l`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cc::E => "e",
            Cc::Ne => "ne",
            Cc::L => "l",
            Cc::Le => "le",
            Cc::G => "g",
            Cc::Ge => "ge",
            Cc::B => "b",
            Cc::Be => "be",
            Cc::A => "a",
            Cc::Ae => "ae",
            Cc::S => "s",
            Cc::Ns => "ns",
        }
    }

    /// Parses a mnemonic suffix back into a condition code.
    pub fn parse(s: &str) -> Option<Cc> {
        Cc::ALL.into_iter().find(|cc| cc.mnemonic() == s)
    }
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Width;

    #[test]
    fn sub_flags_equal_operands_set_zf() {
        let f = Flags::from_sub(42, 42, Width::W32);
        assert!(f.zf);
        assert!(!f.sf);
        assert!(!f.cf);
        assert!(!f.of);
    }

    #[test]
    fn sub_flags_signed_borrow() {
        // 0 - 1 at 32 bits: result 0xffff_ffff, SF=1, CF=1 (unsigned borrow).
        let f = Flags::from_sub(0, 1, Width::W32);
        assert!(!f.zf);
        assert!(f.sf);
        assert!(f.cf);
        assert!(!f.of);
    }

    #[test]
    fn sub_flags_signed_overflow() {
        // i32::MIN - 1 overflows signed arithmetic.
        let f = Flags::from_sub(0x8000_0000, 1, Width::W32);
        assert!(f.of);
        assert!(!f.sf); // result 0x7fff_ffff
    }

    #[test]
    fn add_flags_unsigned_carry_and_signed_overflow() {
        let f = Flags::from_add(0xffff_ffff, 1, Width::W32);
        assert!(f.zf);
        assert!(f.cf);
        assert!(!f.of);
        let f = Flags::from_add(0x7fff_ffff, 1, Width::W32);
        assert!(f.of);
        assert!(f.sf);
        assert!(!f.cf);
    }

    #[test]
    fn logic_flags_clear_cf_of() {
        let f = Flags::from_logic(0, Width::W64);
        assert!(f.zf && !f.cf && !f.of);
        let f = Flags::from_logic(u64::MAX, Width::W64);
        assert!(!f.zf && f.sf);
    }

    #[test]
    fn parity_flag_counts_low_byte() {
        assert!(Flags::from_logic(0b11, Width::W8).pf); // two set bits: even
        assert!(!Flags::from_logic(0b111, Width::W8).pf); // three: odd
    }

    #[test]
    fn cc_eval_matches_comparison_semantics() {
        // Exhaustively check cc evaluation against native comparisons for a
        // grid of interesting 32-bit operand pairs.
        let vals: [u32; 7] = [0, 1, 2, 0x7fff_ffff, 0x8000_0000, 0xffff_fffe, 0xffff_ffff];
        for &a in &vals {
            for &b in &vals {
                let f = Flags::from_sub(u64::from(a), u64::from(b), Width::W32);
                let (sa, sb) = (a as i32, b as i32);
                assert_eq!(Cc::E.eval(f), a == b, "{a} e {b}");
                assert_eq!(Cc::Ne.eval(f), a != b, "{a} ne {b}");
                assert_eq!(Cc::L.eval(f), sa < sb, "{a} l {b}");
                assert_eq!(Cc::Le.eval(f), sa <= sb, "{a} le {b}");
                assert_eq!(Cc::G.eval(f), sa > sb, "{a} g {b}");
                assert_eq!(Cc::Ge.eval(f), sa >= sb, "{a} ge {b}");
                assert_eq!(Cc::B.eval(f), a < b, "{a} b {b}");
                assert_eq!(Cc::Be.eval(f), a <= b, "{a} be {b}");
                assert_eq!(Cc::A.eval(f), a > b, "{a} a {b}");
                assert_eq!(Cc::Ae.eval(f), a >= b, "{a} ae {b}");
            }
        }
    }

    #[test]
    fn cc_negation_is_involutive_and_complementary() {
        for cc in Cc::ALL {
            assert_eq!(cc.negate().negate(), cc);
            for z in [false, true] {
                for s in [false, true] {
                    for c in [false, true] {
                        for o in [false, true] {
                            let f = Flags {
                                zf: z,
                                sf: s,
                                cf: c,
                                of: o,
                                pf: false,
                            };
                            assert_ne!(cc.eval(f), cc.negate().eval(f), "{cc:?} under {f}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cc_mnemonics_round_trip() {
        for cc in Cc::ALL {
            assert_eq!(Cc::parse(cc.mnemonic()), Some(cc));
        }
        assert_eq!(Cc::parse("zz"), None);
    }

    #[test]
    fn flag_flip_is_involutive() {
        let mut f = Flags::from_sub(3, 3, Width::W64);
        let orig = f;
        for bit in FlagBit::ALL {
            f.flip(bit);
            assert_ne!(f, orig);
            f.flip(bit);
            assert_eq!(f, orig);
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Flags::default().to_string(), "[-----]");
        let f = Flags {
            zf: true,
            sf: false,
            cf: true,
            of: false,
            pf: true,
        };
        assert_eq!(f.to_string(), "[Z-C-P]");
    }
}
