//! Cross-layer provenance of assembly instructions.
//!
//! The paper's root-cause analysis (§IV-B1) attributes IR-level EDDI's
//! coverage loss to instructions that only exist after backend lowering.
//! We make that attribution queryable by tagging every emitted assembly
//! instruction with where it came from.

use std::fmt;

/// Classes of backend-generated instructions that have no one-to-one IR
/// counterpart and are therefore invisible to IR-level protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlueKind {
    /// Branch materialisation: the `cmp`/`test` reloading a stored
    /// condition byte before a conditional jump (Figs. 8–9).
    BranchMaterialize,
    /// Value/address staging for a store sync point.
    StoreStaging,
    /// Argument and return-value marshalling around calls.
    CallGlue,
    /// Return-value staging for `ret`.
    RetGlue,
    /// Function prologue/epilogue (frame setup, callee-saved saves).
    FrameSetup,
    /// Spill/reload traffic between frame slots and registers that the
    /// -O0-style backend emits inside lowered computations.
    SlotTraffic,
    /// Address computation for array/global accesses.
    AddressCalc,
}

impl GlueKind {
    /// All glue kinds (for reporting tables).
    pub const ALL: [GlueKind; 7] = [
        GlueKind::BranchMaterialize,
        GlueKind::StoreStaging,
        GlueKind::CallGlue,
        GlueKind::RetGlue,
        GlueKind::FrameSetup,
        GlueKind::SlotTraffic,
        GlueKind::AddressCalc,
    ];

    /// Human-readable label used in the root-cause report.
    pub fn label(self) -> &'static str {
        match self {
            GlueKind::BranchMaterialize => "branch-materialize",
            GlueKind::StoreStaging => "store-staging",
            GlueKind::CallGlue => "call-glue",
            GlueKind::RetGlue => "ret-glue",
            GlueKind::FrameSetup => "frame-setup",
            GlueKind::SlotTraffic => "slot-traffic",
            GlueKind::AddressCalc => "address-calc",
        }
    }
}

impl fmt::Display for GlueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The protection *mechanism* that emitted an instruction.
///
/// FERRUM's overhead is not one number: the paper breaks it down into
/// duplicate computation, checker instructions, SIMD accumulator
/// traffic, deferred-flag bookkeeping, and register-requisition glue
/// (Figs. 4–7).  Tagging every protection instruction with its
/// mechanism lets `ferrum-cpu` attribute executed instructions and
/// cycle-proxy cost to each mechanism — the shape of the paper's
/// overhead-breakdown figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mechanism {
    /// Duplicate computation: the shadow instruction stream (Fig. 4),
    /// replayed `cqo`/`idiv` style double executions, and IR-level
    /// shadow values lowered by the backend.
    Dup,
    /// Immediate scalar checker: `xor`/`cmp` + `jne detected` right at
    /// the sync point (classic EDDI, and FERRUM's non-batchable sites).
    Check,
    /// SIMD batching capture: `movq`/`pinsrq` moving a result pair into
    /// an XMM/YMM/ZMM accumulator lane (Fig. 6 top half).
    BatchCapture,
    /// SIMD batch flush: `vinserti128`/`vpxor`/`vptest` + `jne`
    /// draining an accumulator at a sync point (Fig. 6 bottom half).
    BatchFlush,
    /// Deferred-flag capture: the duplicated `cmp`/`test` plus the
    /// `setcc` pair persisting both outcomes to bytes (Fig. 5 top).
    FlagDup,
    /// Deferred-flag recheck: `cmpb` + `jne` comparing a captured
    /// `setcc` pair at the consuming branch (Fig. 5 bottom).
    FlagRecheck,
    /// Stack-level register requisition glue: `push`/`pop` of
    /// requisitioned registers, red-zone verification, and detour-stub
    /// jumps (Fig. 7).
    Requisition,
}

impl Mechanism {
    /// All mechanisms, in overhead-table order.
    pub const ALL: [Mechanism; 7] = [
        Mechanism::Dup,
        Mechanism::Check,
        Mechanism::BatchCapture,
        Mechanism::BatchFlush,
        Mechanism::FlagDup,
        Mechanism::FlagRecheck,
        Mechanism::Requisition,
    ];

    /// Stable text label (used in listings, reports, and JSON keys).
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Dup => "dup",
            Mechanism::Check => "check",
            Mechanism::BatchCapture => "batch-capture",
            Mechanism::BatchFlush => "batch-flush",
            Mechanism::FlagDup => "flag-dup",
            Mechanism::FlagRecheck => "flag-recheck",
            Mechanism::Requisition => "requisition",
        }
    }

    /// Parses a [`Mechanism::label`] back into the enum.
    pub fn parse(s: &str) -> Option<Mechanism> {
        Mechanism::ALL.iter().copied().find(|m| m.label() == s)
    }

    /// True for mechanisms that *verify* state and can therefore fire a
    /// detection: the scalar check, the SIMD batch flush, the deferred
    /// flag recheck, and requisition red-zone verification.  The
    /// capture-side mechanisms (dup, batch-capture, flag-dup) only move
    /// data and can never detect anything on their own.
    pub fn is_checker(self) -> bool {
        matches!(
            self,
            Mechanism::Check
                | Mechanism::BatchFlush
                | Mechanism::FlagRecheck
                | Mechanism::Requisition
        )
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which protection technique inserted an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechniqueTag {
    /// IR-level EDDI (duplicates and checks appear in the IR and are
    /// lowered like ordinary code; this tag marks the *lowered* result).
    IrEddi,
    /// The replicated plain assembly-level EDDI baseline.
    HybridAsmEddi,
    /// FERRUM.
    Ferrum,
}

impl fmt::Display for TechniqueTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TechniqueTag::IrEddi => "ir-eddi",
            TechniqueTag::HybridAsmEddi => "hybrid-asm-eddi",
            TechniqueTag::Ferrum => "ferrum",
        })
    }
}

/// Where an assembly instruction came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Lowered from the MIR instruction with this id, in the function
    /// named by the enclosing [`crate::program::AsmFunction`].
    FromIr(u32),
    /// Backend-generated footprint with no IR counterpart.
    Glue(GlueKind),
    /// Inserted by a protection pass (duplicates, checkers, requisition
    /// pushes/pops), tagged with the [`Mechanism`] that emitted it.
    Protection(TechniqueTag, Mechanism),
    /// Hand-written or synthetic (tests, examples).
    Synthetic,
}

impl Provenance {
    /// True if the instruction was created by a protection pass.
    pub fn is_protection(self) -> bool {
        matches!(self, Provenance::Protection(..))
    }

    /// The emitting mechanism, for protection instructions.
    pub fn mechanism(self) -> Option<Mechanism> {
        match self {
            Provenance::Protection(_, m) => Some(m),
            _ => None,
        }
    }

    /// True if the instruction is backend glue (the unprotected residue
    /// under IR-level EDDI).
    pub fn is_glue(self) -> bool {
        matches!(self, Provenance::Glue(_))
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::FromIr(id) => write!(f, "ir:{id}"),
            Provenance::Glue(k) => write!(f, "glue:{k}"),
            Provenance::Protection(t, m) => write!(f, "prot:{t}:{m}"),
            Provenance::Synthetic => write!(f, "synthetic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        let p = Provenance::Protection(TechniqueTag::Ferrum, Mechanism::Dup);
        assert!(p.is_protection());
        assert!(!p.is_glue());
        assert_eq!(p.mechanism(), Some(Mechanism::Dup));
        assert!(Provenance::Glue(GlueKind::CallGlue).is_glue());
        assert_eq!(Provenance::Glue(GlueKind::CallGlue).mechanism(), None);
        assert!(!Provenance::FromIr(3).is_glue());
        assert!(!Provenance::Synthetic.is_protection());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Provenance::FromIr(7).to_string(), "ir:7");
        assert_eq!(
            Provenance::Glue(GlueKind::BranchMaterialize).to_string(),
            "glue:branch-materialize"
        );
        assert_eq!(
            Provenance::Protection(TechniqueTag::HybridAsmEddi, Mechanism::Check).to_string(),
            "prot:hybrid-asm-eddi:check"
        );
        assert_eq!(
            Provenance::Protection(TechniqueTag::Ferrum, Mechanism::BatchFlush).to_string(),
            "prot:ferrum:batch-flush"
        );
        assert_eq!(Provenance::Synthetic.to_string(), "synthetic");
    }

    #[test]
    fn glue_kinds_have_unique_labels() {
        let mut labels: Vec<&str> = GlueKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), GlueKind::ALL.len());
    }

    #[test]
    fn checker_split_partitions_the_mechanisms() {
        let checkers: Vec<Mechanism> = Mechanism::ALL
            .into_iter()
            .filter(|m| m.is_checker())
            .collect();
        assert_eq!(
            checkers,
            vec![
                Mechanism::Check,
                Mechanism::BatchFlush,
                Mechanism::FlagRecheck,
                Mechanism::Requisition
            ]
        );
        assert!(!Mechanism::Dup.is_checker());
        assert!(!Mechanism::BatchCapture.is_checker());
        assert!(!Mechanism::FlagDup.is_checker());
    }

    #[test]
    fn mechanism_labels_round_trip() {
        for m in Mechanism::ALL {
            assert_eq!(Mechanism::parse(m.label()), Some(m));
        }
        assert_eq!(Mechanism::parse("warp-drive"), None);
        let mut labels: Vec<&str> = Mechanism::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Mechanism::ALL.len());
    }
}
