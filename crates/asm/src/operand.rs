//! Instruction operands: registers, immediates, and memory references.

use std::fmt;

use crate::reg::{Gpr, Reg};

/// Scale factor of a memory reference's index register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    S1,
    S2,
    S4,
    S8,
}

impl Scale {
    /// The numeric multiplier.
    pub fn factor(self) -> u64 {
        match self {
            Scale::S1 => 1,
            Scale::S2 => 2,
            Scale::S4 => 4,
            Scale::S8 => 8,
        }
    }

    /// Builds a scale from a multiplier.
    pub fn from_factor(f: u64) -> Option<Scale> {
        match f {
            1 => Some(Scale::S1),
            2 => Some(Scale::S2),
            4 => Some(Scale::S4),
            8 => Some(Scale::S8),
            _ => None,
        }
    }
}

/// An x86 memory reference: `disp(base, index, scale)` in AT&T syntax,
/// optionally anchored at a named global symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Displacement added to the effective address.
    pub disp: i64,
    /// Optional base register (always the 64-bit view).
    pub base: Option<Gpr>,
    /// Optional scaled index register.
    pub index: Option<(Gpr, Scale)>,
    /// Optional global symbol whose address anchors the reference
    /// (RIP-relative addressing of program data).
    pub symbol: Option<String>,
}

impl MemRef {
    /// `disp(%base)` — the common frame-slot form, e.g. `-24(%rbp)`.
    pub fn base_disp(base: Gpr, disp: i64) -> MemRef {
        MemRef {
            disp,
            base: Some(base),
            index: None,
            symbol: None,
        }
    }

    /// `disp(%base, %index, scale)` — an indexed reference.
    pub fn indexed(base: Gpr, index: Gpr, scale: Scale, disp: i64) -> MemRef {
        MemRef {
            disp,
            base: Some(base),
            index: Some((index, scale)),
            symbol: None,
        }
    }

    /// `symbol(%rip)`-style reference to a global, with optional register
    /// index added by the address computation.
    pub fn global(symbol: impl Into<String>, disp: i64) -> MemRef {
        MemRef {
            disp,
            base: None,
            index: None,
            symbol: Some(symbol.into()),
        }
    }

    /// Registers read when computing this effective address.
    pub fn regs_read(&self) -> impl Iterator<Item = Gpr> + '_ {
        self.base.into_iter().chain(self.index.map(|(g, _)| g))
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(sym) = &self.symbol {
            write!(f, "{sym}")?;
            if self.disp != 0 {
                write!(f, "+{}", self.disp)?;
            }
            if self.base.is_none() && self.index.is_none() {
                write!(f, "(%rip)")?;
            }
        } else if self.disp != 0 || (self.base.is_none() && self.index.is_none()) {
            write!(f, "{}", self.disp)?;
        }
        if self.base.is_some() || self.index.is_some() {
            write!(f, "(")?;
            if let Some(b) = self.base {
                write!(f, "%{}", b.name64())?;
            }
            if let Some((i, s)) = self.index {
                write!(f, ", %{}, {}", i.name64(), s.factor())?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A generic instruction operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register view.
    Reg(Reg),
    /// An immediate value.
    Imm(i64),
    /// A memory reference.
    Mem(MemRef),
}

impl Operand {
    /// Convenience constructor for a register operand.
    pub fn reg(r: Reg) -> Operand {
        Operand::Reg(r)
    }

    /// Convenience constructor for an immediate operand.
    pub fn imm(v: i64) -> Operand {
        Operand::Imm(v)
    }

    /// Convenience constructor for a memory operand.
    pub fn mem(m: MemRef) -> Operand {
        Operand::Mem(m)
    }

    /// Returns the register if this is a register operand.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the memory reference if this is a memory operand.
    pub fn as_mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// True if this operand touches memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Operand {
        Operand::Mem(m)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "${v}"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Width;

    #[test]
    fn memref_display_forms() {
        assert_eq!(MemRef::base_disp(Gpr::Rbp, -24).to_string(), "-24(%rbp)");
        assert_eq!(MemRef::base_disp(Gpr::Rax, 0).to_string(), "(%rax)");
        assert_eq!(MemRef::base_disp(Gpr::Rax, 8).to_string(), "8(%rax)");
        assert_eq!(
            MemRef::indexed(Gpr::Rax, Gpr::Rcx, Scale::S8, 16).to_string(),
            "16(%rax, %rcx, 8)"
        );
        assert_eq!(MemRef::global("table", 0).to_string(), "table(%rip)");
        let mut g = MemRef::global("table", 4);
        assert_eq!(g.to_string(), "table+4(%rip)");
        g.base = Some(Gpr::Rdx);
        assert_eq!(g.to_string(), "table+4(%rdx)");
    }

    #[test]
    fn memref_regs_read() {
        let m = MemRef::indexed(Gpr::Rax, Gpr::Rcx, Scale::S4, 0);
        let regs: Vec<Gpr> = m.regs_read().collect();
        assert_eq!(regs, vec![Gpr::Rax, Gpr::Rcx]);
        assert_eq!(MemRef::global("g", 0).regs_read().count(), 0);
    }

    #[test]
    fn scale_round_trips() {
        for s in [Scale::S1, Scale::S2, Scale::S4, Scale::S8] {
            assert_eq!(Scale::from_factor(s.factor()), Some(s));
        }
        assert_eq!(Scale::from_factor(3), None);
    }

    #[test]
    fn operand_display_and_accessors() {
        let r = Operand::reg(Reg::gpr(Gpr::Rcx, Width::W32));
        assert_eq!(r.to_string(), "%ecx");
        assert!(r.as_reg().is_some());
        assert!(!r.is_mem());
        let i = Operand::imm(-7);
        assert_eq!(i.to_string(), "$-7");
        assert_eq!(i.as_reg(), None);
        let m = Operand::mem(MemRef::base_disp(Gpr::Rbp, -8));
        assert!(m.is_mem());
        assert!(m.as_mem().is_some());
    }
}
