//! The instruction AST and its static properties.
//!
//! The properties exposed here — destination register, flag effects,
//! registers read/written — drive the fault-site enumeration (which
//! dynamic instructions have an injectable destination) and the protection
//! passes (where checkers may be inserted without clobbering live flags).

use crate::flags::Cc;
use crate::operand::{MemRef, Operand};
use crate::program::Label;
use crate::reg::{Gpr, Reg, Width, Xmm, Ymm, Zmm};

/// Two-operand ALU operations (`dst = dst OP src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
}

impl AluOp {
    /// AT&T mnemonic stem (width suffix appended separately).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
        }
    }
}

/// Single-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
}

impl UnaryOp {
    /// AT&T mnemonic stem.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Not => "not",
        }
    }
}

/// Shift operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
}

impl ShiftOp {
    /// AT&T mnemonic stem.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

/// Shift amount: an immediate or the `%cl` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftAmount {
    Imm(u8),
    Cl,
}

/// The modelled instruction set.
///
/// Operand order follows AT&T syntax: source first, destination last.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `mov{bwlq} src, dst` (at most one memory operand).
    Mov {
        w: Width,
        src: Operand,
        dst: Operand,
    },
    /// Sign-extending move, e.g. `movslq src, dst` (W32 → W64).
    Movsx {
        src_w: Width,
        dst_w: Width,
        src: Operand,
        dst: Reg,
    },
    /// Zero-extending move, e.g. `movzbl src, dst`.
    Movzx {
        src_w: Width,
        dst_w: Width,
        src: Operand,
        dst: Reg,
    },
    /// `lea mem, dst` — effective-address computation, no flags.
    Lea { mem: MemRef, dst: Reg },
    /// Two-operand ALU: `dst = dst OP src`, writes flags.
    Alu {
        op: AluOp,
        w: Width,
        src: Operand,
        dst: Operand,
    },
    /// Two-operand signed multiply: `imul src, dst` (register destination).
    Imul { w: Width, src: Operand, dst: Reg },
    /// Unary ALU on a register or memory operand, writes flags.
    Unary { op: UnaryOp, w: Width, dst: Operand },
    /// Shift by immediate or `%cl`, writes flags.
    Shift {
        op: ShiftOp,
        w: Width,
        amount: ShiftAmount,
        dst: Operand,
    },
    /// `cqo`/`cdq`: sign-extend `%rax` into `%rdx` (width of the pair).
    Cqo { w: Width },
    /// Signed divide of `rdx:rax` by `src`; quotient → `%rax`, remainder →
    /// `%rdx`.
    Idiv { w: Width, src: Operand },
    /// `cmp src, dst`: computes `dst - src`, writes only flags.
    Cmp {
        w: Width,
        src: Operand,
        dst: Operand,
    },
    /// `test src, dst`: computes `dst & src`, writes only flags.
    Test {
        w: Width,
        src: Operand,
        dst: Operand,
    },
    /// `set<cc> dst` — materialise a condition into a byte.
    Setcc { cc: Cc, dst: Operand },
    /// Unconditional jump.
    Jmp { target: Label },
    /// Conditional jump.
    Jcc { cc: Cc, target: Label },
    /// Call a function (or intrinsic) by name.
    Call { target: Label },
    /// Return from the current function.
    Ret,
    /// Push a 64-bit value.
    Push { src: Operand },
    /// Pop a 64-bit value.
    Pop { dst: Operand },
    /// `movq src, %xmmN` — move 64 bits from a GPR or memory into lane 0
    /// of an XMM register, zeroing the rest (the duplication idiom of
    /// Fig. 6 in the paper).
    MovqToXmm { src: Operand, dst: Xmm },
    /// `movq %xmmN, dst` — move lane 0 of an XMM register to a GPR.
    MovqFromXmm { src: Xmm, dst: Reg },
    /// `pinsrq $lane, src, %xmmN` — insert 64 bits into lane 0 or 1.
    Pinsrq { lane: u8, src: Operand, dst: Xmm },
    /// `pextrq $lane, %xmmN, dst` — extract 64 bits from lane 0 or 1.
    Pextrq { lane: u8, src: Xmm, dst: Reg },
    /// `vinserti128 $lane, %xmm, %ymm, %ymm` — widen two XMM halves into
    /// a YMM register.
    Vinserti128 {
        lane: u8,
        src: Xmm,
        src2: Ymm,
        dst: Ymm,
    },
    /// `vpxor %ymm, %ymm, %ymm` — 256-bit XOR (three-operand AVX form).
    Vpxor { a: Ymm, b: Ymm, dst: Ymm },
    /// `vptest %ymm, %ymm` — sets ZF if `a & b == 0` (the batched
    /// mismatch check of Fig. 6).
    Vptest { a: Ymm, b: Ymm },
    /// `vpxor %xmm, %xmm, %xmm` — 128-bit XOR (zeroes the upper YMM
    /// half, VEX semantics).  Used when a FERRUM batch flushes with two
    /// or fewer entries.
    Vpxor128 { a: Xmm, b: Xmm, dst: Xmm },
    /// `vptest %xmm, %xmm` — 128-bit mismatch test.
    Vptest128 { a: Xmm, b: Xmm },
    /// `vinserti64x4 $lane, %ymm, %zmm, %zmm` — AVX-512: widen two YMM
    /// halves into a ZMM register (the 512-bit analogue of
    /// `vinserti128`, paper §III-B3).
    Vinserti64x4 {
        lane: u8,
        src: Ymm,
        src2: Zmm,
        dst: Zmm,
    },
    /// `vpxorq %zmm, %zmm, %zmm` — 512-bit XOR.
    Vpxor512 { a: Zmm, b: Zmm, dst: Zmm },
    /// 512-bit mismatch test, modelled as a fused
    /// `vptestmq`+`kortestb` setting ZF when `a & b == 0` (AVX-512 has
    /// no direct `vptest`; the mask-register round trip is folded into
    /// one modelled instruction — see DESIGN.md).
    Vptest512 { a: Zmm, b: Zmm },
    /// No operation.
    Nop,
}

/// Compact per-instruction register touch sets: source (read) and
/// output (written) masks over the sixteen GPRs and the sixteen SIMD
/// registers.  Bit *i* of a GPR mask corresponds to `Gpr::index() == i`;
/// bit *i* of a SIMD mask is the XMM/YMM/ZMM register index.
///
/// These masks are the single source of truth for register touch sets:
/// the spare-register scanner (`analysis::regscan`), the decoded
/// engine's per-instruction src/out summaries, and the
/// fault-propagation summary builder all consume them.  They describe
/// what *executing this one instruction* architecturally reads and
/// writes — callee effects of a `call` belong to the callee's own
/// instructions, not to the call site (interprocedural conventions such
/// as argument registers and caller-saved clobbers are layered on top
/// by `analysis::liveness`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct RegMasks {
    /// GPRs read (bit per [`Gpr::index`]).
    pub src_gpr: u16,
    /// GPRs written.
    pub out_gpr: u16,
    /// SIMD registers read (bit per register index).
    pub src_simd: u16,
    /// SIMD registers written.
    pub out_simd: u16,
}

impl RegMasks {
    /// Union of source and output GPR bits.
    pub fn touched_gpr(&self) -> u16 {
        self.src_gpr | self.out_gpr
    }

    /// Union of source and output SIMD bits.
    pub fn touched_simd(&self) -> u16 {
        self.src_simd | self.out_simd
    }

    /// Union with another mask set.
    pub fn union(&self, other: RegMasks) -> RegMasks {
        RegMasks {
            src_gpr: self.src_gpr | other.src_gpr,
            out_gpr: self.out_gpr | other.out_gpr,
            src_simd: self.src_simd | other.src_simd,
            out_simd: self.out_simd | other.out_simd,
        }
    }
}

/// Architectural destination written by an instruction, as seen by the
/// fault injector ("destination register" in §IV-A2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DestClass {
    /// A general-purpose register view.
    Gpr(Reg),
    /// Both `%rax` and `%rdx` (division); the injector picks one.
    RaxRdxPair(Width),
    /// The RFLAGS register (`cmp`/`test`/`vptest`).
    Rflags,
    /// An XMM register (128 bits).
    Xmm(Xmm),
    /// A YMM register (256 bits).
    Ymm(Ymm),
    /// A ZMM register (512 bits).
    Zmm(Zmm),
    /// No injectable destination (stores, branches, pushes, ...).
    None,
}

impl Inst {
    /// The destination the fault injector may corrupt after this
    /// instruction writes back.
    ///
    /// Memory destinations report [`DestClass::None`]: the fault model
    /// assumes ECC-protected memory (§II-A).  Stack-pointer side effects
    /// of `push`/`pop`/`call`/`ret` are likewise excluded — stack-pointer
    /// corruption almost always crashes rather than silently corrupting
    /// data, and PIN-based injectors target the explicit destination.
    pub fn dest_class(&self) -> DestClass {
        match self {
            Inst::Mov { w, dst, .. } | Inst::Alu { w, dst, .. } => match dst {
                Operand::Reg(r) => DestClass::Gpr(r.with_width(*w)),
                _ => DestClass::None,
            },
            Inst::Movsx { dst_w, dst, .. } | Inst::Movzx { dst_w, dst, .. } => {
                DestClass::Gpr(dst.with_width(*dst_w))
            }
            Inst::Lea { dst, .. } => DestClass::Gpr(dst.with_width(Width::W64)),
            Inst::Imul { w, dst, .. } => DestClass::Gpr(dst.with_width(*w)),
            Inst::Unary { w, dst, .. } | Inst::Shift { w, dst, .. } => match dst {
                Operand::Reg(r) => DestClass::Gpr(r.with_width(*w)),
                _ => DestClass::None,
            },
            Inst::Cqo { w } => DestClass::Gpr(Reg::gpr(Gpr::Rdx, *w)),
            Inst::Idiv { w, .. } => DestClass::RaxRdxPair(*w),
            Inst::Cmp { .. }
            | Inst::Test { .. }
            | Inst::Vptest { .. }
            | Inst::Vptest128 { .. }
            | Inst::Vptest512 { .. } => DestClass::Rflags,
            Inst::Setcc { dst, .. } => match dst {
                Operand::Reg(r) => DestClass::Gpr(r.with_width(Width::W8)),
                _ => DestClass::None,
            },
            Inst::Pop { dst } => match dst {
                Operand::Reg(r) => DestClass::Gpr(r.with_width(Width::W64)),
                _ => DestClass::None,
            },
            Inst::MovqFromXmm { dst, .. } | Inst::Pextrq { dst, .. } => {
                DestClass::Gpr(dst.with_width(Width::W64))
            }
            Inst::MovqToXmm { dst, .. } | Inst::Pinsrq { dst, .. } | Inst::Vpxor128 { dst, .. } => {
                DestClass::Xmm(*dst)
            }
            Inst::Vinserti128 { dst, .. } | Inst::Vpxor { dst, .. } => DestClass::Ymm(*dst),
            Inst::Vinserti64x4 { dst, .. } | Inst::Vpxor512 { dst, .. } => DestClass::Zmm(*dst),
            Inst::Jmp { .. }
            | Inst::Jcc { .. }
            | Inst::Call { .. }
            | Inst::Ret
            | Inst::Push { .. }
            | Inst::Nop => DestClass::None,
        }
    }

    /// Width in bits of the injectable fault destination, or `None` when
    /// the instruction is not an eligible fault site.
    ///
    /// Frame-register (`%rsp`/`%rbp`) destinations are excluded: faults
    /// there are overwhelmingly crash-inducing, and PIN-style samplers
    /// target data destinations (see the fault-model discussion in
    /// DESIGN.md).  The protection passes and the fault injector share
    /// this single definition, which is what makes the 100%-coverage
    /// claim checkable.
    pub fn injectable_bits(&self) -> Option<u32> {
        match self.dest_class() {
            DestClass::Gpr(r) if !r.gpr.is_frame() => Some(r.width.bits()),
            DestClass::Gpr(_) => None,
            DestClass::RaxRdxPair(w) => Some(2 * w.bits()),
            DestClass::Rflags => Some(4),
            DestClass::Xmm(_) => Some(128),
            DestClass::Ymm(_) => Some(256),
            DestClass::Zmm(_) => Some(512),
            DestClass::None => None,
        }
    }

    /// The general-purpose register written, if any (convenience over
    /// [`Inst::dest_class`]).
    pub fn dest_gpr(&self) -> Option<Reg> {
        match self.dest_class() {
            DestClass::Gpr(r) => Some(r),
            _ => None,
        }
    }

    /// True if executing this instruction overwrites RFLAGS.
    pub fn writes_flags(&self) -> bool {
        matches!(
            self,
            Inst::Alu { .. }
                | Inst::Imul { .. }
                | Inst::Unary { .. }
                | Inst::Shift { .. }
                | Inst::Cmp { .. }
                | Inst::Test { .. }
                | Inst::Vptest { .. }
                | Inst::Vptest128 { .. }
                | Inst::Vptest512 { .. }
        )
    }

    /// True if this instruction reads RFLAGS.
    pub fn reads_flags(&self) -> bool {
        matches!(self, Inst::Jcc { .. } | Inst::Setcc { .. })
    }

    /// True if this instruction ends a basic block (terminator).
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Jmp { .. } | Inst::Ret)
    }

    /// True for control-transfer instructions of any kind.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Call { .. } | Inst::Ret
        )
    }

    /// The branch/call target label, if any.
    pub fn target(&self) -> Option<&Label> {
        match self {
            Inst::Jmp { target } | Inst::Jcc { target, .. } | Inst::Call { target } => Some(target),
            _ => None,
        }
    }

    /// All general-purpose registers *read* by the instruction (including
    /// address registers of memory operands and implicit operands).
    pub fn gprs_read(&self) -> Vec<Gpr> {
        fn op_read_into(out: &mut Vec<Gpr>, op: &Operand) {
            match op {
                Operand::Reg(r) => out.push(r.gpr),
                Operand::Mem(m) => out.extend(m.regs_read()),
                Operand::Imm(_) => {}
            }
        }
        let mut out = Vec::new();
        match self {
            Inst::Mov { src, dst, .. } => {
                op_read_into(&mut out, src);
                if let Operand::Mem(m) = dst {
                    out.extend(m.regs_read());
                }
            }
            Inst::Movsx { src, .. } | Inst::Movzx { src, .. } => op_read_into(&mut out, src),
            Inst::Lea { mem, .. } => out.extend(mem.regs_read()),
            Inst::Alu { src, dst, .. } => {
                op_read_into(&mut out, src);
                op_read_into(&mut out, dst); // read-modify-write
            }
            Inst::Imul { src, dst, .. } => {
                op_read_into(&mut out, src);
                out.push(dst.gpr);
            }
            Inst::Unary { dst, .. } => op_read_into(&mut out, dst),
            Inst::Shift { amount, dst, .. } => {
                if matches!(amount, ShiftAmount::Cl) {
                    out.push(Gpr::Rcx);
                }
                op_read_into(&mut out, dst);
            }
            Inst::Cqo { .. } => out.push(Gpr::Rax),
            Inst::Idiv { src, .. } => {
                out.push(Gpr::Rax);
                out.push(Gpr::Rdx);
                op_read_into(&mut out, src);
            }
            Inst::Cmp { src, dst, .. } | Inst::Test { src, dst, .. } => {
                op_read_into(&mut out, src);
                op_read_into(&mut out, dst);
            }
            Inst::Setcc { dst, .. } => {
                if let Operand::Mem(m) = dst {
                    out.extend(m.regs_read());
                }
            }
            Inst::Push { src } => {
                op_read_into(&mut out, src);
                out.push(Gpr::Rsp);
            }
            Inst::Pop { dst } => {
                if let Operand::Mem(m) = dst {
                    out.extend(m.regs_read());
                }
                out.push(Gpr::Rsp);
            }
            Inst::MovqToXmm { src, .. } | Inst::Pinsrq { src, .. } => op_read_into(&mut out, src),
            Inst::Call { target } => {
                // The print intrinsic reads its argument from `%rdi`; a
                // real call pushes the return address through `%rsp`.
                if target == crate::PRINT_I64 {
                    out.push(Gpr::Rdi);
                }
                out.push(Gpr::Rsp);
            }
            Inst::Ret => out.push(Gpr::Rsp),
            Inst::Jmp { .. }
            | Inst::Jcc { .. }
            | Inst::MovqFromXmm { .. }
            | Inst::Pextrq { .. }
            | Inst::Vinserti128 { .. }
            | Inst::Vpxor { .. }
            | Inst::Vptest { .. }
            | Inst::Vpxor128 { .. }
            | Inst::Vptest128 { .. }
            | Inst::Vinserti64x4 { .. }
            | Inst::Vpxor512 { .. }
            | Inst::Vptest512 { .. }
            | Inst::Nop => {}
        }
        out
    }

    /// All general-purpose registers *written* by the instruction,
    /// including implicit ones (`%rsp` for push/pop, `%rax`/`%rdx` for
    /// division).  Used by the spare-register scanner (§III-B1).
    pub fn gprs_written(&self) -> Vec<Gpr> {
        let mut out = Vec::new();
        match self.dest_class() {
            DestClass::Gpr(r) => out.push(r.gpr),
            DestClass::RaxRdxPair(_) => {
                out.push(Gpr::Rax);
                out.push(Gpr::Rdx);
            }
            _ => {}
        }
        match self {
            Inst::Push { .. } | Inst::Pop { .. } | Inst::Call { .. } | Inst::Ret => {
                out.push(Gpr::Rsp);
            }
            _ => {}
        }
        out
    }

    /// XMM/YMM registers read (by index; a YMM read covers its XMM alias).
    pub fn simd_read(&self) -> Vec<u8> {
        match self {
            Inst::MovqFromXmm { src, .. } | Inst::Pextrq { src, .. } => vec![src.0],
            Inst::Pinsrq { dst, .. } => vec![dst.0], // read-modify-write
            Inst::Vinserti128 { src, src2, .. } => vec![src.0, src2.0],
            Inst::Vpxor { a, b, .. } => vec![a.0, b.0],
            Inst::Vptest { a, b } => vec![a.0, b.0],
            Inst::Vpxor128 { a, b, .. } => vec![a.0, b.0],
            Inst::Vptest128 { a, b } => vec![a.0, b.0],
            Inst::Vinserti64x4 { src, src2, .. } => vec![src.0, src2.0],
            Inst::Vpxor512 { a, b, .. } => vec![a.0, b.0],
            Inst::Vptest512 { a, b } => vec![a.0, b.0],
            _ => Vec::new(),
        }
    }

    /// XMM/YMM registers written (by index).
    pub fn simd_written(&self) -> Vec<u8> {
        match self {
            Inst::MovqToXmm { dst, .. } | Inst::Pinsrq { dst, .. } => vec![dst.0],
            Inst::Vinserti128 { dst, .. } | Inst::Vpxor { dst, .. } => vec![dst.0],
            Inst::Vpxor128 { dst, .. } => vec![dst.0],
            Inst::Vinserti64x4 { dst, .. } | Inst::Vpxor512 { dst, .. } => vec![dst.0],
            _ => Vec::new(),
        }
    }

    /// True if the instruction touches memory (data access, not stack
    /// bookkeeping by push/pop).
    pub fn touches_memory(&self) -> bool {
        let op_mem = |op: &Operand| op.is_mem();
        match self {
            Inst::Mov { src, dst, .. }
            | Inst::Alu { src, dst, .. }
            | Inst::Cmp { src, dst, .. }
            | Inst::Test { src, dst, .. } => op_mem(src) || op_mem(dst),
            Inst::Movsx { src, .. } | Inst::Movzx { src, .. } | Inst::Idiv { src, .. } => {
                op_mem(src)
            }
            Inst::Unary { dst, .. } | Inst::Shift { dst, .. } | Inst::Setcc { dst, .. } => {
                op_mem(dst)
            }
            Inst::Imul { src, .. } => op_mem(src),
            Inst::Push { .. } | Inst::Pop { .. } => true,
            Inst::MovqToXmm { src, .. } | Inst::Pinsrq { src, .. } => op_mem(src),
            _ => false,
        }
    }

    /// Compact src/out register masks for this instruction (see
    /// [`RegMasks`]).  Derived from [`Inst::gprs_read`],
    /// [`Inst::gprs_written`], [`Inst::simd_read`] and
    /// [`Inst::simd_written`] so all consumers agree bit-for-bit.
    pub fn reg_masks(&self) -> RegMasks {
        let mut m = RegMasks::default();
        for g in self.gprs_read() {
            m.src_gpr |= 1 << g.index();
        }
        for g in self.gprs_written() {
            m.out_gpr |= 1 << g.index();
        }
        for s in self.simd_read() {
            m.src_simd |= 1 << s;
        }
        for s in self.simd_written() {
            m.out_simd |= 1 << s;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::MemRef;

    fn mov_rr(src: Gpr, dst: Gpr) -> Inst {
        Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(src)),
            dst: Operand::Reg(Reg::q(dst)),
        }
    }

    #[test]
    fn dest_class_of_register_mov() {
        assert_eq!(
            mov_rr(Gpr::Rax, Gpr::Rcx).dest_class(),
            DestClass::Gpr(Reg::q(Gpr::Rcx))
        );
    }

    #[test]
    fn dest_class_of_store_is_none() {
        let store = Inst::Mov {
            w: Width::W32,
            src: Operand::Reg(Reg::l(Gpr::Rax)),
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
        };
        assert_eq!(store.dest_class(), DestClass::None);
        assert!(store.touches_memory());
    }

    #[test]
    fn cmp_and_test_target_rflags() {
        let cmp = Inst::Cmp {
            w: Width::W32,
            src: Operand::Imm(0),
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -4)),
        };
        assert_eq!(cmp.dest_class(), DestClass::Rflags);
        assert!(cmp.writes_flags());
        assert!(!cmp.reads_flags());
    }

    #[test]
    fn idiv_writes_both_halves() {
        let idiv = Inst::Idiv {
            w: Width::W32,
            src: Operand::Reg(Reg::l(Gpr::Rcx)),
        };
        assert_eq!(idiv.dest_class(), DestClass::RaxRdxPair(Width::W32));
        let written = idiv.gprs_written();
        assert!(written.contains(&Gpr::Rax) && written.contains(&Gpr::Rdx));
        let read = idiv.gprs_read();
        assert!(read.contains(&Gpr::Rax) && read.contains(&Gpr::Rdx) && read.contains(&Gpr::Rcx));
    }

    #[test]
    fn setcc_reads_flags_writes_byte() {
        let s = Inst::Setcc {
            cc: Cc::E,
            dst: Operand::Reg(Reg::b(Gpr::R11)),
        };
        assert!(s.reads_flags());
        assert_eq!(s.dest_class(), DestClass::Gpr(Reg::b(Gpr::R11)));
    }

    #[test]
    fn push_pop_track_rsp() {
        let push = Inst::Push {
            src: Operand::Reg(Reg::q(Gpr::R10)),
        };
        assert!(push.gprs_written().contains(&Gpr::Rsp));
        assert!(push.gprs_read().contains(&Gpr::R10));
        assert_eq!(push.dest_class(), DestClass::None);
        let pop = Inst::Pop {
            dst: Operand::Reg(Reg::q(Gpr::R10)),
        };
        assert_eq!(pop.dest_class(), DestClass::Gpr(Reg::q(Gpr::R10)));
        assert!(pop.gprs_written().contains(&Gpr::Rsp));
    }

    #[test]
    fn memory_operand_address_registers_are_read() {
        let load = Inst::Mov {
            w: Width::W64,
            src: Operand::Mem(MemRef::indexed(
                Gpr::Rax,
                Gpr::Rcx,
                crate::operand::Scale::S8,
                8,
            )),
            dst: Operand::Reg(Reg::q(Gpr::Rdx)),
        };
        let read = load.gprs_read();
        assert!(read.contains(&Gpr::Rax) && read.contains(&Gpr::Rcx));
        assert!(!read.contains(&Gpr::Rdx));
    }

    #[test]
    fn alu_reads_its_destination() {
        let add = Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rbx)),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        };
        let read = add.gprs_read();
        assert!(read.contains(&Gpr::Rax) && read.contains(&Gpr::Rbx));
        assert!(add.writes_flags());
    }

    #[test]
    fn simd_reads_and_writes() {
        let ins = Inst::Vinserti128 {
            lane: 1,
            src: Xmm::new(2),
            src2: Ymm::new(0),
            dst: Ymm::new(0),
        };
        assert_eq!(ins.simd_read(), vec![2, 0]);
        assert_eq!(ins.simd_written(), vec![0]);
        let x = Inst::Vpxor {
            a: Ymm::new(1),
            b: Ymm::new(0),
            dst: Ymm::new(0),
        };
        assert_eq!(x.simd_read(), vec![1, 0]);
        let t = Inst::Vptest {
            a: Ymm::new(0),
            b: Ymm::new(0),
        };
        assert!(t.writes_flags());
        assert_eq!(t.dest_class(), DestClass::Rflags);
        let pinsr = Inst::Pinsrq {
            lane: 1,
            src: Operand::Reg(Reg::q(Gpr::Rdi)),
            dst: Xmm::new(1),
        };
        assert_eq!(pinsr.simd_read(), vec![1]);
        assert_eq!(pinsr.simd_written(), vec![1]);
    }

    #[test]
    fn control_flow_properties() {
        let jmp = Inst::Jmp {
            target: "bb1".into(),
        };
        assert!(jmp.is_terminator() && jmp.is_control());
        assert_eq!(jmp.target().map(String::as_str), Some("bb1"));
        let jcc = Inst::Jcc {
            cc: Cc::Ne,
            target: "exit".into(),
        };
        assert!(!jcc.is_terminator());
        assert!(jcc.is_control() && jcc.reads_flags());
        assert!(Inst::Ret.is_terminator());
        assert_eq!(Inst::Ret.target(), None);
    }

    #[test]
    fn call_print_reads_rdi_and_rsp() {
        let print = Inst::Call {
            target: crate::PRINT_I64.into(),
        };
        let read = print.gprs_read();
        assert!(read.contains(&Gpr::Rdi));
        assert!(read.contains(&Gpr::Rsp));
        // A plain function call only touches the stack pointer.
        let call = Inst::Call {
            target: "helper".into(),
        };
        let read = call.gprs_read();
        assert!(!read.contains(&Gpr::Rdi));
        assert!(read.contains(&Gpr::Rsp));
        assert!(call.gprs_written().contains(&Gpr::Rsp));
        // `ret` pops through the stack pointer.
        assert!(Inst::Ret.gprs_read().contains(&Gpr::Rsp));
        assert!(Inst::Ret.gprs_written().contains(&Gpr::Rsp));
    }

    #[test]
    fn reg_masks_agree_with_register_lists() {
        // The compact masks must agree bit-for-bit with the Vec-returning
        // register lists for a representative instruction zoo.
        let zoo: Vec<Inst> = vec![
            mov_rr(Gpr::Rax, Gpr::Rcx),
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Idiv {
                w: Width::W32,
                src: Operand::Reg(Reg::l(Gpr::Rcx)),
            },
            Inst::Shift {
                op: ShiftOp::Shl,
                w: Width::W64,
                amount: ShiftAmount::Cl,
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::R10)),
            },
            Inst::Pop {
                dst: Operand::Reg(Reg::q(Gpr::R10)),
            },
            Inst::Call {
                target: crate::PRINT_I64.into(),
            },
            Inst::Ret,
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Xmm::new(3),
            },
            Inst::Pinsrq {
                lane: 1,
                src: Operand::Reg(Reg::q(Gpr::Rdi)),
                dst: Xmm::new(1),
            },
            Inst::Vinserti128 {
                lane: 1,
                src: Xmm::new(2),
                src2: Ymm::new(4),
                dst: Ymm::new(4),
            },
            Inst::Vptest {
                a: Ymm::new(0),
                b: Ymm::new(1),
            },
            Inst::Nop,
        ];
        for inst in &zoo {
            let m = inst.reg_masks();
            let mut src_gpr = 0u16;
            for g in inst.gprs_read() {
                src_gpr |= 1 << g.index();
            }
            let mut out_gpr = 0u16;
            for g in inst.gprs_written() {
                out_gpr |= 1 << g.index();
            }
            let mut src_simd = 0u16;
            for s in inst.simd_read() {
                src_simd |= 1 << s;
            }
            let mut out_simd = 0u16;
            for s in inst.simd_written() {
                out_simd |= 1 << s;
            }
            assert_eq!(m.src_gpr, src_gpr, "{inst:?}");
            assert_eq!(m.out_gpr, out_gpr, "{inst:?}");
            assert_eq!(m.src_simd, src_simd, "{inst:?}");
            assert_eq!(m.out_simd, out_simd, "{inst:?}");
            assert_eq!(m.touched_gpr(), src_gpr | out_gpr);
            assert_eq!(m.touched_simd(), src_simd | out_simd);
        }
    }

    #[test]
    fn shift_by_cl_reads_rcx() {
        let s = Inst::Shift {
            op: ShiftOp::Shl,
            w: Width::W64,
            amount: ShiftAmount::Cl,
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        };
        assert!(s.gprs_read().contains(&Gpr::Rcx));
    }
}
