//! Crate-level property tests for the assembly model.
//!
//! Compiled only with `--features proptest` after manually restoring
//! the external `proptest` dev-dependency (hermetic-build policy: the
//! default workspace must resolve with zero registry access).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use ferrum_asm::analysis::coverage::{CoverageMap, StaticVerdict};
use ferrum_asm::analysis::liveness::{byte_bit, Liveness};
use ferrum_asm::analysis::Cfg;
use ferrum_asm::inst::{AluOp, DestClass, Inst};
use ferrum_asm::operand::Operand;
use ferrum_asm::program::{AsmBlock, AsmFunction, AsmInst};
use ferrum_asm::reg::{Gpr, Reg, Width, ALL_GPRS};

fn gpr() -> impl Strategy<Value = Gpr> {
    (0usize..16).prop_map(|i| ALL_GPRS[i])
}

fn simple_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (gpr(), gpr()).prop_map(|(s, d)| Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(s)),
            dst: Operand::Reg(Reg::q(d)),
        }),
        (gpr(), gpr()).prop_map(|(s, d)| Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            src: Operand::Reg(Reg::q(s)),
            dst: Operand::Reg(Reg::q(d)),
        }),
        gpr().prop_map(|g| Inst::Push {
            src: Operand::Reg(Reg::q(g))
        }),
        Just(Inst::Nop),
    ]
}

proptest! {
    #[test]
    fn function_usage_is_union_of_block_usages(
        blocks in proptest::collection::vec(
            proptest::collection::vec(simple_inst(), 0..8), 1..5)
    ) {
        let mut f = AsmFunction::new("main");
        for (i, insts) in blocks.iter().enumerate() {
            let mut b = AsmBlock::new(format!("b{i}"));
            for inst in insts {
                b.insts.push(AsmInst::synthetic(inst.clone()));
            }
            f.blocks.push(b);
        }
        let rep = SpareReport::scan(&f);
        let mut union = RegUsage::new();
        for u in &rep.per_block {
            union.merge(*u);
        }
        for g in ALL_GPRS {
            prop_assert_eq!(rep.function.uses_gpr(g), union.uses_gpr(g), "{}", g);
        }
    }

    #[test]
    fn gprs_written_is_consistent_with_injectability(inst in simple_inst()) {
        // An instruction with an injectable GPR destination must report
        // that register as written.
        if let Some(r) = inst.dest_gpr() {
            prop_assert!(inst.gprs_written().contains(&r.gpr));
        }
    }

    #[test]
    fn program_listing_round_trips(
        insts in proptest::collection::vec(simple_inst(), 0..12)
    ) {
        let mut p = ferrum_asm::program::single_block_main(insts);
        p.data.push(ferrum_asm::program::DataObject::new("blob", vec![1, -2, 3]));
        let text = ferrum_asm::printer::print_program(&p);
        let back = ferrum_asm::parser::parse_program(&text).expect("parses");
        prop_assert_eq!(back, p);
    }

    #[test]
    fn parser_never_panics_on_noise(s in "[ -~]{0,40}") {
        // Arbitrary printable junk must produce Ok or Err, never a panic.
        let _ = ferrum_asm::parser::parse_inst(&s);
        let _ = ferrum_asm::parser::parse_program(&s);
    }

    #[test]
    fn coverage_map_covers_every_injectable_site(
        insts in proptest::collection::vec(simple_inst(), 0..16)
    ) {
        let p = ferrum_asm::program::single_block_main(insts);
        let map = CoverageMap::analyze(&p);
        // Single-block main ⇒ flat pc == instruction index.
        for (pc, ai) in p.functions[0].blocks[0].insts.iter().enumerate() {
            match ai.inst.injectable_bits() {
                Some(bits) => {
                    let site = map.site(pc).expect("injectable site has an entry");
                    prop_assert_eq!(site.bits, bits);
                    let expect_units = match ai.inst.dest_class() {
                        DestClass::Rflags => 1,
                        _ => (bits as usize) / 8,
                    };
                    prop_assert_eq!(site.units(), expect_units);
                    // Every raw bit resolves to a verdict.
                    for raw in 0..(2 * bits as u16) {
                        prop_assert!(map.verdict_at(pc, raw).is_some());
                    }
                }
                None => prop_assert!(map.site(pc).is_none()),
            }
        }
    }

    #[test]
    fn coverage_rollups_sum_and_analysis_is_deterministic(
        insts in proptest::collection::vec(simple_inst(), 0..16)
    ) {
        let p = ferrum_asm::program::single_block_main(insts);
        let map = CoverageMap::analyze(&p);
        // Function rollups merge to the global rollup, which counts
        // exactly one verdict per site unit.
        let mut merged = ferrum_asm::analysis::coverage::VerdictCounts::default();
        let mut units = 0usize;
        for f in &map.functions {
            merged.merge(&f.rollup);
            units += f.sites.iter().map(|s| s.units()).sum::<usize>();
        }
        prop_assert_eq!(merged, map.rollup());
        prop_assert_eq!(merged.total(), units);
        let mech_total: usize = map.mechanism_rollup().iter().map(|(_, c)| c.total()).sum();
        prop_assert_eq!(mech_total, units);
        // Same input ⇒ same map.
        prop_assert_eq!(map.functions, CoverageMap::analyze(&p).functions);
    }

    #[test]
    fn dead_destination_bytes_are_always_masked(
        insts in proptest::collection::vec(simple_inst(), 1..16)
    ) {
        // Liveness-masking is the base case of the classifier: a
        // destination byte dead immediately after the faulted
        // instruction must be Masked (the exact-taint scan can only
        // add *more* Masked verdicts, never lose this one).
        let p = ferrum_asm::program::single_block_main(insts);
        let map = CoverageMap::analyze(&p);
        let f = &p.functions[0];
        let cfg = Cfg::build(f);
        let live = Liveness::compute(f, &cfg);
        let after = live.live_after_each(f, 0);
        for (pc, ai) in f.blocks[0].insts.iter().enumerate() {
            let DestClass::Gpr(r) = ai.inst.dest_class() else { continue };
            let site = map.site(pc).expect("gpr site");
            for byte in 0..site.units() {
                if after[pc] & byte_bit(r.gpr, byte as u8) == 0 {
                    prop_assert_eq!(
                        site.verdicts[byte],
                        StaticVerdict::Masked,
                        "pc {} byte {} dead but not Masked", pc, byte
                    );
                }
            }
        }
    }
}
