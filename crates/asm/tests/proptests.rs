//! Crate-level property tests for the assembly model.
//!
//! Compiled only with `--features proptest` after manually restoring
//! the external `proptest` dev-dependency (hermetic-build policy: the
//! default workspace must resolve with zero registry access).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use ferrum_asm::analysis::regscan::{RegUsage, SpareReport};
use ferrum_asm::inst::{AluOp, Inst};
use ferrum_asm::operand::Operand;
use ferrum_asm::program::{AsmBlock, AsmFunction, AsmInst};
use ferrum_asm::reg::{Gpr, Reg, Width, ALL_GPRS};

fn gpr() -> impl Strategy<Value = Gpr> {
    (0usize..16).prop_map(|i| ALL_GPRS[i])
}

fn simple_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (gpr(), gpr()).prop_map(|(s, d)| Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(s)),
            dst: Operand::Reg(Reg::q(d)),
        }),
        (gpr(), gpr()).prop_map(|(s, d)| Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            src: Operand::Reg(Reg::q(s)),
            dst: Operand::Reg(Reg::q(d)),
        }),
        gpr().prop_map(|g| Inst::Push {
            src: Operand::Reg(Reg::q(g))
        }),
        Just(Inst::Nop),
    ]
}

proptest! {
    #[test]
    fn function_usage_is_union_of_block_usages(
        blocks in proptest::collection::vec(
            proptest::collection::vec(simple_inst(), 0..8), 1..5)
    ) {
        let mut f = AsmFunction::new("main");
        for (i, insts) in blocks.iter().enumerate() {
            let mut b = AsmBlock::new(format!("b{i}"));
            for inst in insts {
                b.insts.push(AsmInst::synthetic(inst.clone()));
            }
            f.blocks.push(b);
        }
        let rep = SpareReport::scan(&f);
        let mut union = RegUsage::new();
        for u in &rep.per_block {
            union.merge(*u);
        }
        for g in ALL_GPRS {
            prop_assert_eq!(rep.function.uses_gpr(g), union.uses_gpr(g), "{}", g);
        }
    }

    #[test]
    fn gprs_written_is_consistent_with_injectability(inst in simple_inst()) {
        // An instruction with an injectable GPR destination must report
        // that register as written.
        if let Some(r) = inst.dest_gpr() {
            prop_assert!(inst.gprs_written().contains(&r.gpr));
        }
    }

    #[test]
    fn program_listing_round_trips(
        insts in proptest::collection::vec(simple_inst(), 0..12)
    ) {
        let mut p = ferrum_asm::program::single_block_main(insts);
        p.data.push(ferrum_asm::program::DataObject::new("blob", vec![1, -2, 3]));
        let text = ferrum_asm::printer::print_program(&p);
        let back = ferrum_asm::parser::parse_program(&text).expect("parses");
        prop_assert_eq!(back, p);
    }

    #[test]
    fn parser_never_panics_on_noise(s in "[ -~]{0,40}") {
        // Arbitrary printable junk must produce Ok or Err, never a panic.
        let _ = ferrum_asm::parser::parse_inst(&s);
        let _ = ferrum_asm::parser::parse_program(&s);
    }
}
