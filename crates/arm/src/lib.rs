//! # ferrum-arm — the AArch64/NEON port of FERRUM
//!
//! The paper defers other instruction sets to future work but sketches
//! the port (§III-B5): "the ARM architecture benefits significantly
//! from the NEON SIMD instruction sets".  This crate implements that
//! sketch end to end on a compact A64 model:
//!
//! * [`reg`]/[`inst`]/[`program`] — an AArch64 subset: `X0`–`X30` with
//!   `W` views, the NZCV flags, 128-bit NEON `V` registers, and the
//!   instructions a protected kernel needs (three-operand ALU, loads
//!   and stores, `cmp`+`b.cond`, `cset`, and the NEON duplication
//!   idioms `ins`/`eor`/`umaxp`/`fmov`+`cbnz`),
//! * [`exec`] — an interpreter with the same single-bit write-back
//!   fault model as the x86 simulator,
//! * [`neon`] — the FERRUM-NEON pass: duplicate-first protection of
//!   data instructions (A64's three-operand form means *no* read-modify-
//!   write pre-copies are ever needed), NEON-batched checking two
//!   results at a time (NEON vectors are 128-bit, so batches are
//!   narrower than AVX2's four — exactly the trade-off the paper
//!   alludes to), and deferred `cset`-pair detection for `cmp`/`b.cond`,
//! * [`kernels`] — hand-built A64 kernels with oracles, and exhaustive
//!   fault campaigns proving the same zero-SDC property as on x86.
//!
//! The crate is deliberately self-contained (no dependency on the x86
//! crates): the point is that the *technique* ports, not the tooling.

pub mod exec;
pub mod inst;
pub mod kernels;
pub mod neon;
pub mod program;
pub mod reg;

pub use exec::{run, ArmFault, ArmOutcome, ArmRun};
pub use neon::protect_neon;
pub use program::ArmProgram;
