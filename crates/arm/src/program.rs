//! Program structure: labelled blocks, global data, validation.

use std::collections::HashSet;
use std::fmt;

use crate::inst::AInst;

/// One labelled block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmBlock {
    /// Unique label.
    pub label: String,
    /// Instructions.
    pub insts: Vec<AInst>,
}

impl ArmBlock {
    /// Creates an empty block.
    pub fn new(label: impl Into<String>) -> ArmBlock {
        ArmBlock {
            label: label.into(),
            insts: Vec::new(),
        }
    }
}

/// A single-function A64 program with one global data array.
///
/// The model is deliberately smaller than the x86 side (no multi-
/// function programs): the port demonstrates the protection technique,
/// not a second full toolchain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmProgram {
    /// Blocks in layout order; execution starts at the first.
    pub blocks: Vec<ArmBlock>,
    /// The data array, addressed from `data_base()`.
    pub data: Vec<i64>,
}

/// Structural problems found by [`ArmProgram::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArmValidateError {
    /// Duplicate block label.
    DuplicateLabel(String),
    /// Branch to an unknown label.
    UnknownTarget(String),
    /// The last block does not end in `ret` or `b`.
    MissingTerminator,
}

impl fmt::Display for ArmValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmValidateError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            ArmValidateError::UnknownTarget(t) => write!(f, "unknown branch target `{t}`"),
            ArmValidateError::MissingTerminator => write!(f, "missing final terminator"),
        }
    }
}

impl std::error::Error for ArmValidateError {}

/// The detection label: branching here reports a caught fault.
pub const ARM_EXIT: &str = "exit_function";

impl ArmProgram {
    /// Base address of the data array in the simulated memory.
    pub fn data_base() -> i64 {
        0x1_0000
    }

    /// Total static instructions.
    pub fn static_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Structural validation.
    ///
    /// # Errors
    ///
    /// Returns the first defect found.
    pub fn validate(&self) -> Result<(), ArmValidateError> {
        let mut labels: HashSet<&str> = HashSet::new();
        for b in &self.blocks {
            if !labels.insert(b.label.as_str()) {
                return Err(ArmValidateError::DuplicateLabel(b.label.clone()));
            }
        }
        for b in &self.blocks {
            for i in &b.insts {
                let target = match i {
                    AInst::B { target }
                    | AInst::BCond { target, .. }
                    | AInst::Cbnz { target, .. } => Some(target),
                    _ => None,
                };
                if let Some(t) = target {
                    if t != ARM_EXIT && !labels.contains(t.as_str()) {
                        return Err(ArmValidateError::UnknownTarget(t.clone()));
                    }
                }
            }
        }
        let terminated = self
            .blocks
            .last()
            .and_then(|b| b.insts.last())
            .is_some_and(|i| matches!(i, AInst::Ret | AInst::B { .. }));
        if !terminated {
            return Err(ArmValidateError::MissingTerminator);
        }
        Ok(())
    }

    /// Renders the program as an A64 listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for b in &self.blocks {
            out.push_str(&format!("{}:\n", b.label));
            for i in &b.insts {
                out.push_str(&format!("\t{}\n", i.render()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Src2};
    use crate::reg::X;

    fn tiny() -> ArmProgram {
        let mut b = ArmBlock::new("entry");
        b.insts.push(AInst::Mov {
            rd: X(0),
            src: Src2::Imm(1),
        });
        b.insts.push(AInst::Alu {
            op: AluOp::Add,
            rd: X(0),
            rn: X(0),
            src2: Src2::Imm(1),
        });
        b.insts.push(AInst::Ret);
        ArmProgram {
            blocks: vec![b],
            data: vec![],
        }
    }

    #[test]
    fn valid_program_passes() {
        assert!(tiny().validate().is_ok());
        assert_eq!(tiny().static_inst_count(), 3);
    }

    #[test]
    fn dangling_branch_rejected() {
        let mut p = tiny();
        p.blocks[0].insts.insert(
            0,
            AInst::B {
                target: "ghost".into(),
            },
        );
        assert_eq!(
            p.validate(),
            Err(ArmValidateError::UnknownTarget("ghost".into()))
        );
    }

    #[test]
    fn exit_function_branches_allowed() {
        let mut p = tiny();
        p.blocks[0].insts.insert(
            0,
            AInst::Cbnz {
                rn: X(0),
                target: ARM_EXIT.into(),
            },
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn missing_terminator_rejected() {
        let mut p = tiny();
        p.blocks[0].insts.pop();
        assert_eq!(p.validate(), Err(ArmValidateError::MissingTerminator));
    }

    #[test]
    fn listing_renders() {
        let text = tiny().render();
        assert!(text.contains("entry:"));
        assert!(text.contains("add x0, x0, #1"));
    }
}
