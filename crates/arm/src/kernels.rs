//! Hand-built A64 kernels with native oracles — the ARM counterparts of
//! the workload crate's differential methodology.

use crate::inst::{AInst, AluOp, Src2};
use crate::program::{ArmBlock, ArmProgram};
use crate::reg::{Cond, X};

/// `sum_gt(data, t)`: sum of all elements strictly greater than `t`
/// (loads, a data-dependent branch, and a loop).
pub fn sum_gt(data: Vec<i64>, threshold: i64) -> ArmProgram {
    let base = ArmProgram::data_base();
    let n = data.len() as i64;
    // x0 acc, x1 base, x2 i, x3 n, x4 elem, x5 threshold
    let mut entry = ArmBlock::new("entry");
    entry.insts = vec![
        AInst::Mov {
            rd: X(0),
            src: Src2::Imm(0),
        },
        AInst::Mov {
            rd: X(1),
            src: Src2::Imm(base),
        },
        AInst::Mov {
            rd: X(2),
            src: Src2::Imm(0),
        },
        AInst::Mov {
            rd: X(3),
            src: Src2::Imm(n),
        },
        AInst::Mov {
            rd: X(5),
            src: Src2::Imm(threshold),
        },
    ];
    let mut header = ArmBlock::new("header");
    header.insts = vec![
        AInst::Cmp {
            rn: X(2),
            src2: Src2::Reg(X(3)),
        },
        AInst::BCond {
            cond: Cond::Ge,
            target: "done".into(),
        },
    ];
    let mut body = ArmBlock::new("body");
    body.insts = vec![
        AInst::LdrIdx {
            rd: X(4),
            base: X(1),
            idx: X(2),
        },
        AInst::Cmp {
            rn: X(4),
            src2: Src2::Reg(X(5)),
        },
        AInst::BCond {
            cond: Cond::Le,
            target: "next".into(),
        },
        AInst::Alu {
            op: AluOp::Add,
            rd: X(0),
            rn: X(0),
            src2: Src2::Reg(X(4)),
        },
    ];
    let mut next = ArmBlock::new("next");
    next.insts = vec![
        AInst::Alu {
            op: AluOp::Add,
            rd: X(2),
            rn: X(2),
            src2: Src2::Imm(1),
        },
        AInst::B {
            target: "header".into(),
        },
    ];
    let mut done = ArmBlock::new("done");
    done.insts = vec![AInst::Ret];
    ArmProgram {
        blocks: vec![entry, header, body, next, done],
        data,
    }
}

/// Native oracle for [`sum_gt`].
pub fn sum_gt_oracle(data: &[i64], threshold: i64) -> i64 {
    data.iter().filter(|&&v| v > threshold).sum()
}

/// `scale_add(x, a)`: `x[i] = a*x[i] + i` in place; returns the final
/// checksum in `x0` (multiplies, indexed stores, division at the end).
pub fn scale_add(data: Vec<i64>, a: i64) -> ArmProgram {
    let base = ArmProgram::data_base();
    let n = data.len() as i64;
    // x1 base, x2 i, x3 n, x4 elem, x5 a, x0 acc
    let mut entry = ArmBlock::new("entry");
    entry.insts = vec![
        AInst::Mov {
            rd: X(0),
            src: Src2::Imm(0),
        },
        AInst::Mov {
            rd: X(1),
            src: Src2::Imm(base),
        },
        AInst::Mov {
            rd: X(2),
            src: Src2::Imm(0),
        },
        AInst::Mov {
            rd: X(3),
            src: Src2::Imm(n),
        },
        AInst::Mov {
            rd: X(5),
            src: Src2::Imm(a),
        },
    ];
    let mut header = ArmBlock::new("header");
    header.insts = vec![
        AInst::Cmp {
            rn: X(2),
            src2: Src2::Reg(X(3)),
        },
        AInst::BCond {
            cond: Cond::Ge,
            target: "done".into(),
        },
    ];
    let mut body = ArmBlock::new("body");
    body.insts = vec![
        AInst::LdrIdx {
            rd: X(4),
            base: X(1),
            idx: X(2),
        },
        AInst::Alu {
            op: AluOp::Mul,
            rd: X(4),
            rn: X(4),
            src2: Src2::Reg(X(5)),
        },
        AInst::Alu {
            op: AluOp::Add,
            rd: X(4),
            rn: X(4),
            src2: Src2::Reg(X(2)),
        },
        AInst::StrIdx {
            rs: X(4),
            base: X(1),
            idx: X(2),
        },
        AInst::Alu {
            op: AluOp::Add,
            rd: X(0),
            rn: X(0),
            src2: Src2::Reg(X(4)),
        },
        AInst::Alu {
            op: AluOp::Add,
            rd: X(2),
            rn: X(2),
            src2: Src2::Imm(1),
        },
        AInst::B {
            target: "header".into(),
        },
    ];
    let mut done = ArmBlock::new("done");
    done.insts = vec![
        // Fold the checksum: x0 = x0 / (n+1) + x0, exercising sdiv.
        AInst::Alu {
            op: AluOp::Sdiv,
            rd: X(6),
            rn: X(0),
            src2: Src2::Reg(X(3)),
        },
        AInst::Alu {
            op: AluOp::Add,
            rd: X(0),
            rn: X(0),
            src2: Src2::Reg(X(6)),
        },
        AInst::Ret,
    ];
    ArmProgram {
        blocks: vec![entry, header, body, done],
        data,
    }
}

/// Native oracle for [`scale_add`]: returns `(checksum, final_data)`.
pub fn scale_add_oracle(data: &[i64], a: i64) -> (i64, Vec<i64>) {
    let mut out = data.to_vec();
    let mut acc = 0i64;
    for (i, v) in out.iter_mut().enumerate() {
        *v = a * *v + i as i64;
        acc += *v;
    }
    let n = data.len() as i64;
    (acc + acc / n, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{profile, run, ArmFault, ArmOutcome};
    use crate::neon::protect_neon;

    const DATA: [i64; 6] = [4, -2, 9, 16, -7, 3];

    #[test]
    fn kernels_match_their_oracles() {
        let p = sum_gt(DATA.to_vec(), 3);
        assert!(p.validate().is_ok());
        let r = run(&p, None);
        assert_eq!(r.outcome, ArmOutcome::Completed);
        assert_eq!(r.x0, sum_gt_oracle(&DATA, 3));

        let p = scale_add(DATA.to_vec(), 5);
        assert!(p.validate().is_ok());
        let r = run(&p, None);
        let (check, final_data) = scale_add_oracle(&DATA, 5);
        assert_eq!(r.x0, check);
        assert_eq!(r.data, final_data);
    }

    #[test]
    fn protected_kernels_are_transparent() {
        for p in [sum_gt(DATA.to_vec(), 3), scale_add(DATA.to_vec(), 5)] {
            let clean = run(&p, None);
            let prot = protect_neon(&p).expect("protects");
            assert!(prot.validate().is_ok());
            let r = run(&prot, None);
            assert_eq!(r.outcome, ArmOutcome::Completed);
            assert_eq!(r.x0, clean.x0);
            assert_eq!(r.data, clean.data);
        }
    }

    #[test]
    fn exhaustive_coverage_on_both_kernels() {
        for p in [sum_gt(DATA.to_vec(), 3), scale_add(DATA.to_vec(), 5)] {
            let prot = protect_neon(&p).expect("protects");
            let (prof, clean) = profile(&prot);
            for &site in &prof.sites {
                for bit in [0u16, 2, 5, 31, 63, 101] {
                    let r = run(
                        &prot,
                        Some(ArmFault {
                            dyn_index: site,
                            raw_bit: bit,
                        }),
                    );
                    let silent = r.outcome == ArmOutcome::Completed
                        && (r.x0 != clean.x0 || r.data != clean.data);
                    assert!(!silent, "A64 SDC at site {site} bit {bit}");
                }
            }
        }
    }

    #[test]
    fn raw_kernels_are_vulnerable_and_protection_closes_the_gap() {
        let p = sum_gt(DATA.to_vec(), 3);
        let (prof, clean) = profile(&p);
        let sdc_raw = prof
            .sites
            .iter()
            .flat_map(|&s| [0u16, 2, 5, 31].map(|b| (s, b)))
            .filter(|&(s, b)| {
                let r = run(
                    &p,
                    Some(ArmFault {
                        dyn_index: s,
                        raw_bit: b,
                    }),
                );
                r.outcome == ArmOutcome::Completed && (r.x0 != clean.x0 || r.data != clean.data)
            })
            .count();
        assert!(sdc_raw > 0, "raw kernel should exhibit SDCs");
    }

    #[test]
    fn two_lane_batches_cost_about_as_much_as_scalar_checks() {
        // A finding worth pinning down: NEON's 128-bit vectors hold only
        // two 64-bit results, so the per-site capture traffic (2 `ins`)
        // cancels the amortised check — batch-of-2 is a wash against a
        // per-site scalar `eor`+`cbnz`.  The port's real savings come
        // from A64's three-operand form (no pre-copy replays) and
        // flag-free checkers (no deferred detection machinery), which is
        // consistent with the paper pointing at *wider* vectors (AVX2's
        // four lanes, AVX-512's eight) as where SIMD batching pays.
        let p = scale_add(DATA.to_vec(), 5);
        let prot = protect_neon(&p).expect("protects");
        let protected = run(&prot, None).cycles;
        let (prof, raw_run) = profile(&p);
        let dup_cost: u64 = raw_run.cycles; // duplicates mirror the originals
        let scalar_checks = prof.sites.len() as u64 * 3; // eor(1) + cbnz(2)
        let scalar_total = raw_run.cycles + dup_cost + scalar_checks;
        let ratio = protected as f64 / scalar_total as f64;
        assert!(
            (0.85..=1.25).contains(&ratio),
            "batch-of-2 should be within ±25% of scalar checking: {ratio:.2}              ({protected} vs {scalar_total})"
        );
    }
}
