//! The A64 interpreter with the single-bit write-back fault model.

use std::collections::HashMap;

use crate::inst::{AInst, AluOp, Src2};
use crate::program::{ArmProgram, ARM_EXIT};
use crate::reg::Nzcv;

/// A write-back fault: flip `raw_bit` (reduced modulo the destination
/// width) after the `dyn_index`-th executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmFault {
    /// Dynamic instruction index.
    pub dyn_index: u64,
    /// Raw bit entropy.
    pub raw_bit: u16,
}

/// Why the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmOutcome {
    /// `ret` executed.
    Completed,
    /// A checker branched to `exit_function`.
    Detected,
    /// Out-of-bounds memory access.
    Crash,
    /// Step budget exhausted.
    Timeout,
}

/// The result of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmRun {
    /// Why it stopped.
    pub outcome: ArmOutcome,
    /// Final contents of `x0` (the kernels' result register).
    pub x0: i64,
    /// Final data array (kernels that write memory are checked on it).
    pub data: Vec<i64>,
    /// Dynamic instructions executed.
    pub dyn_insts: u64,
    /// Simulated cycles (simple per-class model: loads/stores 3,
    /// multiplies 3, divides 12, branches 2, NEON 1, everything else 1;
    /// protection-inserted NEON work rides the same co-issue argument
    /// as on x86 and is charged 1).
    pub cycles: u64,
}

/// Dynamic fault sites (indices of injectable instructions).
#[derive(Debug, Clone, Default)]
pub struct ArmProfile {
    /// `dyn_index` of every injectable instruction.
    pub sites: Vec<u64>,
}

fn cost(inst: &AInst) -> u64 {
    match inst {
        AInst::Ldr { .. } | AInst::LdrIdx { .. } | AInst::Str { .. } | AInst::StrIdx { .. } => 3,
        AInst::Alu { op: AluOp::Mul, .. } => 3,
        AInst::Alu {
            op: AluOp::Sdiv, ..
        } => 12,
        AInst::B { .. } | AInst::BCond { .. } | AInst::Cbnz { .. } | AInst::Ret => 2,
        AInst::Ins { .. } | AInst::EorV { .. } | AInst::MaxToGpr { .. } => 1,
        _ => 1,
    }
}

/// Runs `p`, optionally injecting `fault`, optionally recording sites.
pub fn run_with_profile(
    p: &ArmProgram,
    fault: Option<ArmFault>,
    mut profile: Option<&mut ArmProfile>,
) -> ArmRun {
    let labels: HashMap<&str, usize> = p
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.label.as_str(), i))
        .collect();
    let mut x = [0i64; 31];
    let mut v = [[0u64; 2]; 32];
    let mut flags = Nzcv::default();
    let mut data = p.data.clone();
    let base = ArmProgram::data_base();
    let (mut bi, mut ii) = (0usize, 0usize);
    let mut n = 0u64;
    let mut cycles = 0u64;
    let step_limit = 2_000_000u64;

    let finish = |outcome, x0, data: Vec<i64>, n, cycles| ArmRun {
        outcome,
        x0,
        data,
        dyn_insts: n,
        cycles,
    };

    loop {
        if n >= step_limit {
            return finish(ArmOutcome::Timeout, x[0], data, n, cycles);
        }
        let Some(block) = p.blocks.get(bi) else {
            return finish(ArmOutcome::Crash, x[0], data, n, cycles);
        };
        let Some(inst) = block.insts.get(ii) else {
            // Fall through to the next block.
            bi += 1;
            ii = 0;
            continue;
        };
        cycles += cost(inst);
        if let Some(prof) = profile.as_deref_mut() {
            if inst.injectable_bits().is_some() {
                prof.sites.push(n);
            }
        }
        let src2 = |s: &Src2, x: &[i64; 31]| match s {
            Src2::Reg(r) => x[r.index()],
            Src2::Imm(i) => *i,
        };
        let mut next = (bi, ii + 1);
        let branch_to = |t: &str| -> Option<(usize, usize)> {
            if t == ARM_EXIT {
                None
            } else {
                Some((labels[t], 0))
            }
        };
        match inst {
            AInst::Mov { rd, src } => x[rd.index()] = src2(src, &x),
            AInst::Alu {
                op,
                rd,
                rn,
                src2: s2,
            } => {
                let a = x[rn.index()];
                let b = src2(s2, &x);
                x[rd.index()] = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::And => a & b,
                    AluOp::Orr => a | b,
                    AluOp::Eor => a ^ b,
                    // A64 sdiv: no trap; x/0 == 0, MIN/-1 wraps.
                    AluOp::Sdiv => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    AluOp::Lsl => a.wrapping_shl((b & 63) as u32),
                    AluOp::Asr => a.wrapping_shr((b & 63) as u32),
                };
            }
            AInst::Ldr { rd, base: rb, off } => {
                let addr = x[rb.index()] + off;
                let Some(val) = load(&data, base, addr) else {
                    return finish(ArmOutcome::Crash, x[0], data, n + 1, cycles);
                };
                x[rd.index()] = val;
            }
            AInst::LdrIdx { rd, base: rb, idx } => {
                let addr = x[rb.index()] + x[idx.index()] * 8;
                let Some(val) = load(&data, base, addr) else {
                    return finish(ArmOutcome::Crash, x[0], data, n + 1, cycles);
                };
                x[rd.index()] = val;
            }
            AInst::Str { rs, base: rb, off } => {
                let addr = x[rb.index()] + off;
                if !store(&mut data, base, addr, x[rs.index()]) {
                    return finish(ArmOutcome::Crash, x[0], data, n + 1, cycles);
                }
            }
            AInst::StrIdx { rs, base: rb, idx } => {
                let addr = x[rb.index()] + x[idx.index()] * 8;
                if !store(&mut data, base, addr, x[rs.index()]) {
                    return finish(ArmOutcome::Crash, x[0], data, n + 1, cycles);
                }
            }
            AInst::Cmp { rn, src2: s2 } => {
                flags = Nzcv::from_cmp(x[rn.index()], src2(s2, &x));
            }
            AInst::Cset { rd, cond } => x[rd.index()] = i64::from(cond.eval(flags)),
            AInst::BCond { cond, target } => {
                if cond.eval(flags) {
                    match branch_to(target) {
                        Some(t) => next = t,
                        None => return finish(ArmOutcome::Detected, x[0], data, n + 1, cycles),
                    }
                }
            }
            AInst::B { target } => match branch_to(target) {
                Some(t) => next = t,
                None => return finish(ArmOutcome::Detected, x[0], data, n + 1, cycles),
            },
            AInst::Cbnz { rn, target } => {
                if x[rn.index()] != 0 {
                    match branch_to(target) {
                        Some(t) => next = t,
                        None => return finish(ArmOutcome::Detected, x[0], data, n + 1, cycles),
                    }
                }
            }
            AInst::Ret => return finish(ArmOutcome::Completed, x[0], data, n + 1, cycles),
            AInst::Ins { vd, lane, rn } => {
                v[vd.index()][usize::from(*lane)] = x[rn.index()] as u64;
            }
            AInst::EorV { vd, vn, vm } => {
                let a = v[vn.index()];
                let b = v[vm.index()];
                v[vd.index()] = [a[0] ^ b[0], a[1] ^ b[1]];
            }
            AInst::MaxToGpr { rd, vn } => {
                let r = v[vn.index()];
                x[rd.index()] = ((r[0] | r[1]) != 0) as i64;
            }
        }
        // Write-back fault.
        if let Some(f) = fault {
            if f.dyn_index == n {
                match inst {
                    AInst::Cmp { .. } => flags.flip(f.raw_bit),
                    AInst::Ins { vd, .. } | AInst::EorV { vd, .. } => {
                        let bit = u32::from(f.raw_bit) % 128;
                        v[vd.index()][(bit / 64) as usize] ^= 1 << (bit % 64);
                    }
                    _ => {
                        if let Some(rd) = inst.dest_x() {
                            x[rd.index()] ^= 1 << (f.raw_bit % 64);
                        }
                    }
                }
            }
        }
        n += 1;
        (bi, ii) = next;
    }
}

fn load(data: &[i64], base: i64, addr: i64) -> Option<i64> {
    let off = addr - base;
    if off < 0 || off % 8 != 0 {
        return None;
    }
    data.get((off / 8) as usize).copied()
}

fn store(data: &mut [i64], base: i64, addr: i64, val: i64) -> bool {
    let off = addr - base;
    if off < 0 || off % 8 != 0 {
        return false;
    }
    match data.get_mut((off / 8) as usize) {
        Some(slot) => {
            *slot = val;
            true
        }
        None => false,
    }
}

/// Runs without profiling.
pub fn run(p: &ArmProgram, fault: Option<ArmFault>) -> ArmRun {
    run_with_profile(p, fault, None)
}

/// Enumerates the injectable dynamic sites of a fault-free run.
pub fn profile(p: &ArmProgram) -> (ArmProfile, ArmRun) {
    let mut prof = ArmProfile::default();
    let run = run_with_profile(p, None, Some(&mut prof));
    (prof, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ArmBlock;
    use crate::reg::{Cond, X};

    fn prog(insts: Vec<AInst>) -> ArmProgram {
        let mut b = ArmBlock::new("entry");
        b.insts = insts;
        if !matches!(b.insts.last(), Some(AInst::Ret)) {
            b.insts.push(AInst::Ret);
        }
        ArmProgram {
            blocks: vec![b],
            data: vec![10, 20, 30],
        }
    }

    #[test]
    fn arithmetic_and_loads() {
        let base = ArmProgram::data_base();
        let r = run(
            &prog(vec![
                AInst::Mov {
                    rd: X(1),
                    src: Src2::Imm(base),
                },
                AInst::Mov {
                    rd: X(2),
                    src: Src2::Imm(2),
                },
                AInst::LdrIdx {
                    rd: X(0),
                    base: X(1),
                    idx: X(2),
                },
                AInst::Alu {
                    op: AluOp::Add,
                    rd: X(0),
                    rn: X(0),
                    src2: Src2::Imm(12),
                },
            ]),
            None,
        );
        assert_eq!(r.outcome, ArmOutcome::Completed);
        assert_eq!(r.x0, 42);
    }

    #[test]
    fn sdiv_by_zero_yields_zero_like_real_a64() {
        let r = run(
            &prog(vec![
                AInst::Mov {
                    rd: X(1),
                    src: Src2::Imm(7),
                },
                AInst::Mov {
                    rd: X(2),
                    src: Src2::Imm(0),
                },
                AInst::Alu {
                    op: AluOp::Sdiv,
                    rd: X(0),
                    rn: X(1),
                    src2: Src2::Reg(X(2)),
                },
            ]),
            None,
        );
        assert_eq!(r.outcome, ArmOutcome::Completed);
        assert_eq!(r.x0, 0);
    }

    #[test]
    fn branches_and_flags() {
        let mut b0 = ArmBlock::new("entry");
        b0.insts = vec![
            AInst::Mov {
                rd: X(0),
                src: Src2::Imm(1),
            },
            AInst::Cmp {
                rn: X(0),
                src2: Src2::Imm(5),
            },
            AInst::BCond {
                cond: Cond::Lt,
                target: "less".into(),
            },
            AInst::Mov {
                rd: X(0),
                src: Src2::Imm(100),
            },
            AInst::Ret,
        ];
        let mut b1 = ArmBlock::new("less");
        b1.insts = vec![
            AInst::Mov {
                rd: X(0),
                src: Src2::Imm(7),
            },
            AInst::Ret,
        ];
        let p = ArmProgram {
            blocks: vec![b0, b1],
            data: vec![],
        };
        assert_eq!(run(&p, None).x0, 7);
    }

    #[test]
    fn oob_access_crashes() {
        let r = run(
            &prog(vec![
                AInst::Mov {
                    rd: X(1),
                    src: Src2::Imm(0),
                },
                AInst::Ldr {
                    rd: X(0),
                    base: X(1),
                    off: 0,
                },
            ]),
            None,
        );
        assert_eq!(r.outcome, ArmOutcome::Crash);
    }

    #[test]
    fn faults_flip_destination_bits() {
        let p = prog(vec![AInst::Mov {
            rd: X(0),
            src: Src2::Imm(0),
        }]);
        let r = run(
            &p,
            Some(ArmFault {
                dyn_index: 0,
                raw_bit: 5,
            }),
        );
        assert_eq!(r.x0, 32);
        let clean = run(&p, None);
        assert_eq!(clean.x0, 0);
    }

    #[test]
    fn neon_lane_ops_and_reduction() {
        let r = run(
            &prog(vec![
                AInst::Mov {
                    rd: X(1),
                    src: Src2::Imm(9),
                },
                AInst::Ins {
                    vd: crate::reg::V(0),
                    lane: 0,
                    rn: X(1),
                },
                AInst::Ins {
                    vd: crate::reg::V(1),
                    lane: 0,
                    rn: X(1),
                },
                AInst::EorV {
                    vd: crate::reg::V(0),
                    vn: crate::reg::V(0),
                    vm: crate::reg::V(1),
                },
                AInst::MaxToGpr {
                    rd: X(0),
                    vn: crate::reg::V(0),
                },
            ]),
            None,
        );
        assert_eq!(r.x0, 0, "equal lanes xor to zero");
    }

    #[test]
    fn profile_counts_sites() {
        let p = prog(vec![
            AInst::Mov {
                rd: X(0),
                src: Src2::Imm(1),
            },
            AInst::Cmp {
                rn: X(0),
                src2: Src2::Imm(1),
            },
            AInst::Cset {
                rd: X(2),
                cond: Cond::Eq,
            },
        ]);
        let (prof, run) = profile(&p);
        assert_eq!(run.outcome, ArmOutcome::Completed);
        // mov, cmp, cset are sites; ret is not.
        assert_eq!(prof.sites, vec![0, 1, 2]);
    }
}
