//! AArch64 registers: `X0`–`X30` general-purpose (with 32-bit `W`
//! views), the zero register, NZCV condition flags, and 128-bit NEON
//! vector registers.

use std::fmt;

/// A general-purpose register index, `x0`–`x30`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct X(pub u8);

impl X {
    /// Constructs `xN`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 30`.
    pub fn new(n: u8) -> X {
        assert!(n <= 30, "x register index out of range: {n}");
        X(n)
    }

    /// The register index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for X {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A NEON vector register, `v0`–`v31` (128 bits = two 64-bit lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct V(pub u8);

impl V {
    /// Constructs `vN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn new(n: u8) -> V {
        assert!(n < 32, "v register index out of range: {n}");
        V(n)
    }

    /// The register index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for V {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The NZCV condition flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Nzcv {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry.
    pub c: bool,
    /// Overflow.
    pub v: bool,
}

impl Nzcv {
    /// Flags produced by `cmp a, b` (i.e. `subs` discarding the result).
    pub fn from_cmp(a: i64, b: i64) -> Nzcv {
        let (r, ov) = a.overflowing_sub(b);
        Nzcv {
            n: r < 0,
            z: r == 0,
            c: (a as u64) >= (b as u64),
            v: ov,
        }
    }

    /// Flips one of the four flags (fault injection; `bit` taken mod 4).
    pub fn flip(&mut self, bit: u16) {
        match bit % 4 {
            0 => self.n = !self.n,
            1 => self.z = !self.z,
            2 => self.c = !self.c,
            _ => self.v = !self.v,
        }
    }
}

/// A64 condition codes (the subset the kernels use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed greater or equal.
    Ge,
    /// Signed greater than.
    Gt,
    /// Signed less or equal.
    Le,
}

impl Cond {
    /// Evaluates the condition against NZCV.
    pub fn eval(self, f: Nzcv) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Lt => f.n != f.v,
            Cond::Ge => f.n == f.v,
            Cond::Gt => !f.z && (f.n == f.v),
            Cond::Le => f.z || (f.n != f.v),
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Gt => "gt",
            Cond::Le => "le",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_flags_match_native_comparisons() {
        for &a in &[-5i64, -1, 0, 1, 7, i64::MAX, i64::MIN] {
            for &b in &[-5i64, -1, 0, 1, 7, i64::MAX, i64::MIN] {
                let f = Nzcv::from_cmp(a, b);
                assert_eq!(Cond::Eq.eval(f), a == b, "{a} eq {b}");
                assert_eq!(Cond::Ne.eval(f), a != b, "{a} ne {b}");
                // Signed comparisons are exact except at the single
                // overflowing corner (i64::MIN - i64::MAX wraps twice),
                // which real hardware gets right through 65-bit
                // arithmetic; our from_cmp models the same result.
                assert_eq!(Cond::Lt.eval(f), a < b, "{a} lt {b}");
                assert_eq!(Cond::Ge.eval(f), a >= b, "{a} ge {b}");
                assert_eq!(Cond::Gt.eval(f), a > b, "{a} gt {b}");
                assert_eq!(Cond::Le.eval(f), a <= b, "{a} le {b}");
            }
        }
    }

    #[test]
    fn flag_flip_is_involutive() {
        let mut f = Nzcv::from_cmp(1, 1);
        let orig = f;
        for bit in 0..4 {
            f.flip(bit);
            assert_ne!(f, orig);
            f.flip(bit);
            assert_eq!(f, orig);
        }
    }

    #[test]
    fn register_bounds() {
        assert_eq!(X::new(30).to_string(), "x30");
        assert_eq!(V::new(31).to_string(), "v31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn x31_is_not_a_gpr() {
        let _ = X::new(31);
    }
}
