//! The A64 instruction subset.
//!
//! The load-bearing architectural difference from x86: data-processing
//! instructions are **three-operand** (`add xd, xn, xm`), so a
//! duplicate can always re-execute into a spare register without the
//! pre-copy dance x86's read-modify-write forms need — one of the
//! reasons §III-B5 expects ARM to take the port well.

use std::fmt;

use crate::reg::{Cond, V, X};

/// Three-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    And,
    Orr,
    Eor,
    /// Signed divide.  A64 `sdiv` does **not** trap: divide-by-zero
    /// yields 0 and `MIN/-1` wraps — modelled faithfully.
    Sdiv,
    /// Logical shift left by register.
    Lsl,
    /// Arithmetic shift right by register.
    Asr,
}

impl AluOp {
    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Orr => "orr",
            AluOp::Eor => "eor",
            AluOp::Sdiv => "sdiv",
            AluOp::Lsl => "lsl",
            AluOp::Asr => "asr",
        }
    }
}

/// Second source operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src2 {
    /// A register.
    Reg(X),
    /// An immediate.
    Imm(i64),
}

impl fmt::Display for Src2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src2::Reg(x) => write!(f, "{x}"),
            Src2::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// The modelled A64 instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AInst {
    /// `mov xd, #imm` / `mov xd, xn`.
    Mov { rd: X, src: Src2 },
    /// Three-operand ALU: `op xd, xn, <src2>`.
    Alu { op: AluOp, rd: X, rn: X, src2: Src2 },
    /// `ldr xd, [xn, #off]` — 64-bit load.
    Ldr { rd: X, base: X, off: i64 },
    /// `ldr xd, [xn, xm, lsl #3]` — indexed load of word elements.
    LdrIdx { rd: X, base: X, idx: X },
    /// `str xs, [xn, #off]` — 64-bit store.
    Str { rs: X, base: X, off: i64 },
    /// `str xs, [xn, xm, lsl #3]`.
    StrIdx { rs: X, base: X, idx: X },
    /// `cmp xn, <src2>` — sets NZCV.
    Cmp { rn: X, src2: Src2 },
    /// `cset xd, <cond>` — materialise a condition bit (A64's `setcc`).
    Cset { rd: X, cond: Cond },
    /// `b.<cond> label`.
    BCond { cond: Cond, target: String },
    /// `b label`.
    B { target: String },
    /// `cbnz xn, label` — compare-and-branch, *reads no flags* (the
    /// NEON checker's exit branch).
    Cbnz { rn: X, target: String },
    /// `ret`.
    Ret,
    /// `ins vd.d[lane], xn` — insert a GPR into a vector lane (the NEON
    /// duplication capture, §III-B5).
    Ins { vd: V, lane: u8, rn: X },
    /// `eor vd.16b, vn.16b, vm.16b` — 128-bit XOR.
    EorV { vd: V, vn: V, vm: V },
    /// `umaxp vd.4s, vn.4s, vn.4s` folded with `fmov xd, dn`: reduces a
    /// vector to a 64-bit "any bit set" value in a GPR.  Real A64 needs
    /// two instructions; we model the pair as one (documented
    /// simplification, mirroring the x86 model's fused `vptest`).
    MaxToGpr { rd: X, vn: V },
}

impl AInst {
    /// The general-purpose destination register, if any.
    pub fn dest_x(&self) -> Option<X> {
        match self {
            AInst::Mov { rd, .. }
            | AInst::Alu { rd, .. }
            | AInst::Ldr { rd, .. }
            | AInst::LdrIdx { rd, .. }
            | AInst::Cset { rd, .. }
            | AInst::MaxToGpr { rd, .. } => Some(*rd),
            _ => None,
        }
    }

    /// Width in bits of the injectable destination, or `None` for
    /// non-sites (stores, branches).  `cmp` exposes the four NZCV bits.
    pub fn injectable_bits(&self) -> Option<u32> {
        match self {
            AInst::Cmp { .. } => Some(4),
            AInst::Ins { .. } | AInst::EorV { .. } => Some(128),
            _ => self.dest_x().map(|_| 64),
        }
    }

    /// True if the instruction writes NZCV.
    pub fn writes_flags(&self) -> bool {
        matches!(self, AInst::Cmp { .. })
    }

    /// True if the instruction reads NZCV.
    pub fn reads_flags(&self) -> bool {
        matches!(self, AInst::Cset { .. } | AInst::BCond { .. })
    }

    /// True for control transfers.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            AInst::B { .. } | AInst::BCond { .. } | AInst::Cbnz { .. } | AInst::Ret
        )
    }

    /// Renders the instruction in A64 syntax.
    pub fn render(&self) -> String {
        match self {
            AInst::Mov { rd, src } => format!("mov {rd}, {src}"),
            AInst::Alu { op, rd, rn, src2 } => {
                format!("{} {rd}, {rn}, {src2}", op.mnemonic())
            }
            AInst::Ldr { rd, base, off } => format!("ldr {rd}, [{base}, #{off}]"),
            AInst::LdrIdx { rd, base, idx } => format!("ldr {rd}, [{base}, {idx}, lsl #3]"),
            AInst::Str { rs, base, off } => format!("str {rs}, [{base}, #{off}]"),
            AInst::StrIdx { rs, base, idx } => format!("str {rs}, [{base}, {idx}, lsl #3]"),
            AInst::Cmp { rn, src2 } => format!("cmp {rn}, {src2}"),
            AInst::Cset { rd, cond } => format!("cset {rd}, {}", cond.mnemonic()),
            AInst::BCond { cond, target } => format!("b.{} {target}", cond.mnemonic()),
            AInst::B { target } => format!("b {target}"),
            AInst::Cbnz { rn, target } => format!("cbnz {rn}, {target}"),
            AInst::Ret => "ret".to_owned(),
            AInst::Ins { vd, lane, rn } => format!("ins {vd}.d[{lane}], {rn}"),
            AInst::EorV { vd, vn, vm } => format!("eor {vd}.16b, {vn}.16b, {vm}.16b"),
            AInst::MaxToGpr { rd, vn } => format!("umaxp+fmov {rd}, {vn}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_classification() {
        let add = AInst::Alu {
            op: AluOp::Add,
            rd: X(0),
            rn: X(1),
            src2: Src2::Reg(X(2)),
        };
        assert_eq!(add.injectable_bits(), Some(64));
        assert!(!add.writes_flags());
        let cmp = AInst::Cmp {
            rn: X(0),
            src2: Src2::Imm(4),
        };
        assert_eq!(cmp.injectable_bits(), Some(4));
        assert!(cmp.writes_flags());
        let st = AInst::Str {
            rs: X(0),
            base: X(1),
            off: 8,
        };
        assert_eq!(st.injectable_bits(), None);
        let ins = AInst::Ins {
            vd: V(0),
            lane: 1,
            rn: X(3),
        };
        assert_eq!(ins.injectable_bits(), Some(128));
        assert!(AInst::Ret.is_control());
        assert!(AInst::Cbnz {
            rn: X(9),
            target: "f".into()
        }
        .is_control());
        assert!(!AInst::Cbnz {
            rn: X(9),
            target: "f".into()
        }
        .reads_flags());
    }

    #[test]
    fn rendering_matches_a64_syntax() {
        assert_eq!(
            AInst::Alu {
                op: AluOp::Add,
                rd: X(0),
                rn: X(1),
                src2: Src2::Imm(8)
            }
            .render(),
            "add x0, x1, #8"
        );
        assert_eq!(
            AInst::LdrIdx {
                rd: X(2),
                base: X(0),
                idx: X(1)
            }
            .render(),
            "ldr x2, [x0, x1, lsl #3]"
        );
        assert_eq!(
            AInst::Ins {
                vd: V(0),
                lane: 1,
                rn: X(9)
            }
            .render(),
            "ins v0.d[1], x9"
        );
        assert_eq!(
            AInst::EorV {
                vd: V(0),
                vn: V(0),
                vm: V(1)
            }
            .render(),
            "eor v0.16b, v0.16b, v1.16b"
        );
        assert_eq!(
            AInst::BCond {
                cond: Cond::Lt,
                target: "loop".into()
            }
            .render(),
            "b.lt loop"
        );
        assert_eq!(
            AInst::Cset {
                rd: X(9),
                cond: Cond::Eq
            }
            .render(),
            "cset x9, eq"
        );
    }
}
