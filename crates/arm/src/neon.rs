//! FERRUM-NEON: the protection pass, ported per §III-B5.
//!
//! Two architectural differences from x86 make the A64 port *simpler*
//! and are worth calling out (the paper's "other platforms may offer
//! additional optimization opportunities"):
//!
//! 1. **Three-operand data processing.** `add xd, xn, xm` never
//!    overwrites its own source, so every duplicate is a plain
//!    re-execution into the scratch register — x86's read-modify-write
//!    pre-copy scheme and the `idiv` double-execution dance disappear
//!    (`sdiv` is an ordinary three-operand instruction here, and it
//!    doesn't even trap).
//! 2. **Flags are opt-in.** Only `S`-suffixed instructions touch NZCV,
//!    and the checker idiom (`eor` + `cbnz`) never does — so the
//!    comparison check can sit *immediately* between the `cmp` and its
//!    consumer.  The deferred detection of the paper's Fig. 5, which
//!    exists solely because x86's `xor`/`cmp` checkers destroy EFLAGS,
//!    is unnecessary on A64.
//!
//! NEON vectors are 128-bit, so batches hold **two** results (AVX2
//! holds four): `ins v0.d[k], x9` captures the duplicate, `ins
//! v1.d[k], xd` the original, and a flush is `eor v0, v0, v1` +
//! `umaxp/fmov` + `cbnz x9, exit_function`.

use crate::inst::{AInst, Src2};
use crate::program::{ArmBlock, ArmProgram, ARM_EXIT};
use crate::reg::{V, X};

/// Scratch register for duplicates.
const SCRATCH: X = X(9);
/// The `cset` pair for comparison protection.
const PAIR0: X = X(10);
const PAIR1: X = X(11);
/// NEON accumulators: duplicates in `v0`, originals in `v1`.
const VDUP: V = V(0);
const VORIG: V = V(1);

/// Pass failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeonPassError {
    /// The input uses a register the pass reserves.
    ReservedRegister(String),
    /// The input contains protection-style NEON instructions.
    Unsupported(String),
}

impl std::fmt::Display for NeonPassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NeonPassError::ReservedRegister(r) => {
                write!(f, "input uses reserved register {r}")
            }
            NeonPassError::Unsupported(w) => write!(f, "unsupported instruction: {w}"),
        }
    }
}

impl std::error::Error for NeonPassError {}

fn uses_reserved(inst: &AInst) -> Option<String> {
    let mut regs: Vec<X> = Vec::new();
    match inst {
        AInst::Mov { rd, src } => {
            regs.push(*rd);
            if let Src2::Reg(r) = src {
                regs.push(*r);
            }
        }
        AInst::Alu { rd, rn, src2, .. } => {
            regs.push(*rd);
            regs.push(*rn);
            if let Src2::Reg(r) = src2 {
                regs.push(*r);
            }
        }
        AInst::Ldr { rd, base, .. } => regs.extend([*rd, *base]),
        AInst::LdrIdx { rd, base, idx } => regs.extend([*rd, *base, *idx]),
        AInst::Str { rs, base, .. } => regs.extend([*rs, *base]),
        AInst::StrIdx { rs, base, idx } => regs.extend([*rs, *base, *idx]),
        AInst::Cmp { rn, src2 } => {
            regs.push(*rn);
            if let Src2::Reg(r) = src2 {
                regs.push(*r);
            }
        }
        AInst::Cset { rd, .. } => regs.push(*rd),
        AInst::Cbnz { rn, .. } => regs.push(*rn),
        _ => {}
    }
    regs.into_iter()
        .find(|r| [SCRATCH, PAIR0, PAIR1].contains(r))
        .map(|r| r.to_string())
}

fn with_dest(inst: &AInst, rd: X) -> Option<AInst> {
    let mut out = inst.clone();
    match &mut out {
        AInst::Mov { rd: d, .. }
        | AInst::Alu { rd: d, .. }
        | AInst::Ldr { rd: d, .. }
        | AInst::LdrIdx { rd: d, .. } => *d = rd,
        _ => return None,
    }
    Some(out)
}

/// The NEON batch of two (duplicate, original) lanes.
struct Batch {
    count: u8,
}

impl Batch {
    fn add(&mut self, dup: X, orig: X, out: &mut Vec<AInst>) {
        out.push(AInst::Ins {
            vd: VDUP,
            lane: self.count,
            rn: dup,
        });
        out.push(AInst::Ins {
            vd: VORIG,
            lane: self.count,
            rn: orig,
        });
        self.count += 1;
        if self.count == 2 {
            self.flush(out);
        }
    }

    fn flush(&mut self, out: &mut Vec<AInst>) {
        if self.count == 0 {
            return;
        }
        if self.count == 1 {
            // Equalise the unused lane so the 128-bit compare is exact.
            out.push(AInst::Ins {
                vd: VDUP,
                lane: 1,
                rn: SCRATCH,
            });
            out.push(AInst::Ins {
                vd: VORIG,
                lane: 1,
                rn: SCRATCH,
            });
        }
        out.push(AInst::EorV {
            vd: VDUP,
            vn: VDUP,
            vm: VORIG,
        });
        out.push(AInst::MaxToGpr {
            rd: SCRATCH,
            vn: VDUP,
        });
        out.push(AInst::Cbnz {
            rn: SCRATCH,
            target: ARM_EXIT.into(),
        });
        self.count = 0;
    }
}

/// Protects an A64 program with FERRUM-NEON.
///
/// # Errors
///
/// [`NeonPassError`] if the input uses the reserved registers
/// (`x9`–`x11`, `v0`–`v1`) or contains NEON instructions.
pub fn protect_neon(p: &ArmProgram) -> Result<ArmProgram, NeonPassError> {
    let mut out = ArmProgram {
        blocks: Vec::new(),
        data: p.data.clone(),
    };
    for b in &p.blocks {
        let mut nb = ArmBlock::new(b.label.clone());
        let mut batch = Batch { count: 0 };
        let mut i = 0usize;
        while i < b.insts.len() {
            let inst = &b.insts[i];
            if let Some(r) = uses_reserved(inst) {
                return Err(NeonPassError::ReservedRegister(r));
            }
            if matches!(
                inst,
                AInst::Ins { .. } | AInst::EorV { .. } | AInst::MaxToGpr { .. }
            ) {
                return Err(NeonPassError::Unsupported(inst.render()));
            }
            if inst.is_control() {
                batch.flush(&mut nb.insts);
            }
            match inst {
                AInst::Cmp { .. } => {
                    // Immediate pair check: A64 checkers don't touch
                    // NZCV, so no deferral is needed (module docs).
                    let cond = b.insts[i + 1..].iter().find_map(|c| match c {
                        AInst::BCond { cond, .. } | AInst::Cset { cond, .. } => Some(*cond),
                        _ => None,
                    });
                    nb.insts.push(inst.clone()); // original cmp
                    if let Some(cond) = cond {
                        nb.insts.push(AInst::Cset { rd: PAIR0, cond });
                        nb.insts.push(inst.clone()); // duplicate cmp
                        nb.insts.push(AInst::Cset { rd: PAIR1, cond });
                        nb.insts.push(AInst::Alu {
                            op: crate::inst::AluOp::Eor,
                            rd: SCRATCH,
                            rn: PAIR0,
                            src2: Src2::Reg(PAIR1),
                        });
                        nb.insts.push(AInst::Cbnz {
                            rn: SCRATCH,
                            target: ARM_EXIT.into(),
                        });
                    }
                    i += 1;
                }
                _ if inst.injectable_bits() == Some(64) => {
                    // Duplicate-first, batch-checked.  `cset` consumes
                    // NZCV, and its duplicate (reading the same flags)
                    // is emitted *before* the original like any other
                    // data instruction.
                    match with_dest(inst, SCRATCH) {
                        Some(dup) => {
                            let orig_dest = inst.dest_x().expect("64-bit site");
                            nb.insts.push(dup);
                            nb.insts.push(inst.clone());
                            batch.add(SCRATCH, orig_dest, &mut nb.insts);
                        }
                        None => {
                            // `cset` has no with_dest arm above; handle
                            // it explicitly.
                            if let AInst::Cset { rd, cond } = inst {
                                nb.insts.push(AInst::Cset {
                                    rd: SCRATCH,
                                    cond: *cond,
                                });
                                nb.insts.push(inst.clone());
                                batch.add(SCRATCH, *rd, &mut nb.insts);
                            } else {
                                nb.insts.push(inst.clone());
                            }
                        }
                    }
                    i += 1;
                }
                _ => {
                    nb.insts.push(inst.clone());
                    i += 1;
                }
            }
        }
        batch.flush(&mut nb.insts);
        out.blocks.push(nb);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{profile, run, ArmFault, ArmOutcome};
    use crate::inst::AluOp;
    use crate::reg::Cond;

    fn demo() -> ArmProgram {
        // x0 = data[0] * 3 + data[1]; branch keeps the larger of x0 and 50.
        let base = ArmProgram::data_base();
        let mut b0 = ArmBlock::new("entry");
        b0.insts = vec![
            AInst::Mov {
                rd: X(1),
                src: Src2::Imm(base),
            },
            AInst::Ldr {
                rd: X(2),
                base: X(1),
                off: 0,
            },
            AInst::Mov {
                rd: X(3),
                src: Src2::Imm(3),
            },
            AInst::Alu {
                op: AluOp::Mul,
                rd: X(4),
                rn: X(2),
                src2: Src2::Reg(X(3)),
            },
            AInst::Ldr {
                rd: X(5),
                base: X(1),
                off: 8,
            },
            AInst::Alu {
                op: AluOp::Add,
                rd: X(0),
                rn: X(4),
                src2: Src2::Reg(X(5)),
            },
            AInst::Cmp {
                rn: X(0),
                src2: Src2::Imm(50),
            },
            AInst::BCond {
                cond: Cond::Ge,
                target: "done".into(),
            },
            AInst::Mov {
                rd: X(0),
                src: Src2::Imm(50),
            },
        ];
        let mut b1 = ArmBlock::new("done");
        b1.insts = vec![AInst::Ret];
        ArmProgram {
            blocks: vec![b0, b1],
            data: vec![10, 12],
        }
    }

    #[test]
    fn protection_is_transparent() {
        let p = demo();
        let prot = protect_neon(&p).expect("protects");
        assert!(prot.validate().is_ok());
        let clean = run(&p, None);
        let protected = run(&prot, None);
        assert_eq!(protected.outcome, ArmOutcome::Completed);
        assert_eq!(protected.x0, clean.x0);
        assert_eq!(protected.x0, 50, "max(10*3+12, 50)");
    }

    #[test]
    fn listing_shows_the_neon_idiom() {
        let prot = protect_neon(&demo()).expect("protects");
        let text = prot.render();
        assert!(text.contains("ins v0.d[0], x9"), "{text}");
        assert!(text.contains("eor v0.16b, v0.16b, v1.16b"));
        assert!(text.contains("cbnz x9, exit_function"));
        assert!(text.contains("cset x10"), "cmp pair capture");
        assert!(text.contains("cset x11"));
    }

    #[test]
    fn exhaustive_faults_never_corrupt_silently() {
        let p = demo();
        let prot = protect_neon(&p).expect("protects");
        let (prof, clean) = profile(&prot);
        assert_eq!(clean.outcome, ArmOutcome::Completed);
        let mut detected = 0;
        for &site in &prof.sites {
            for bit in [0u16, 1, 3, 7, 33, 63] {
                let r = run(
                    &prot,
                    Some(ArmFault {
                        dyn_index: site,
                        raw_bit: bit,
                    }),
                );
                let silent = r.outcome == ArmOutcome::Completed
                    && (r.x0 != clean.x0 || r.data != clean.data);
                assert!(!silent, "SDC at site {site} bit {bit}");
                if r.outcome == ArmOutcome::Detected {
                    detected += 1;
                }
            }
        }
        assert!(detected > 0);
    }

    #[test]
    fn unprotected_program_is_vulnerable() {
        let p = demo();
        let (prof, clean) = profile(&p);
        let mut sdc = 0;
        for &site in &prof.sites {
            for bit in [0u16, 1, 3, 7, 33, 63] {
                let r = run(
                    &p,
                    Some(ArmFault {
                        dyn_index: site,
                        raw_bit: bit,
                    }),
                );
                if r.outcome == ArmOutcome::Completed && (r.x0 != clean.x0 || r.data != clean.data)
                {
                    sdc += 1;
                }
            }
        }
        assert!(sdc > 0, "raw A64 program should show SDCs");
    }

    #[test]
    fn reserved_register_use_is_rejected() {
        let mut p = demo();
        p.blocks[0].insts.push(AInst::Mov {
            rd: X(10),
            src: Src2::Imm(1),
        });
        assert!(matches!(
            protect_neon(&p),
            Err(NeonPassError::ReservedRegister(_))
        ));
    }

    #[test]
    fn overhead_is_moderate() {
        let p = demo();
        let prot = protect_neon(&p).expect("protects");
        let raw = run(&p, None).cycles;
        let protected = run(&prot, None).cycles;
        let overhead = protected as f64 / raw as f64 - 1.0;
        // The A64 demo model charges duplication at full serial price
        // (no co-issue discount like the x86 cost model), so duplication
        // roughly triples work on tiny straight-line kernels.
        assert!(overhead > 0.0 && overhead < 3.5, "overhead {overhead}");
    }
}
