//! Stack-frame layout: one 8-byte slot per MIR value, alloca storage,
//! and argument spill slots, all addressed relative to `%rbp`.

use std::collections::HashMap;

use ferrum_mir::func::Function;
use ferrum_mir::inst::{InstId, MirInst};

/// Where a MIR value lives in the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// An ordinary result slot (holds the value).
    Result(i64),
    /// An alloca: the offset is the base of its storage; the value of the
    /// alloca is the *address* `%rbp + offset`.
    AllocaBase(i64),
}

/// Frame layout for one function.
#[derive(Debug, Clone)]
pub struct Frame {
    slots: HashMap<u32, SlotKind>,
    arg_slots: Vec<i64>,
    /// Total frame size in bytes (16-byte aligned).
    pub size: i64,
}

impl Frame {
    /// Computes the layout for `f`.
    ///
    /// Slot assignment is deterministic: argument spill slots first, then
    /// one result slot per value-producing instruction, then alloca
    /// storage, growing downward from `%rbp`.
    pub fn layout(f: &Function) -> Frame {
        let mut next = 0i64;
        let mut take = |words: i64| {
            next -= 8 * words;
            next
        };
        let arg_slots: Vec<i64> = f.params.iter().map(|_| take(1)).collect();
        let mut slots = HashMap::new();
        for inst in f.insts() {
            match inst {
                MirInst::Alloca { id, count, .. } => {
                    let base = take(i64::from(*count));
                    slots.insert(id.0, SlotKind::AllocaBase(base));
                }
                _ => {
                    if let Some(id) = inst.result() {
                        slots.insert(id.0, SlotKind::Result(take(1)));
                    }
                }
            }
        }
        let mut size = -next;
        if size % 16 != 0 {
            size += 16 - size % 16;
        }
        Frame {
            slots,
            arg_slots,
            size,
        }
    }

    /// The slot of an instruction result.
    ///
    /// # Panics
    ///
    /// Panics if `id` has no slot (verification should prevent this).
    pub fn slot(&self, id: InstId) -> SlotKind {
        *self
            .slots
            .get(&id.0)
            .unwrap_or_else(|| panic!("no slot for %{}", id.0))
    }

    /// The `%rbp`-relative offset of a result slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` names an alloca (use [`Frame::slot`]).
    pub fn result_offset(&self, id: InstId) -> i64 {
        match self.slot(id) {
            SlotKind::Result(o) => o,
            SlotKind::AllocaBase(_) => panic!("%{} is an alloca, not a result slot", id.0),
        }
    }

    /// The spill slot of argument `i`.
    pub fn arg_offset(&self, i: u32) -> i64 {
        self.arg_slots[i as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::types::Ty;

    #[test]
    fn layout_is_disjoint_and_aligned() {
        let mut b = FunctionBuilder::new("f", &[Ty::I64, Ty::I64], Some(Ty::I64));
        let p = b.alloca_array(Ty::I64, 4);
        let x = b.load(Ty::I64, p);
        let y = b.add(Ty::I64, x, x);
        b.ret(Some(y));
        let f = b.finish();
        let fr = Frame::layout(&f);
        assert_eq!(fr.size % 16, 0);
        // 2 args + alloca result + 4 alloca words + load + add = 2+1(base within 4)+...
        // args at -8, -16; alloca base 4 words; load slot; add slot.
        assert_eq!(fr.arg_offset(0), -8);
        assert_eq!(fr.arg_offset(1), -16);
        // All offsets distinct and within the frame.
        let mut offs = vec![fr.arg_offset(0), fr.arg_offset(1)];
        for id in 0..f.next_id {
            match fr.slot(ferrum_mir::inst::InstId(id)) {
                SlotKind::Result(o) => offs.push(o),
                SlotKind::AllocaBase(o) => offs.push(o),
            }
        }
        let mut sorted = offs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), offs.len(), "slots overlap: {offs:?}");
        for o in offs {
            assert!(o < 0 && -o <= fr.size);
        }
    }

    #[test]
    fn alloca_reserves_count_words() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let p1 = b.alloca_array(Ty::I64, 3);
        let p2 = b.alloca(Ty::I64);
        b.ret(None);
        let f = b.finish();
        let fr = Frame::layout(&f);
        let o1 = match fr.slot(p1.as_inst().unwrap()) {
            SlotKind::AllocaBase(o) => o,
            _ => panic!(),
        };
        let o2 = match fr.slot(p2.as_inst().unwrap()) {
            SlotKind::AllocaBase(o) => o,
            _ => panic!(),
        };
        // p2's single word must not fall inside p1's three words.
        assert!(o2 <= o1 - 8 || o2 >= o1 + 24);
    }

    #[test]
    #[should_panic(expected = "no slot")]
    fn missing_slot_panics() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.ret(None);
        let fr = Frame::layout(&b.finish());
        let _ = fr.slot(ferrum_mir::inst::InstId(9));
    }

    #[test]
    #[should_panic(expected = "is an alloca")]
    fn result_offset_rejects_alloca() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let p = b.alloca(Ty::I64);
        b.ret(None);
        let fr = Frame::layout(&b.finish());
        let _ = fr.result_offset(p.as_inst().unwrap());
    }
}
