//! Instruction selection and lowering.

use std::fmt;

use ferrum_asm::flags::Cc;
use ferrum_asm::inst::{AluOp, Inst, ShiftAmount, ShiftOp};
use ferrum_asm::operand::{MemRef, Operand, Scale};
use ferrum_asm::program::{AsmBlock, AsmFunction, AsmProgram, DataObject};
use ferrum_asm::provenance::{GlueKind, Provenance};
use ferrum_asm::reg::{Gpr, Reg, Width, ARG_GPRS};
use ferrum_mir::func::Function;
use ferrum_mir::inst::{BinOp, ICmpPred, InstId, MirInst};
use ferrum_mir::module::Module;
use ferrum_mir::types::Ty;
use ferrum_mir::value::Value;

use crate::frame::{Frame, SlotKind};
use crate::opt::{optimize, OptLevel, PassStats, ProgramMeta};
use crate::regalloc::{allocate, Allocation};

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The module failed MIR verification; run
    /// [`ferrum_mir::verify::verify_module`] for details.
    InvalidModule(String),
    /// More call arguments than argument registers.
    TooManyArgs { function: String, callee: String },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidModule(m) => write!(f, "invalid module: {m}"),
            CompileError::TooManyArgs { function, callee } => {
                write!(
                    f,
                    "call to `{callee}` in `{function}` exceeds 6 register arguments"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a verified MIR module to assembly.
///
/// # Errors
///
/// Returns [`CompileError::InvalidModule`] if the module does not verify,
/// or [`CompileError::TooManyArgs`] for calls with more than six
/// arguments.
pub fn compile(m: &Module) -> Result<AsmProgram, CompileError> {
    compile_opt(m, OptLevel::O0)
}

/// Compiles at the requested optimization level.  `OptLevel::O0` is
/// byte-identical to [`compile`]; `OptLevel::O1` runs linear-scan
/// register allocation during lowering and the assembly pass bundle
/// ([`crate::opt`]) afterwards.
///
/// # Errors
///
/// Same conditions as [`compile`].
pub fn compile_opt(m: &Module, opt: OptLevel) -> Result<AsmProgram, CompileError> {
    compile_with_stats(m, opt).map(|(p, _)| p)
}

/// [`compile_opt`] plus the per-pass statistics of the `-O1` pipeline
/// (all-zero at `-O0`).
///
/// # Errors
///
/// Same conditions as [`compile`].
pub fn compile_with_stats(m: &Module, opt: OptLevel) -> Result<(AsmProgram, PassStats), CompileError> {
    let _span = ferrum_trace::span("backend.compile");
    if let Err(errs) = ferrum_mir::verify::verify_module(m) {
        return Err(CompileError::InvalidModule(
            errs.first().map(ToString::to_string).unwrap_or_default(),
        ));
    }
    let mut prog = AsmProgram::new();
    for g in &m.globals {
        prog.data
            .push(DataObject::new(g.name.clone(), g.words.clone()));
    }
    let mut stats = PassStats::default();
    for f in &m.functions {
        let alloc = match opt {
            OptLevel::O0 => None,
            OptLevel::O1 => Some(allocate(f)),
        };
        if let Some(a) = &alloc {
            stats.regalloc_candidates += a.candidates;
            stats.regalloc_allocated += a.allocated;
        }
        prog.functions.push(lower_function(m, f, alloc.as_ref())?);
    }
    if opt == OptLevel::O1 {
        let meta = ProgramMeta::from_module(m);
        stats.absorb(&optimize(&mut prog, &meta));
    }
    ferrum_trace::counter("backend.static_insts", prog.static_inst_count() as u64);
    Ok((prog, stats))
}

/// Width at which a MIR type's arithmetic executes.
fn width_of(ty: Ty) -> Width {
    match ty {
        Ty::I32 => Width::W32,
        _ => Width::W64,
    }
}

/// Maps an icmp predicate to an x86 condition code.
pub fn pred_to_cc(pred: ICmpPred) -> Cc {
    match pred {
        ICmpPred::Eq => Cc::E,
        ICmpPred::Ne => Cc::Ne,
        ICmpPred::Slt => Cc::L,
        ICmpPred::Sle => Cc::Le,
        ICmpPred::Sgt => Cc::G,
        ICmpPred::Sge => Cc::Ge,
        ICmpPred::Ult => Cc::B,
        ICmpPred::Ule => Cc::Be,
        ICmpPred::Ugt => Cc::A,
        ICmpPred::Uge => Cc::Ae,
    }
}

struct Lowerer<'a> {
    m: &'a Module,
    f: &'a Function,
    frame: Frame,
    /// `-O1` register assignment; `None` reproduces the naive `-O0`
    /// slot-per-value lowering byte for byte.
    alloc: Option<&'a Allocation>,
    out: AsmFunction,
    cur: usize,
}

impl<'a> Lowerer<'a> {
    fn emit(&mut self, inst: Inst, prov: Provenance) {
        self.out.blocks[self.cur].push(inst, prov);
    }

    fn slot_mem(&self, off: i64) -> MemRef {
        MemRef::base_disp(Gpr::Rbp, off)
    }

    /// Loads `v` into the 64-bit view of `reg` (canonical sign-extended
    /// representation).
    fn fetch(&mut self, v: &Value, reg: Gpr, prov: Provenance) {
        match v {
            Value::Const(_, c) => self.emit(
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Imm(*c),
                    dst: Operand::Reg(Reg::q(reg)),
                },
                prov,
            ),
            Value::Arg(i) => {
                let off = self.frame.arg_offset(*i);
                self.emit(
                    Inst::Mov {
                        w: Width::W64,
                        src: Operand::Mem(self.slot_mem(off)),
                        dst: Operand::Reg(Reg::q(reg)),
                    },
                    prov,
                );
            }
            Value::Inst(id) => {
                if let Some(r) = self.alloc.and_then(|a| a.reg(*id)) {
                    if r != reg {
                        self.emit(
                            Inst::Mov {
                                w: Width::W64,
                                src: Operand::Reg(Reg::q(r)),
                                dst: Operand::Reg(Reg::q(reg)),
                            },
                            prov,
                        );
                    }
                    return;
                }
                match self.frame.slot(*id) {
                    SlotKind::Result(off) => self.emit(
                        Inst::Mov {
                            w: Width::W64,
                            src: Operand::Mem(self.slot_mem(off)),
                            dst: Operand::Reg(Reg::q(reg)),
                        },
                        prov,
                    ),
                    SlotKind::AllocaBase(off) => self.emit(
                        Inst::Lea {
                            mem: self.slot_mem(off),
                            dst: Reg::q(reg),
                        },
                        prov,
                    ),
                }
            }
            Value::Global(g) => {
                let name = &self.m.globals[g.index()].name;
                self.emit(
                    Inst::Lea {
                        mem: MemRef::global(name.clone(), 0),
                        dst: Reg::q(reg),
                    },
                    prov,
                );
            }
        }
    }

    /// Spills the 64-bit view of `reg` into `id`'s home: its assigned
    /// register at `-O1`, its result slot otherwise.
    fn spill(&mut self, id: InstId, reg: Gpr, prov: Provenance) {
        if let Some(r) = self.alloc.and_then(|a| a.reg(id)) {
            if r != reg {
                self.emit(
                    Inst::Mov {
                        w: Width::W64,
                        src: Operand::Reg(Reg::q(reg)),
                        dst: Operand::Reg(Reg::q(r)),
                    },
                    prov,
                );
            }
            return;
        }
        let off = self.frame.result_offset(id);
        self.emit(
            Inst::Mov {
                w: Width::W64,
                src: Operand::Reg(Reg::q(reg)),
                dst: Operand::Mem(self.slot_mem(off)),
            },
            prov,
        );
    }

    /// Re-canonicalises `%rax` after a 32-bit operation (sign-extend the
    /// low 32 bits across the register).
    fn canon32(&mut self, prov: Provenance) {
        self.emit(
            Inst::Movsx {
                src_w: Width::W32,
                dst_w: Width::W64,
                src: Operand::Reg(Reg::l(Gpr::Rax)),
                dst: Reg::q(Gpr::Rax),
            },
            prov,
        );
    }

    fn label(&self, bb: usize) -> String {
        format!("{}_bb{}", self.f.name, bb)
    }

    fn lower_inst(&mut self, inst: &MirInst) -> Result<(), CompileError> {
        match inst {
            MirInst::Alloca { .. } => {
                // Storage is reserved in the frame; the address is
                // materialised by `fetch` at each use.
            }
            MirInst::Load { id, ty, ptr } => {
                let p = Provenance::FromIr(id.0);
                self.fetch(ptr, Gpr::Rax, p);
                match ty {
                    Ty::I32 => self.emit(
                        Inst::Movsx {
                            src_w: Width::W32,
                            dst_w: Width::W64,
                            src: Operand::Mem(MemRef::base_disp(Gpr::Rax, 0)),
                            dst: Reg::q(Gpr::Rax),
                        },
                        p,
                    ),
                    _ => self.emit(
                        Inst::Mov {
                            w: Width::W64,
                            src: Operand::Mem(MemRef::base_disp(Gpr::Rax, 0)),
                            dst: Operand::Reg(Reg::q(Gpr::Rax)),
                        },
                        p,
                    ),
                }
                self.spill(*id, Gpr::Rax, p);
            }
            MirInst::Store { val, ptr, .. } => {
                // Staging happens *after* any IR-level check — the paper's
                // first root cause of coverage loss.
                let p = Provenance::Glue(GlueKind::StoreStaging);
                self.fetch(val, Gpr::Rcx, p);
                self.fetch(ptr, Gpr::Rax, p);
                self.emit(
                    Inst::Mov {
                        w: Width::W64,
                        src: Operand::Reg(Reg::q(Gpr::Rcx)),
                        dst: Operand::Mem(MemRef::base_disp(Gpr::Rax, 0)),
                    },
                    p,
                );
            }
            MirInst::Bin { id, op, ty, a, b } => self.lower_bin(*id, *op, *ty, a, b),
            MirInst::ICmp { id, pred, ty, a, b } => {
                let p = Provenance::FromIr(id.0);
                self.fetch(a, Gpr::Rax, p);
                self.fetch(b, Gpr::Rcx, p);
                let w = width_of(*ty);
                self.emit(
                    Inst::Cmp {
                        w,
                        src: Operand::Reg(Reg::gpr(Gpr::Rcx, w)),
                        dst: Operand::Reg(Reg::gpr(Gpr::Rax, w)),
                    },
                    p,
                );
                self.emit(
                    Inst::Setcc {
                        cc: pred_to_cc(*pred),
                        dst: Operand::Reg(Reg::b(Gpr::Rax)),
                    },
                    p,
                );
                self.emit(
                    Inst::Movzx {
                        src_w: Width::W8,
                        dst_w: Width::W64,
                        src: Operand::Reg(Reg::b(Gpr::Rax)),
                        dst: Reg::q(Gpr::Rax),
                    },
                    p,
                );
                self.spill(*id, Gpr::Rax, p);
            }
            MirInst::Gep { id, base, index } => {
                let p = Provenance::FromIr(id.0);
                self.fetch(base, Gpr::Rax, p);
                self.fetch(index, Gpr::Rcx, p);
                self.emit(
                    Inst::Lea {
                        mem: MemRef::indexed(Gpr::Rax, Gpr::Rcx, Scale::S8, 0),
                        dst: Reg::q(Gpr::Rax),
                    },
                    p,
                );
                self.spill(*id, Gpr::Rax, p);
            }
            MirInst::Sext { id, from, v, .. } => {
                let p = Provenance::FromIr(id.0);
                self.fetch(v, Gpr::Rax, p);
                // Canonical storage is already sign-extended; emit the
                // width-mapping move the real backend would (Table I's
                // "mapping" instruction class).
                match from {
                    Ty::I32 => self.canon32(p),
                    Ty::I8 => self.emit(
                        Inst::Movsx {
                            src_w: Width::W8,
                            dst_w: Width::W64,
                            src: Operand::Reg(Reg::b(Gpr::Rax)),
                            dst: Reg::q(Gpr::Rax),
                        },
                        p,
                    ),
                    _ => {}
                }
                self.spill(*id, Gpr::Rax, p);
            }
            MirInst::Zext { id, from, v, .. } => {
                let p = Provenance::FromIr(id.0);
                self.fetch(v, Gpr::Rax, p);
                match from {
                    // `movl %eax, %eax` — the x86 zero-extension idiom;
                    // note source == destination, which makes this a
                    // GENERAL-INSTRUCTION under FERRUM's annotation rule.
                    Ty::I32 => self.emit(
                        Inst::Mov {
                            w: Width::W32,
                            src: Operand::Reg(Reg::l(Gpr::Rax)),
                            dst: Operand::Reg(Reg::l(Gpr::Rax)),
                        },
                        p,
                    ),
                    Ty::I8 => self.emit(
                        Inst::Movzx {
                            src_w: Width::W8,
                            dst_w: Width::W64,
                            src: Operand::Reg(Reg::b(Gpr::Rax)),
                            dst: Reg::q(Gpr::Rax),
                        },
                        p,
                    ),
                    _ => {}
                }
                self.spill(*id, Gpr::Rax, p);
            }
            MirInst::Trunc { id, to, v, .. } => {
                let p = Provenance::FromIr(id.0);
                self.fetch(v, Gpr::Rax, p);
                match to {
                    Ty::I32 => self.canon32(p),
                    Ty::I8 => self.emit(
                        Inst::Movsx {
                            src_w: Width::W8,
                            dst_w: Width::W64,
                            src: Operand::Reg(Reg::b(Gpr::Rax)),
                            dst: Reg::q(Gpr::Rax),
                        },
                        p,
                    ),
                    Ty::I1 => self.emit(
                        Inst::Alu {
                            op: AluOp::And,
                            w: Width::W64,
                            src: Operand::Imm(1),
                            dst: Operand::Reg(Reg::q(Gpr::Rax)),
                        },
                        p,
                    ),
                    _ => {}
                }
                self.spill(*id, Gpr::Rax, p);
            }
            MirInst::Call { id, callee, args } => {
                if callee == ferrum_mir::DETECT {
                    self.emit(
                        Inst::Jmp {
                            target: ferrum_asm::EXIT_FUNCTION.into(),
                        },
                        Provenance::Glue(GlueKind::CallGlue),
                    );
                    return Ok(());
                }
                if args.len() > ARG_GPRS.len() {
                    return Err(CompileError::TooManyArgs {
                        function: self.f.name.clone(),
                        callee: callee.clone(),
                    });
                }
                let p = Provenance::Glue(GlueKind::CallGlue);
                // Argument staging happens after IR-level checks — the
                // paper's second root cause.
                for (i, a) in args.iter().enumerate() {
                    self.fetch(a, ARG_GPRS[i], p);
                }
                self.emit(
                    Inst::Call {
                        target: callee.clone(),
                    },
                    p,
                );
                if let Some(id) = id {
                    self.spill(*id, Gpr::Rax, p);
                }
            }
            MirInst::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                let p = Provenance::Glue(GlueKind::BranchMaterialize);
                // Fig. 9 of the paper: the condition byte is re-tested
                // from its slot, creating a new flags-register fault site
                // invisible at IR level.
                match cond {
                    Value::Inst(id) => {
                        if let Some(r) = self.alloc.and_then(|a| a.reg(*id)) {
                            // The condition lives in a register: test it
                            // directly, no slot re-test needed.
                            self.emit(
                                Inst::Test {
                                    w: Width::W64,
                                    src: Operand::Reg(Reg::q(r)),
                                    dst: Operand::Reg(Reg::q(r)),
                                },
                                p,
                            );
                        } else if let SlotKind::Result(off) = self.frame.slot(*id) {
                            self.emit(
                                Inst::Cmp {
                                    w: Width::W64,
                                    src: Operand::Imm(0),
                                    dst: Operand::Mem(self.slot_mem(off)),
                                },
                                p,
                            );
                        } else {
                            self.fetch(cond, Gpr::Rax, p);
                            self.emit(
                                Inst::Test {
                                    w: Width::W64,
                                    src: Operand::Reg(Reg::q(Gpr::Rax)),
                                    dst: Operand::Reg(Reg::q(Gpr::Rax)),
                                },
                                p,
                            );
                        }
                    }
                    _ => {
                        self.fetch(cond, Gpr::Rax, p);
                        self.emit(
                            Inst::Test {
                                w: Width::W64,
                                src: Operand::Reg(Reg::q(Gpr::Rax)),
                                dst: Operand::Reg(Reg::q(Gpr::Rax)),
                            },
                            p,
                        );
                    }
                }
                self.emit(
                    Inst::Jcc {
                        cc: Cc::Ne,
                        target: self.label(then_bb.index()),
                    },
                    p,
                );
                self.emit(
                    Inst::Jmp {
                        target: self.label(else_bb.index()),
                    },
                    p,
                );
            }
            MirInst::Jmp { target } => {
                self.emit(
                    Inst::Jmp {
                        target: self.label(target.index()),
                    },
                    Provenance::Glue(GlueKind::BranchMaterialize),
                );
            }
            MirInst::Ret { val } => {
                let p = Provenance::Glue(GlueKind::RetGlue);
                if let Some(v) = val {
                    self.fetch(v, Gpr::Rax, p);
                }
                let fp = Provenance::Glue(GlueKind::FrameSetup);
                self.emit(
                    Inst::Mov {
                        w: Width::W64,
                        src: Operand::Reg(Reg::q(Gpr::Rbp)),
                        dst: Operand::Reg(Reg::q(Gpr::Rsp)),
                    },
                    fp,
                );
                self.emit(
                    Inst::Pop {
                        dst: Operand::Reg(Reg::q(Gpr::Rbp)),
                    },
                    fp,
                );
                self.emit(Inst::Ret, fp);
            }
        }
        Ok(())
    }

    fn lower_bin(&mut self, id: InstId, op: BinOp, ty: Ty, a: &Value, b: &Value) {
        let p = Provenance::FromIr(id.0);
        let w = width_of(ty);
        match op {
            BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => {
                self.fetch(a, Gpr::Rax, p);
                self.fetch(b, Gpr::Rcx, p);
                let alu = match op {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::And => AluOp::And,
                    BinOp::Or => AluOp::Or,
                    _ => AluOp::Xor,
                };
                self.emit(
                    Inst::Alu {
                        op: alu,
                        w,
                        src: Operand::Reg(Reg::gpr(Gpr::Rcx, w)),
                        dst: Operand::Reg(Reg::gpr(Gpr::Rax, w)),
                    },
                    p,
                );
                if w == Width::W32 {
                    self.canon32(p);
                }
                self.spill(id, Gpr::Rax, p);
            }
            BinOp::Mul => {
                self.fetch(a, Gpr::Rax, p);
                self.fetch(b, Gpr::Rcx, p);
                self.emit(
                    Inst::Imul {
                        w,
                        src: Operand::Reg(Reg::gpr(Gpr::Rcx, w)),
                        dst: Reg::gpr(Gpr::Rax, w),
                    },
                    p,
                );
                if w == Width::W32 {
                    self.canon32(p);
                }
                self.spill(id, Gpr::Rax, p);
            }
            BinOp::SDiv | BinOp::SRem => {
                self.fetch(a, Gpr::Rax, p);
                self.fetch(b, Gpr::Rcx, p);
                self.emit(Inst::Cqo { w }, p);
                self.emit(
                    Inst::Idiv {
                        w,
                        src: Operand::Reg(Reg::gpr(Gpr::Rcx, w)),
                    },
                    p,
                );
                if op == BinOp::SRem {
                    self.emit(
                        Inst::Mov {
                            w: Width::W64,
                            src: Operand::Reg(Reg::q(Gpr::Rdx)),
                            dst: Operand::Reg(Reg::q(Gpr::Rax)),
                        },
                        p,
                    );
                }
                if w == Width::W32 {
                    self.canon32(p);
                }
                self.spill(id, Gpr::Rax, p);
            }
            BinOp::Shl | BinOp::AShr | BinOp::LShr => {
                self.fetch(a, Gpr::Rax, p);
                self.fetch(b, Gpr::Rcx, p);
                let sop = match op {
                    BinOp::Shl => ShiftOp::Shl,
                    BinOp::AShr => ShiftOp::Sar,
                    _ => ShiftOp::Shr,
                };
                // Logical right shift must operate on the zero-extended
                // narrow value; at 64-bit width the canonical form is the
                // value itself.
                if op == BinOp::LShr && w == Width::W32 {
                    self.emit(
                        Inst::Mov {
                            w: Width::W32,
                            src: Operand::Reg(Reg::l(Gpr::Rax)),
                            dst: Operand::Reg(Reg::l(Gpr::Rax)),
                        },
                        p,
                    );
                }
                self.emit(
                    Inst::Shift {
                        op: sop,
                        w,
                        amount: ShiftAmount::Cl,
                        dst: Operand::Reg(Reg::gpr(Gpr::Rax, w)),
                    },
                    p,
                );
                if w == Width::W32 {
                    self.canon32(p);
                }
                self.spill(id, Gpr::Rax, p);
            }
        }
    }
}

fn lower_function(
    m: &Module,
    f: &Function,
    alloc: Option<&Allocation>,
) -> Result<AsmFunction, CompileError> {
    let frame = Frame::layout(f);
    let mut out = AsmFunction::new(f.name.clone());
    // Prologue block.
    let mut prologue = AsmBlock::new(format!("{}_prologue", f.name));
    let fp = Provenance::Glue(GlueKind::FrameSetup);
    prologue.push(
        Inst::Push {
            src: Operand::Reg(Reg::q(Gpr::Rbp)),
        },
        fp,
    );
    prologue.push(
        Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rsp)),
            dst: Operand::Reg(Reg::q(Gpr::Rbp)),
        },
        fp,
    );
    if frame.size > 0 {
        prologue.push(
            Inst::Alu {
                op: AluOp::Sub,
                w: Width::W64,
                src: Operand::Imm(frame.size),
                dst: Operand::Reg(Reg::q(Gpr::Rsp)),
            },
            fp,
        );
    }
    // Spill incoming arguments to their slots.
    for (i, _) in f.params.iter().enumerate() {
        let off = frame.arg_offset(i as u32);
        prologue.push(
            Inst::Mov {
                w: Width::W64,
                src: Operand::Reg(Reg::q(ARG_GPRS[i])),
                dst: Operand::Mem(MemRef::base_disp(Gpr::Rbp, off)),
            },
            fp,
        );
    }
    out.blocks.push(prologue);

    let mut lw = Lowerer {
        m,
        f,
        frame,
        alloc,
        out,
        cur: 0,
    };
    for (bi, b) in f.blocks.iter().enumerate() {
        lw.out.blocks.push(AsmBlock::new(lw.label(bi)));
        lw.cur = lw.out.blocks.len() - 1;
        for inst in &b.insts {
            lw.lower_inst(inst)?;
        }
    }
    Ok(lw.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::Global;

    fn compile_main(build: impl FnOnce(&mut FunctionBuilder)) -> AsmProgram {
        let mut b = FunctionBuilder::new("main", &[], None);
        build(&mut b);
        let m = Module::from_functions(vec![b.finish()]);
        compile(&m).expect("compiles")
    }

    #[test]
    fn trivial_main_compiles_and_validates() {
        let p = compile_main(|b| b.ret(None));
        assert!(p.validate().is_ok());
        let main = p.function("main").unwrap();
        // prologue + ret lowering
        assert!(main.len() >= 4);
    }

    #[test]
    fn branch_lowering_materialises_cmp() {
        let p = compile_main(|b| {
            let t = b.create_block("t");
            let e = b.create_block("e");
            let one = b.iconst(Ty::I64, 1);
            let two = b.iconst(Ty::I64, 2);
            let c = b.icmp(ICmpPred::Slt, Ty::I64, one, two);
            b.br(c, t, e);
            b.switch_to(t);
            b.ret(None);
            b.switch_to(e);
            b.ret(None);
        });
        assert!(p.validate().is_ok());
        let main = p.function("main").unwrap();
        // There must be a BranchMaterialize cmp against $0 (Fig. 9).
        let has_matcmp = main.insts().any(|ai| {
            ai.prov == Provenance::Glue(GlueKind::BranchMaterialize)
                && matches!(
                    &ai.inst,
                    Inst::Cmp {
                        src: Operand::Imm(0),
                        ..
                    }
                )
        });
        assert!(has_matcmp, "branch materialisation cmp missing");
    }

    #[test]
    fn store_staging_is_glue() {
        let p = compile_main(|b| {
            let slot = b.alloca(Ty::I64);
            let v = b.iconst(Ty::I64, 5);
            b.store(Ty::I64, v, slot);
            b.ret(None);
        });
        let main = p.function("main").unwrap();
        let staging = main
            .insts()
            .filter(|ai| ai.prov == Provenance::Glue(GlueKind::StoreStaging))
            .count();
        assert!(
            staging >= 3,
            "value fetch, address lea, and store mov expected"
        );
    }

    #[test]
    fn call_glue_stages_arguments_in_order() {
        let mut callee = FunctionBuilder::new("f", &[Ty::I64, Ty::I64], Some(Ty::I64));
        let s = callee.add(Ty::I64, callee.arg(0), callee.arg(1));
        callee.ret(Some(s));
        let mut main = FunctionBuilder::new("main", &[], None);
        let a = main.iconst(Ty::I64, 1);
        let bv = main.iconst(Ty::I64, 2);
        let r = main.call("f", vec![a, bv], Some(Ty::I64)).unwrap();
        main.print(r);
        main.ret(None);
        let m = Module::from_functions(vec![main.finish(), callee.finish()]);
        let p = compile(&m).expect("compiles");
        assert!(p.validate().is_ok());
        let mainf = p.function("main").unwrap();
        let glue: Vec<_> = mainf
            .insts()
            .filter(|ai| ai.prov == Provenance::Glue(GlueKind::CallGlue))
            .collect();
        // Two arg movs + result spill + (print arg + call) etc.
        assert!(glue.len() >= 4);
        assert!(mainf
            .insts()
            .any(|ai| matches!(&ai.inst, Inst::Call { target } if target == "f")));
    }

    #[test]
    fn detect_lowered_to_exit_jump() {
        let mut b = FunctionBuilder::new("main", &[], None);
        b.call(ferrum_mir::DETECT, vec![], None);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        let p = compile(&m).expect("compiles");
        let main = p.function("main").unwrap();
        assert!(main.insts().any(
            |ai| matches!(&ai.inst, Inst::Jmp { target } if target == ferrum_asm::EXIT_FUNCTION)
        ));
    }

    #[test]
    fn too_many_args_rejected() {
        let mut callee = FunctionBuilder::new("f", &[Ty::I64; 7], None);
        callee.ret(None);
        let mut main = FunctionBuilder::new("main", &[], None);
        let zero = main.iconst(Ty::I64, 0);
        main.call("f", vec![zero; 7], None);
        main.ret(None);
        let m = Module::from_functions(vec![main.finish(), callee.finish()]);
        assert!(matches!(compile(&m), Err(CompileError::TooManyArgs { .. })));
    }

    #[test]
    fn invalid_module_rejected() {
        let b = FunctionBuilder::new("main", &[], None); // unterminated
        let m = Module::from_functions(vec![b.finish()]);
        assert!(matches!(compile(&m), Err(CompileError::InvalidModule(_))));
    }

    #[test]
    fn globals_become_data_objects() {
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![7, 8]));
        let mut b = FunctionBuilder::new("main", &[], None);
        let base = b.global(g);
        let v = b.load(Ty::I64, base);
        b.print(v);
        b.ret(None);
        module.functions.push(b.finish());
        let p = compile(&module).expect("compiles");
        assert_eq!(p.data.len(), 1);
        assert_eq!(p.data[0].name, "tab");
        assert_eq!(p.data[0].words, vec![7, 8]);
        // The global is addressed via lea sym(%rip).
        assert!(p.function("main").unwrap().insts().any(|ai| matches!(
            &ai.inst,
            Inst::Lea { mem, .. } if mem.symbol.as_deref() == Some("tab")
        )));
    }

    #[test]
    fn i32_ops_recanonicalise() {
        let p = compile_main(|b| {
            let x = b.iconst(Ty::I32, -5);
            let y = b.iconst(Ty::I32, 3);
            let s = b.add(Ty::I32, x, y);
            b.print(s);
            b.ret(None);
        });
        let main = p.function("main").unwrap();
        // 32-bit add followed by movslq canonicalisation.
        let insts: Vec<_> = main.insts().map(|ai| &ai.inst).collect();
        let add_pos = insts
            .iter()
            .position(|i| {
                matches!(
                    i,
                    Inst::Alu {
                        op: AluOp::Add,
                        w: Width::W32,
                        ..
                    }
                )
            })
            .expect("addl present");
        assert!(
            matches!(
                insts[add_pos + 1],
                Inst::Movsx {
                    src_w: Width::W32,
                    ..
                }
            ),
            "movslq after addl"
        );
    }

    #[test]
    fn backend_register_discipline_leaves_spares() {
        // The backend must never touch rbx/r10..r15 or any SIMD register,
        // so FERRUM's scanner always finds its required spares.
        let p = compile_main(|b| {
            let slot = b.alloca(Ty::I64);
            let x = b.iconst(Ty::I64, 3);
            let y = b.iconst(Ty::I64, 4);
            let s = b.mul(Ty::I64, x, y);
            b.store(Ty::I64, s, slot);
            let v = b.load(Ty::I64, slot);
            let q = b.sdiv(Ty::I64, v, x);
            b.print(q);
            b.ret(None);
        });
        let rep = ferrum_asm::analysis::regscan::SpareReport::scan(p.function("main").unwrap());
        for g in [
            Gpr::Rbx,
            Gpr::R10,
            Gpr::R11,
            Gpr::R12,
            Gpr::R13,
            Gpr::R14,
            Gpr::R15,
        ] {
            assert!(!rep.function.uses_gpr(g), "backend used {g}");
        }
        assert_eq!(rep.function.spare_simd().len(), 16);
    }
}
