//! Assembly-level peephole optimisations — the "other compiler-level
//! transformations" FERRUM bundles with its protection (paper abstract,
//! §III).  Two passes:
//!
//! 1. **Redundant reload elimination**: within a block, a `movq
//!    disp(%rbp), %r` is dropped when `%r` provably still holds that
//!    slot's value (store-to-load forwarding and repeated reloads).
//! 2. **Fall-through jump elimination**: a block-final `jmp` to the next
//!    block in layout order is dropped.
//!
//! # Soundness precondition
//!
//! Reload elimination assumes the *frame discipline* the backend
//! guarantees: directly addressed `disp(%rbp)` slots (results and
//! argument spills) are disjoint from all indirectly addressed memory
//! (alloca storage and globals are only ever reached through pointers).
//! Hand-written assembly that indexes out of an allocation may break
//! this; the pipeline only runs the pass on backend output.

use std::collections::HashMap;

use ferrum_asm::inst::Inst;
use ferrum_asm::operand::{MemRef, Operand};
use ferrum_asm::program::{AsmFunction, AsmInst, AsmProgram};
use ferrum_asm::reg::{Gpr, Reg, Width};

/// What the optimiser removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeepholeStats {
    /// Redundant slot reloads removed.
    pub reloads_removed: usize,
    /// Slot reloads rewritten into register-to-register moves
    /// (store-to-load forwarding across registers).
    pub reloads_forwarded: usize,
    /// Fall-through jumps removed.
    pub jumps_removed: usize,
}

/// Runs all peephole passes in place and reports what was removed.
pub fn run(p: &mut AsmProgram) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    for f in &mut p.functions {
        let (removed, forwarded) = eliminate_redundant_reloads(f);
        stats.reloads_removed += removed;
        stats.reloads_forwarded += forwarded;
        stats.jumps_removed += eliminate_fallthrough_jumps(f);
    }
    stats
}

/// A frame slot directly addressed as `disp(%rbp)`.
fn as_frame_slot(m: &MemRef) -> Option<i64> {
    match (m.base, m.index, &m.symbol) {
        (Some(Gpr::Rbp), None, None) => Some(m.disp),
        _ => None,
    }
}

fn eliminate_redundant_reloads(f: &mut AsmFunction) -> (usize, usize) {
    let mut removed = 0;
    let mut forwarded = 0;
    for b in &mut f.blocks {
        // reg -> slot whose value it holds; slot -> reg holding it.
        let mut reg_holds: HashMap<Gpr, i64> = HashMap::new();
        let mut keep: Vec<AsmInst> = Vec::with_capacity(b.insts.len());
        for mut ai in b.insts.drain(..) {
            let mut drop_inst = false;
            let mut forward_to: Option<(Gpr, Gpr, i64)> = None;
            match &ai.inst {
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Mem(m),
                    dst: Operand::Reg(r),
                } if r.width == Width::W64 => {
                    if let Some(slot) = as_frame_slot(m) {
                        if reg_holds.get(&r.gpr) == Some(&slot) {
                            drop_inst = true;
                            removed += 1;
                        } else if let Some((&holder, _)) =
                            reg_holds.iter().find(|&(_, &s)| s == slot)
                        {
                            forward_to = Some((holder, r.gpr, slot));
                        } else {
                            reg_holds.insert(r.gpr, slot);
                        }
                    } else {
                        reg_holds.remove(&r.gpr);
                    }
                }
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Reg(r),
                    dst: Operand::Mem(m),
                } if r.width == Width::W64 => {
                    if let Some(slot) = as_frame_slot(m) {
                        // The slot now holds r's value; all other register
                        // facts about this slot are stale.
                        reg_holds.retain(|_, s| *s != slot);
                        reg_holds.insert(r.gpr, slot);
                    }
                    // Indirect stores cannot alias tracked slots (frame
                    // discipline), so register facts survive.
                }
                Inst::Call { .. } => {
                    // The callee may leave anything in the registers.
                    reg_holds.clear();
                }
                other => {
                    for g in other.gprs_written() {
                        reg_holds.remove(&g);
                    }
                }
            }
            if let Some((holder, dst, slot)) = forward_to {
                // Forward: another register still holds the slot's value
                // — turn the reload into a register move.
                ai.inst = Inst::Mov {
                    w: Width::W64,
                    src: Operand::Reg(Reg::q(holder)),
                    dst: Operand::Reg(Reg::q(dst)),
                };
                forwarded += 1;
                reg_holds.insert(dst, slot);
            }
            if !drop_inst {
                keep.push(ai);
            }
        }
        b.insts = keep;
    }
    (removed, forwarded)
}

pub(crate) fn eliminate_fallthrough_jumps(f: &mut AsmFunction) -> usize {
    let mut removed = 0;
    let next_labels: Vec<Option<String>> = (0..f.blocks.len())
        .map(|i| f.blocks.get(i + 1).map(|b| b.label.clone()))
        .collect();
    for (bi, b) in f.blocks.iter_mut().enumerate() {
        if let Some(last) = b.insts.last() {
            if let Inst::Jmp { target } = &last.inst {
                if next_labels[bi].as_deref() == Some(target.as_str()) {
                    b.insts.pop();
                    removed += 1;
                }
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::program::{AsmBlock, AsmInst};

    use ferrum_asm::reg::Reg;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::Module;
    use ferrum_mir::types::Ty;

    fn load(slot: i64, r: Gpr) -> Inst {
        Inst::Mov {
            w: Width::W64,
            src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, slot)),
            dst: Operand::Reg(Reg::q(r)),
        }
    }

    fn store(r: Gpr, slot: i64) -> Inst {
        Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(r)),
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rbp, slot)),
        }
    }

    fn func_of(insts: Vec<Inst>) -> AsmFunction {
        let mut f = AsmFunction::new("main");
        let mut b = AsmBlock::new("main_bb0");
        for i in insts {
            b.insts.push(AsmInst::synthetic(i));
        }
        b.insts.push(AsmInst::synthetic(Inst::Ret));
        f.blocks.push(b);
        f
    }

    #[test]
    fn store_to_load_forwarding() {
        let mut f = func_of(vec![store(Gpr::Rax, -8), load(-8, Gpr::Rax)]);
        let (removed, _) = eliminate_redundant_reloads(&mut f);
        assert_eq!(removed, 1);
        assert_eq!(f.blocks[0].insts.len(), 2); // store + ret
    }

    #[test]
    fn repeated_reload_removed() {
        let mut f = func_of(vec![load(-8, Gpr::Rax), load(-8, Gpr::Rax)]);
        assert_eq!(eliminate_redundant_reloads(&mut f).0, 1);
    }

    #[test]
    fn reload_into_other_register_forwards() {
        // rax holds slot -8; the reload into rcx becomes a register move.
        let mut f = func_of(vec![load(-8, Gpr::Rax), load(-8, Gpr::Rcx)]);
        let (removed, forwarded) = eliminate_redundant_reloads(&mut f);
        assert_eq!(removed, 0);
        assert_eq!(forwarded, 1);
        assert_eq!(
            f.blocks[0].insts[1].inst,
            Inst::Mov {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Operand::Reg(Reg::q(Gpr::Rcx)),
            }
        );
        // And the forwarded copy itself becomes a tracked holder: a
        // third reload forwards from either register.
        let mut f = func_of(vec![
            load(-8, Gpr::Rax),
            load(-8, Gpr::Rcx),
            load(-8, Gpr::Rdx),
        ]);
        let (_, forwarded) = eliminate_redundant_reloads(&mut f);
        assert_eq!(forwarded, 2);
    }

    #[test]
    fn store_then_other_register_load_forwards_from_the_stored_register() {
        let mut f = func_of(vec![store(Gpr::Rax, -16), load(-16, Gpr::Rdi)]);
        let (removed, forwarded) = eliminate_redundant_reloads(&mut f);
        assert_eq!((removed, forwarded), (0, 1));
        assert_eq!(
            f.blocks[0].insts[1].inst,
            Inst::Mov {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Operand::Reg(Reg::q(Gpr::Rdi)),
            }
        );
    }

    #[test]
    fn forwarding_does_not_cross_a_clobber_of_the_holder() {
        let mut f = func_of(vec![
            load(-8, Gpr::Rax),
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(9),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            load(-8, Gpr::Rcx),
        ]);
        let (removed, forwarded) = eliminate_redundant_reloads(&mut f);
        assert_eq!((removed, forwarded), (0, 0));
    }

    #[test]
    fn clobbered_register_invalidates() {
        let mut f = func_of(vec![
            load(-8, Gpr::Rax),
            Inst::Alu {
                op: ferrum_asm::inst::AluOp::Add,
                w: Width::W64,
                src: Operand::Imm(1),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            load(-8, Gpr::Rax),
        ]);
        assert_eq!(eliminate_redundant_reloads(&mut f).0, 0);
    }

    #[test]
    fn slot_overwrite_invalidates_other_holders() {
        // rax holds -8, then rcx is stored to -8; a reload of -8 into rax
        // must stay.
        let mut f = func_of(vec![
            load(-8, Gpr::Rax),
            store(Gpr::Rcx, -8),
            load(-8, Gpr::Rax),
        ]);
        assert_eq!(eliminate_redundant_reloads(&mut f).0, 0);
    }

    #[test]
    fn call_clears_all_facts() {
        let mut f = func_of(vec![
            load(-8, Gpr::Rax),
            Inst::Call {
                target: "print_i64".into(),
            },
            load(-8, Gpr::Rax),
        ]);
        assert_eq!(eliminate_redundant_reloads(&mut f).0, 0);
    }

    #[test]
    fn facts_do_not_cross_blocks() {
        let mut f = AsmFunction::new("main");
        let mut b0 = AsmBlock::new("b0");
        b0.insts.push(AsmInst::synthetic(load(-8, Gpr::Rax)));
        let mut b1 = AsmBlock::new("b1");
        b1.insts.push(AsmInst::synthetic(load(-8, Gpr::Rax)));
        b1.insts.push(AsmInst::synthetic(Inst::Ret));
        f.blocks.push(b0);
        f.blocks.push(b1);
        assert_eq!(eliminate_redundant_reloads(&mut f).0, 0);
    }

    #[test]
    fn fallthrough_jump_removed_but_real_jump_kept() {
        let mut f = AsmFunction::new("main");
        let mut b0 = AsmBlock::new("b0");
        b0.insts.push(AsmInst::synthetic(Inst::Jmp {
            target: "b1".into(),
        }));
        let mut b1 = AsmBlock::new("b1");
        b1.insts.push(AsmInst::synthetic(Inst::Jmp {
            target: "b0".into(),
        }));
        f.blocks.push(b0);
        f.blocks.push(b1);
        assert_eq!(eliminate_fallthrough_jumps(&mut f), 1);
        assert!(f.blocks[0].insts.is_empty());
        assert_eq!(f.blocks[1].insts.len(), 1);
    }

    #[test]
    fn preserves_program_output_on_compiled_code() {
        // Compile a small program, run the peephole, and check the
        // instruction count strictly decreases while structure stays valid.
        let mut b = FunctionBuilder::new("main", &[], None);
        let p = b.alloca(Ty::I64);
        let c = b.iconst(Ty::I64, 11);
        b.store(Ty::I64, c, p);
        let v = b.load(Ty::I64, p);
        let w = b.add(Ty::I64, v, v);
        b.print(w);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        let mut prog = crate::compile(&m).expect("compiles");
        let before = prog.static_inst_count();
        let stats = run(&mut prog);
        assert!(prog.validate().is_ok());
        assert!(prog.static_inst_count() < before);
        assert!(stats.reloads_removed > 0);
    }
}
