//! Linear-scan register allocation over MIR liveness intervals.
//!
//! At `-O1` the backend promotes MIR values out of their `%rbp` frame
//! slots into a small pool of general-purpose registers.  The pool is
//! deliberately restricted to registers the `-O0` backend already
//! touches (`%rsi`, `%rdi`, `%r8`, `%r9` — the tail of the argument
//! set): `%rbx` and `%r10`–`%r15` and every SIMD register stay spare,
//! so FERRUM's spare-register scanner and the hybrid baseline's
//! `%r10`/`%r11` scratch pair find exactly the slack they found at
//! `-O0`, and any [`ProtectionManifest`] reserved register is
//! untouchable by construction.
//!
//! The scan is conservative where the lowering is simple:
//!
//! * intervals are single `[start, end]` spans over the block layout
//!   order (holes are not reused);
//! * any interval overlapping a call position — including one whose
//!   last use *is* the call's argument staging — is left in memory,
//!   because calls clobber the caller-saved pool and argument staging
//!   itself cycles through `%rdi`/`%rsi`/`%r8`/`%r9`;
//! * allocas (frame addresses) and incoming arguments keep their
//!   slots.
//!
//! Values that do not receive a register keep their `-O0` frame-slot
//! home, so allocation failure is never a compile failure.
//!
//! [`ProtectionManifest`]: ferrum_asm::analysis::lint::ProtectionManifest

use std::collections::HashMap;

use ferrum_asm::reg::Gpr;
use ferrum_mir::func::Function;
use ferrum_mir::inst::{InstId, MirInst};
use ferrum_mir::liveness::MirLiveness;
use ferrum_mir::value::Value;

/// The allocatable pool, in assignment preference order.  Must stay
/// disjoint from the `-O0` scratch set (`%rax`, `%rcx`, `%rdx`) and
/// from the spare set FERRUM requisitions (`%rbx`, `%r10`–`%r15`).
pub const POOL: [Gpr; 4] = [Gpr::Rsi, Gpr::Rdi, Gpr::R8, Gpr::R9];

/// Result of allocation for one function.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    regs: HashMap<u32, Gpr>,
    /// Intervals that were eligible for a register.
    pub candidates: usize,
    /// Intervals that received one.
    pub allocated: usize,
}

impl Allocation {
    /// The register assigned to `id`, if any.
    pub fn reg(&self, id: InstId) -> Option<Gpr> {
        self.regs.get(&id.0).copied()
    }

    /// Iterates over all assignments.
    pub fn assignments(&self) -> impl Iterator<Item = (InstId, Gpr)> + '_ {
        self.regs.iter().map(|(&id, &g)| (InstId(id), g))
    }
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    id: u32,
    start: usize,
    end: usize,
}

/// Runs linear scan over `f` and returns the register assignment.
pub fn allocate(f: &Function) -> Allocation {
    let lv = MirLiveness::compute(f);

    // Linearise: each MIR instruction gets one position in block layout
    // order; block boundaries get positions too so liveness extension
    // covers whole blocks.
    let mut pos = 0usize;
    let mut block_span = Vec::with_capacity(f.blocks.len());
    let mut inst_pos: Vec<(usize, &MirInst)> = Vec::new();
    for b in &f.blocks {
        let start = pos;
        for inst in &b.insts {
            inst_pos.push((pos, inst));
            pos += 1;
        }
        // Empty blocks still occupy a position.
        let end = pos.max(start + 1) - 1;
        block_span.push((start, end));
        pos = end + 1;
    }

    // Build conservative [min, max] intervals.
    let mut ranges: HashMap<u32, (usize, usize)> = HashMap::new();
    let touch = |id: u32, p: usize, ranges: &mut HashMap<u32, (usize, usize)>| {
        let e = ranges.entry(id).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    let mut eligible: HashMap<u32, bool> = HashMap::new();
    for (bi, &(bstart, bend)) in block_span.iter().enumerate() {
        for &id in lv.live_in(bi) {
            touch(id, bstart, &mut ranges);
        }
        for &id in lv.live_out(bi) {
            touch(id, bend, &mut ranges);
        }
    }
    let mut call_positions: Vec<usize> = Vec::new();
    for &(p, inst) in &inst_pos {
        if let Some(id) = inst.result() {
            touch(id.0, p, &mut ranges);
            let ok = !matches!(inst, MirInst::Alloca { .. });
            eligible.insert(id.0, ok);
        }
        for v in inst.operands() {
            if let Value::Inst(id) = v {
                touch(id.0, p, &mut ranges);
            }
        }
        if matches!(inst, MirInst::Call { .. }) {
            call_positions.push(p);
        }
    }

    let mut intervals: Vec<Interval> = ranges
        .iter()
        .filter(|(id, _)| eligible.get(*id).copied().unwrap_or(false))
        .map(|(&id, &(start, end))| Interval { id, start, end })
        // A value live into a call position (used at or across it) must
        // stay in its slot; a value *defined by* the call (start == p)
        // is safe — the definition lands after the callee returns.
        .filter(|iv| !call_positions.iter().any(|&p| iv.start < p && p <= iv.end))
        .collect();
    intervals.sort_by_key(|iv| (iv.start, iv.id));

    let mut alloc = Allocation {
        candidates: intervals.len(),
        ..Allocation::default()
    };
    // active: (end, reg)
    let mut active: Vec<(usize, Gpr)> = Vec::new();
    let mut free: Vec<Gpr> = POOL.iter().rev().copied().collect();
    for iv in intervals {
        // Expire intervals that ended strictly before this start: their
        // last read happens before the new value's defining write.
        active.retain(|&(end, reg)| {
            if end < iv.start {
                free.push(reg);
                false
            } else {
                true
            }
        });
        if let Some(reg) = free.pop() {
            active.push((iv.end, reg));
            alloc.regs.insert(iv.id, reg);
            alloc.allocated += 1;
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::types::Ty;

    #[test]
    fn straight_line_values_get_registers_from_the_pool() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let x = b.iconst(Ty::I64, 3);
        let y = b.iconst(Ty::I64, 4);
        let s = b.add(Ty::I64, x, y);
        let t = b.mul(Ty::I64, s, s);
        b.print(t);
        b.ret(None);
        let f = b.finish();
        let a = allocate(&f);
        assert!(a.allocated > 0);
        for (_, g) in a.assignments() {
            assert!(POOL.contains(&g), "{g} outside pool");
        }
        // `t` is consumed by the print call's argument staging: it must
        // stay in memory.
        assert_eq!(a.reg(t.as_inst().unwrap()), None);
        // `s` dies before the call position.
        assert!(a.reg(s.as_inst().unwrap()).is_some());
    }

    #[test]
    fn values_live_across_calls_stay_in_slots() {
        let mut callee = FunctionBuilder::new("g", &[], Some(Ty::I64));
        let one = callee.iconst(Ty::I64, 1);
        callee.ret(Some(one));
        let mut b = FunctionBuilder::new("f", &[], None);
        let three = b.iconst(Ty::I64, 3);
        let four = b.iconst(Ty::I64, 4);
        let x = b.add(Ty::I64, three, four);
        let r = b.call("g", vec![], Some(Ty::I64)).unwrap();
        let s = b.add(Ty::I64, x, r);
        let t = b.add(Ty::I64, s, s);
        b.print(t);
        b.ret(None);
        let f = b.finish();
        let a = allocate(&f);
        // `x` crosses the call; `r` is defined by it (allocatable); `s`
        // lives between the call and the print staging.
        assert_eq!(a.reg(x.as_inst().unwrap()), None);
        assert!(a.reg(s.as_inst().unwrap()).is_some());
    }

    #[test]
    fn allocas_are_never_allocated() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let p = b.alloca(Ty::I64);
        let c = b.iconst(Ty::I64, 9);
        b.store(Ty::I64, c, p);
        let v = b.load(Ty::I64, p);
        let w = b.add(Ty::I64, v, v);
        b.store(Ty::I64, w, p);
        b.ret(None);
        let f = b.finish();
        let a = allocate(&f);
        assert_eq!(a.reg(p.as_inst().unwrap()), None);
        assert!(a.reg(v.as_inst().unwrap()).is_some());
    }

    #[test]
    fn overlapping_intervals_get_distinct_registers() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let zero = b.iconst(Ty::I64, 0);
        let mut vals = Vec::new();
        for i in 0..4 {
            let c = b.iconst(Ty::I64, i);
            vals.push(b.add(Ty::I64, c, zero));
        }
        // All four sums stay live until the final reductions.
        let s01 = b.add(Ty::I64, vals[0], vals[1]);
        let s23 = b.add(Ty::I64, vals[2], vals[3]);
        let s = b.add(Ty::I64, s01, s23);
        b.print(s);
        b.ret(None);
        let f = b.finish();
        let a = allocate(&f);
        let regs: Vec<Option<Gpr>> = vals
            .iter()
            .map(|v| a.reg(v.as_inst().unwrap()))
            .collect();
        let assigned: Vec<Gpr> = regs.iter().flatten().copied().collect();
        let mut dedup = assigned.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(assigned.len(), dedup.len(), "register reused while live");
        assert!(a.allocated >= 4, "pool of 4 covers the overlapping sums");
    }

    #[test]
    fn pool_exhaustion_degrades_to_memory_not_panic() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let zero = b.iconst(Ty::I64, 0);
        let mut vals = Vec::new();
        for i in 0..8 {
            let c = b.iconst(Ty::I64, i);
            vals.push(b.add(Ty::I64, c, zero));
        }
        let mut acc = b.add(Ty::I64, vals[0], vals[1]);
        for v in &vals[2..] {
            acc = b.add(Ty::I64, acc, *v);
        }
        b.print(acc);
        b.ret(None);
        let f = b.finish();
        let a = allocate(&f);
        assert!(a.allocated <= a.candidates);
        assert!(a.candidates >= 8);
        // With only four pool registers, at least one of the eight
        // simultaneously-live constants must stay in memory.
        assert!(a.allocated < a.candidates);
    }
}
