//! The `-O1` pass pipeline: global available-loads forwarding,
//! cmp/branch fusion, dead-store elimination, and a dead-code sweep.
//!
//! At `-O0` the backend reproduces the paper's naive lowering: every
//! value round-trips through its `%rbp` frame slot, so IR-level
//! duplication survives lowering almost intact and IR-EDDI's measured
//! coverage gap stays small.  The paper's second root cause —
//! *"IR-level protection becomes ineffective after lowering"* (§IV-B1)
//! — needs a backend that folds and forwards.  These passes supply
//! exactly the transformations that break IR-level shadows:
//!
//! * **Available-loads forwarding** proves, by forward dataflow over
//!   the CFG, that a register already holds the value of a frame word
//!   (directly addressed slots *and* `lea`-addressed alloca words) and
//!   rewrites the reload into a register copy — which collapses an
//!   IR-EDDI shadow load of an unduplicated pointer into a copy of the
//!   master value: a single point of failure.
//! * **Local value numbering** (shadow-computation CSE) proves, per
//!   block, that an ALU result was already computed into another
//!   register and rewrites the recomputation into a register copy —
//!   which is what real `-O1` value numbering does to an IR-EDDI
//!   shadow chain once forwarding has collapsed its operand loads:
//!   the entire duplicate computation degenerates into copies of the
//!   master values, and every master writeback becomes a single point
//!   of failure.
//! * **Cmp/branch fusion** rewrites the lowered
//!   `cmp; setcc; movzx; …; test; jne` chain into a direct `cmp; jcc`
//!   when the boolean is otherwise dead, removing the re-test the
//!   paper's Fig. 9 shows and leaving one unprotected flags site.
//! * **Dead-store elimination** drops spills whose slot is never
//!   reloaded (backward slot-liveness dataflow).
//! * **Dead-code sweep** removes register writes whose bytes are dead
//!   (`ferrum_asm::analysis::liveness` at byte granularity), plus
//!   fall-through jumps.
//!
//! The bundle runs to a fixpoint, so `optimize` is idempotent:
//! applying it to its own output changes nothing.
//!
//! # Soundness preconditions
//!
//! Same frame discipline as [`crate::peephole`]: directly addressed
//! `disp(%rbp)` slots are disjoint from all indirectly addressed
//! memory except `lea`-materialised alloca words, and `gep` indexing
//! stays inside its allocation.  The pipeline only runs these passes
//! on backend output, before any protection pass.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ferrum_asm::analysis::cfg::Cfg;
use ferrum_asm::analysis::liveness::{inst_kills, inst_reads, reg_bytes, Liveness};
use ferrum_asm::flags::Cc;
use ferrum_asm::inst::Inst;
use ferrum_asm::operand::{MemRef, Operand};
use ferrum_asm::program::{AsmFunction, AsmProgram};
use ferrum_asm::reg::{Gpr, Reg, Width, ALL_GPRS};
use ferrum_mir::inst::MirInst;
use ferrum_mir::module::Module;

use crate::frame::{Frame, SlotKind};

/// Backend optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum OptLevel {
    /// Naive lowering, byte-identical to [`crate::compile`].
    #[default]
    O0,
    /// Linear-scan register allocation plus the assembly pass bundle.
    O1,
}

impl OptLevel {
    /// Parses `0`/`1` (also `O0`/`o1`).
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s {
            "0" | "O0" | "o0" => Some(OptLevel::O0),
            "1" | "O1" | "o1" => Some(OptLevel::O1),
            _ => None,
        }
    }

    /// `"O0"` / `"O1"`.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the `-O1` pipeline did, per pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Intervals eligible for a register.
    pub regalloc_candidates: usize,
    /// Intervals that received one.
    pub regalloc_allocated: usize,
    /// Frame-word reloads rewritten into register copies.
    pub loads_forwarded: usize,
    /// Frame-word reloads deleted outright.
    pub loads_removed: usize,
    /// Recomputations rewritten into register copies by value
    /// numbering.
    pub exprs_forwarded: usize,
    /// Recomputations whose destination already held the result,
    /// deleted by value numbering.
    pub exprs_removed: usize,
    /// Dead slot stores deleted.
    pub stores_removed: usize,
    /// `cmp`/`setcc`/`test`/`jcc` chains fused into direct `jcc`s.
    pub branches_fused: usize,
    /// Instructions deleted by fusion (the test and the boolean chain).
    pub fused_insts_removed: usize,
    /// Dead register writes swept.
    pub dead_removed: usize,
    /// Fall-through jumps dropped.
    pub jumps_removed: usize,
}

impl PassStats {
    /// Total instructions deleted — the exact static-size delta of the
    /// assembly bundle (forwarding rewrites in place and deletes
    /// nothing).
    pub fn insts_removed(&self) -> u64 {
        (self.loads_removed
            + self.exprs_removed
            + self.stores_removed
            + self.fused_insts_removed
            + self.dead_removed
            + self.jumps_removed) as u64
    }

    /// True when the assembly bundle changed nothing.
    pub fn bundle_is_noop(&self) -> bool {
        self.loads_forwarded == 0 && self.exprs_forwarded == 0 && self.insts_removed() == 0
    }

    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &PassStats) {
        self.regalloc_candidates += other.regalloc_candidates;
        self.regalloc_allocated += other.regalloc_allocated;
        self.loads_forwarded += other.loads_forwarded;
        self.loads_removed += other.loads_removed;
        self.exprs_forwarded += other.exprs_forwarded;
        self.exprs_removed += other.exprs_removed;
        self.stores_removed += other.stores_removed;
        self.branches_fused += other.branches_fused;
        self.fused_insts_removed += other.fused_insts_removed;
        self.dead_removed += other.dead_removed;
        self.jumps_removed += other.jumps_removed;
    }
}

/// Per-function frame facts the passes need (which `%rbp` offsets are
/// result/argument slots, which are alloca words).
#[derive(Debug, Clone, Default)]
pub struct FuncMeta {
    /// Result and argument spill slots: never address-taken, never
    /// aliased by indirect memory operations.
    pub tracked: BTreeSet<i64>,
    /// Individual alloca words: reached through `lea`-materialised
    /// pointers, so an unknown indirect store may alias any of them.
    pub alloca_words: BTreeSet<i64>,
}

/// Frame facts for every function of a module.
#[derive(Debug, Clone, Default)]
pub struct ProgramMeta {
    funcs: BTreeMap<String, FuncMeta>,
}

impl ProgramMeta {
    /// Recomputes the (deterministic) frame layout of each function.
    pub fn from_module(m: &Module) -> ProgramMeta {
        let mut funcs = BTreeMap::new();
        for f in &m.functions {
            let frame = Frame::layout(f);
            let mut meta = FuncMeta::default();
            for i in 0..f.params.len() {
                meta.tracked.insert(frame.arg_offset(i as u32));
            }
            for inst in f.insts() {
                match inst {
                    MirInst::Alloca { id, count, .. } => {
                        if let SlotKind::AllocaBase(base) = frame.slot(*id) {
                            for k in 0..i64::from(*count) {
                                meta.alloca_words.insert(base + 8 * k);
                            }
                        }
                    }
                    _ => {
                        if let Some(id) = inst.result() {
                            if let SlotKind::Result(off) = frame.slot(id) {
                                meta.tracked.insert(off);
                            }
                        }
                    }
                }
            }
            funcs.insert(f.name.clone(), meta);
        }
        ProgramMeta { funcs }
    }

    /// Facts for one function.
    pub fn function(&self, name: &str) -> Option<&FuncMeta> {
        self.funcs.get(name)
    }
}

/// Runs the assembly pass bundle to a fixpoint and reports exact
/// per-pass counts.  Functions without an entry in `meta` are left
/// untouched (their aliasing is unknown).
pub fn optimize(p: &mut AsmProgram, meta: &ProgramMeta) -> PassStats {
    let _span = ferrum_trace::span("backend.opt");
    let mut stats = PassStats::default();
    for f in &mut p.functions {
        let Some(fm) = meta.funcs.get(&f.name) else {
            continue;
        };
        // Each pass is monotone (memory traffic and instruction count
        // never increase), so the bundle reaches a fixpoint; 64 rounds
        // is far beyond any real chain of enablements.
        for _ in 0..64 {
            let mut round = PassStats::default();
            let (fwd, rm) = forward_available_loads(f, fm);
            round.loads_forwarded = fwd;
            round.loads_removed = rm;
            let (cse_fwd, cse_rm) = cse_local(f, fm);
            round.exprs_forwarded = cse_fwd;
            round.exprs_removed = cse_rm;
            let (fused, fused_rm) = fuse_compare_branches(f);
            round.branches_fused = fused;
            round.fused_insts_removed = fused_rm;
            round.stores_removed = eliminate_dead_stores(f, fm);
            round.dead_removed = sweep_dead_code(f);
            round.jumps_removed = crate::peephole::eliminate_fallthrough_jumps(f);
            let done = round.bundle_is_noop();
            stats.absorb(&round);
            if done {
                break;
            }
        }
    }
    ferrum_trace::counter("backend.opt.insts_removed", stats.insts_removed());
    stats
}

// ---------------------------------------------------------------------
// Available-loads forwarding
// ---------------------------------------------------------------------

/// What a register provably holds at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Fact {
    /// The value of frame word `off(%rbp)`.
    Val(i64),
    /// The address `%rbp + off` (a `lea`-materialised alloca base).
    Addr(i64),
}

/// Register facts, keyed by `Gpr::index()`.
type Facts = BTreeMap<usize, BTreeSet<Fact>>;

fn meet(a: &Facts, b: &Facts) -> Facts {
    let mut out = Facts::new();
    for (g, fa) in a {
        if let Some(fb) = b.get(g) {
            let inter: BTreeSet<Fact> = fa.intersection(fb).copied().collect();
            if !inter.is_empty() {
                out.insert(*g, inter);
            }
        }
    }
    out
}

/// A frame word directly addressed as `disp(%rbp)`.
fn direct_slot(m: &MemRef) -> Option<i64> {
    match (m.base, m.index, &m.symbol) {
        (Some(Gpr::Rbp), None, None) => Some(m.disp),
        _ => None,
    }
}

/// Resolves a memory operand to a frame-word offset: either a direct
/// slot or an indirect access through a register carrying an `Addr`
/// fact.
fn resolve_word(m: &MemRef, st: &Facts) -> Option<i64> {
    if let Some(off) = direct_slot(m) {
        return Some(off);
    }
    match (m.base, m.index, &m.symbol) {
        (Some(b), None, None) => st.get(&b.index()).and_then(|fs| {
            fs.iter().find_map(|f| match f {
                Fact::Addr(off) => Some(off + m.disp),
                Fact::Val(_) => None,
            })
        }),
        _ => None,
    }
}

fn kill_reg(st: &mut Facts, g: Gpr) {
    st.remove(&g.index());
}

fn kill_val(st: &mut Facts, off: i64) {
    st.retain(|_, fs| {
        fs.remove(&Fact::Val(off));
        !fs.is_empty()
    });
}

fn kill_all_alloca_vals(st: &mut Facts, fm: &FuncMeta) {
    st.retain(|_, fs| {
        fs.retain(|f| match f {
            Fact::Val(off) => !fm.alloca_words.contains(off),
            Fact::Addr(_) => true,
        });
        !fs.is_empty()
    });
}

fn kill_all_vals(st: &mut Facts) {
    st.retain(|_, fs| {
        fs.retain(|f| matches!(f, Fact::Addr(_)));
        !fs.is_empty()
    });
}

/// The register currently holding `Val(off)`, lowest index first for
/// determinism.
fn holder_of(st: &Facts, off: i64) -> Option<Gpr> {
    st.iter()
        .find(|(_, fs)| fs.contains(&Fact::Val(off)))
        .map(|(&gi, _)| ALL_GPRS[gi])
}

enum Action {
    Keep,
    Delete,
    Replace(Inst),
}

/// Transfers one instruction over `st`, returning the rewrite the
/// forwarding pass would apply.  The transfer models the *rewritten*
/// instruction, which is also sound for the original (a forwarded copy
/// and the reload it replaces leave identical register contents).
fn step(st: &mut Facts, inst: &Inst, fm: &FuncMeta) -> Action {
    match inst {
        // 64-bit load from a resolvable frame word.
        Inst::Mov {
            w: Width::W64,
            src: Operand::Mem(m),
            dst: Operand::Reg(r),
        } if r.width == Width::W64 => {
            if let Some(off) = resolve_word(m, st) {
                let rf = st.get(&r.gpr.index());
                if rf.is_some_and(|fs| fs.contains(&Fact::Val(off))) {
                    return Action::Delete;
                }
                if let Some(h) = holder_of(st, off) {
                    let mut facts = st.get(&h.index()).cloned().unwrap_or_default();
                    facts.insert(Fact::Val(off));
                    st.insert(r.gpr.index(), facts);
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Reg(Reg::q(h)),
                        dst: Operand::Reg(Reg::q(r.gpr)),
                    });
                }
                st.insert(r.gpr.index(), BTreeSet::from([Fact::Val(off)]));
            } else {
                kill_reg(st, r.gpr);
            }
            Action::Keep
        }
        // 64-bit register copy propagates facts.
        Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(s),
            dst: Operand::Reg(r),
        } if s.width == Width::W64 && r.width == Width::W64 => {
            match st.get(&s.gpr.index()).cloned() {
                Some(fs) => st.insert(r.gpr.index(), fs),
                None => st.remove(&r.gpr.index()),
            };
            Action::Keep
        }
        // Stores.
        Inst::Mov {
            w,
            src,
            dst: Operand::Mem(m),
        } => {
            if let Some(off) = resolve_word(m, st) {
                kill_val(st, off);
                if *w == Width::W64 {
                    if let Operand::Reg(s) = src {
                        if s.width == Width::W64 {
                            st.entry(s.gpr.index()).or_default().insert(Fact::Val(off));
                        }
                    }
                }
            } else {
                kill_all_alloca_vals(st, fm);
            }
            Action::Keep
        }
        // Other register writes through mov (imm loads, narrow movs).
        Inst::Mov {
            dst: Operand::Reg(r),
            ..
        } => {
            kill_reg(st, r.gpr);
            Action::Keep
        }
        Inst::Lea { mem, dst } => {
            if let Some(off) = direct_slot(mem) {
                st.insert(dst.gpr.index(), BTreeSet::from([Fact::Addr(off)]));
            } else {
                kill_reg(st, dst.gpr);
            }
            Action::Keep
        }
        // The branch-materialisation re-test of a frame word: compare
        // the holding register instead, enabling fusion and freeing the
        // slot store for elimination.
        Inst::Cmp {
            w: Width::W64,
            src: Operand::Imm(i),
            dst: Operand::Mem(m),
        } => {
            if let Some(off) = resolve_word(m, st) {
                if let Some(h) = holder_of(st, off) {
                    return Action::Replace(Inst::Cmp {
                        w: Width::W64,
                        src: Operand::Imm(*i),
                        dst: Operand::Reg(Reg::q(h)),
                    });
                }
            }
            Action::Keep
        }
        Inst::Call { .. } => {
            st.clear();
            Action::Keep
        }
        Inst::Push { .. } => Action::Keep, // writes below the frame
        Inst::Pop {
            dst: Operand::Reg(r),
        } => {
            kill_reg(st, r.gpr);
            Action::Keep
        }
        // Reads (cmp/test/idiv sources, jumps, ret) change nothing.
        Inst::Cmp { .. } | Inst::Test { .. } | Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Ret => {
            Action::Keep
        }
        other => {
            for g in other.gprs_written() {
                kill_reg(st, g);
            }
            // The only remaining memory writers (no SIMD instruction
            // stores to memory in this machine): drop every value fact.
            if matches!(
                other,
                Inst::Alu {
                    dst: Operand::Mem(_),
                    ..
                } | Inst::Unary {
                    dst: Operand::Mem(_),
                    ..
                } | Inst::Shift {
                    dst: Operand::Mem(_),
                    ..
                } | Inst::Setcc {
                    dst: Operand::Mem(_),
                    ..
                } | Inst::Pop {
                    dst: Operand::Mem(_)
                }
            ) {
                kill_all_vals(st);
            }
            Action::Keep
        }
    }
}

/// Runs the forward available-loads dataflow to its fixpoint and
/// returns the converged entry facts per block (`None` = unreachable).
fn converged_entry_facts(f: &AsmFunction, fm: &FuncMeta) -> Vec<Option<Facts>> {
    let cfg = Cfg::build(f);
    let n = f.blocks.len();
    let mut ins: Vec<Option<Facts>> = vec![None; n];
    let mut outs: Vec<Option<Facts>> = vec![None; n];
    if n == 0 {
        return ins;
    }
    ins[0] = Some(Facts::new());
    loop {
        let mut changed = false;
        for bi in 0..n {
            let mut inb = if bi == 0 {
                Some(Facts::new())
            } else {
                let mut acc: Option<Facts> = None;
                for &p in &cfg.preds[bi] {
                    if let Some(po) = &outs[p] {
                        acc = Some(match acc {
                            None => po.clone(),
                            Some(a) => meet(&a, po),
                        });
                    }
                }
                acc
            };
            // A block both unreachable and predecessor-less stays ⊤.
            if inb != ins[bi] {
                std::mem::swap(&mut ins[bi], &mut inb);
                changed = true;
            }
            let outb = ins[bi].clone().map(|mut st| {
                for ai in &f.blocks[bi].insts {
                    let _ = step(&mut st, &ai.inst, fm);
                }
                st
            });
            if outb != outs[bi] {
                outs[bi] = outb;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    ins
}

fn forward_available_loads(f: &mut AsmFunction, fm: &FuncMeta) -> (usize, usize) {
    let ins = converged_entry_facts(f, fm);
    // Rewrite with the converged entry facts.
    let mut forwarded = 0;
    let mut removed = 0;
    for (entry, block) in ins.iter().zip(f.blocks.iter_mut()) {
        let Some(mut st) = entry.clone() else {
            continue;
        };
        let mut keep = Vec::with_capacity(block.insts.len());
        for mut ai in block.insts.drain(..) {
            match step(&mut st, &ai.inst, fm) {
                Action::Keep => keep.push(ai),
                Action::Delete => removed += 1,
                Action::Replace(inst) => {
                    ai.inst = inst;
                    forwarded += 1;
                    keep.push(ai);
                }
            }
        }
        block.insts = keep;
    }
    (forwarded, removed)
}

// ---------------------------------------------------------------------
// Local value numbering (shadow-computation CSE)
// ---------------------------------------------------------------------

/// Interned expression: `(tag, sub-opcode, operand vn, operand vn)`.
/// Sub-opcodes are the fieldless-enum discriminants, so equal keys mean
/// identical computations over identical values.
type ExprKey = (u8, u64, u64, u64);

const TAG_ALU: u8 = 1;
const TAG_IMUL: u8 = 2;
const TAG_SHIFT: u8 = 3;
const TAG_UNARY: u8 = 4;
const TAG_MOVZX8: u8 = 5;

/// Block-local value-numbering state.  Value numbers are immutable
/// names for runtime values; `reg64`/`reg8` say which number each
/// register currently holds (full 64-bit content / low byte), and
/// `table` interns expressions over numbers, so a hit means the
/// instruction recomputes a value some register may still hold.
#[derive(Clone, Default)]
struct Lvn {
    next: u64,
    reg64: BTreeMap<usize, u64>,
    reg8: BTreeMap<usize, u64>,
    imm: BTreeMap<i64, u64>,
    table: BTreeMap<ExprKey, u64>,
    /// Contents of tracked frame slots (see [`FuncMeta::tracked`]:
    /// result/argument spill words, never address-taken, so no indirect
    /// store or callee can alias them).  This is what lets the
    /// numbering follow a value through its slot round-trip — the
    /// backend spills every MIR result, so without it each reload
    /// would mint a fresh number and no recomputation would ever match.
    slot: BTreeMap<i64, u64>,
}

impl Lvn {
    fn fresh(&mut self) -> u64 {
        self.next += 1;
        self.next
    }

    /// The 64-bit content number of `g`, minting one if unknown.
    fn vn64(&mut self, g: Gpr) -> u64 {
        if let Some(&v) = self.reg64.get(&g.index()) {
            v
        } else {
            let v = self.fresh();
            self.reg64.insert(g.index(), v);
            v
        }
    }

    /// The low-byte content number of `g`, minting one if unknown.
    fn vn8(&mut self, g: Gpr) -> u64 {
        if let Some(&v) = self.reg8.get(&g.index()) {
            v
        } else {
            let v = self.fresh();
            self.reg8.insert(g.index(), v);
            v
        }
    }

    /// Value number of a 64-bit ALU operand (`None` for memory).
    fn operand64(&mut self, op: &Operand) -> Option<u64> {
        match op {
            Operand::Reg(r) if r.width == Width::W64 => Some(self.vn64(r.gpr)),
            Operand::Imm(i) => {
                if let Some(&v) = self.imm.get(i) {
                    Some(v)
                } else {
                    let v = self.fresh();
                    self.imm.insert(*i, v);
                    Some(v)
                }
            }
            _ => None,
        }
    }

    /// Interns `key`, returning `(vn, was_known)`.
    fn intern(&mut self, key: ExprKey) -> (u64, bool) {
        if let Some(&v) = self.table.get(&key) {
            (v, true)
        } else {
            let v = self.fresh();
            self.table.insert(key, v);
            (v, false)
        }
    }

    /// The lowest-indexed register whose full 64 bits hold `v`.
    fn holder64(&self, v: u64) -> Option<Gpr> {
        self.reg64
            .iter()
            .find(|(_, &x)| x == v)
            .map(|(&gi, _)| ALL_GPRS[gi])
    }

    /// The lowest-offset tracked slot whose word holds `v`.
    fn slot_holder(&self, v: u64) -> Option<i64> {
        self.slot
            .iter()
            .find(|(_, &x)| x == v)
            .map(|(&off, _)| off)
    }

    fn kill(&mut self, g: Gpr) {
        self.reg64.remove(&g.index());
        self.reg8.remove(&g.index());
    }

    /// Seeds register numbers from the forwarding pass's converged
    /// entry facts.  All facts one register carries name the same
    /// runtime value, so registers whose fact sets overlap hold equal
    /// values and must share a number — this is what carries
    /// master/shadow equality across block boundaries (e.g. a
    /// loop-carried IR-EDDI shadow whose reload was collapsed in the
    /// loop header).
    fn seed_from_facts(&mut self, facts: &Facts) {
        let mut fact_vn: BTreeMap<Fact, u64> = BTreeMap::new();
        for (&gi, fs) in facts {
            let mut found: Vec<u64> = fs.iter().filter_map(|f| fact_vn.get(f).copied()).collect();
            found.sort_unstable();
            found.dedup();
            let v = match found.first() {
                Some(&v) => v,
                None => self.fresh(),
            };
            if found.len() > 1 {
                // Transitive merge: this register proves several
                // previously separate classes equal.
                for x in fact_vn.values_mut() {
                    if found.contains(x) {
                        *x = v;
                    }
                }
                for x in self.reg64.values_mut() {
                    if found.contains(x) {
                        *x = v;
                    }
                }
                for x in self.slot.values_mut() {
                    if found.contains(x) {
                        *x = v;
                    }
                }
            }
            for f in fs {
                fact_vn.insert(*f, v);
                // `Val(off)` means the register equals the slot's
                // current word, so the slot holds the same value.
                if let Fact::Val(off) = f {
                    self.slot.insert(*off, v);
                }
            }
            self.reg64.insert(gi, v);
        }
    }

    /// Records a full-width definition of `g` as value `v`.
    fn def64(&mut self, g: Gpr, v: u64) {
        self.reg64.insert(g.index(), v);
        self.reg8.remove(&g.index());
    }
}

fn reads_flags(inst: &Inst) -> bool {
    matches!(inst, Inst::Jcc { .. } | Inst::Setcc { .. })
}

fn alu_commutes(op: ferrum_asm::inst::AluOp) -> bool {
    use ferrum_asm::inst::AluOp;
    matches!(op, AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor)
}

/// Transfers one instruction over the value-numbering state and
/// decides its rewrite.  Replacing an ALU instruction with a copy also
/// removes its flags write, so ALU rewrites additionally require
/// `flags_dead` (no consumer before the next flags writer).
fn cse_step(s: &mut Lvn, inst: &Inst, fm: &FuncMeta, flags_dead: bool) -> Action {
    use ferrum_asm::inst::ShiftAmount;
    match inst {
        // 64-bit reload of a tracked frame slot: the slot's content
        // number (if any) flows into the register; a register already
        // holding it turns the load into a copy.
        Inst::Mov {
            w: Width::W64,
            src: Operand::Mem(m),
            dst: Operand::Reg(r),
        } if r.width == Width::W64
            && direct_slot(m).is_some_and(|off| fm.tracked.contains(&off)) =>
        {
            let off = direct_slot(m).expect("guard");
            if let Some(&v) = s.slot.get(&off) {
                if s.reg64.get(&r.gpr.index()) == Some(&v) {
                    return Action::Delete;
                }
                let holder = s.holder64(v);
                s.def64(r.gpr, v);
                if let Some(h) = holder {
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Reg(Reg::q(h)),
                        dst: Operand::Reg(Reg::q(r.gpr)),
                    });
                }
            } else {
                let v = s.fresh();
                s.slot.insert(off, v);
                s.def64(r.gpr, v);
            }
            Action::Keep
        }
        // 64-bit register copy: both content numbers propagate.
        Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(sr),
            dst: Operand::Reg(dr),
        } if sr.width == Width::W64 && dr.width == Width::W64 => {
            let v = s.vn64(sr.gpr);
            s.reg64.insert(dr.gpr.index(), v);
            match s.reg8.get(&sr.gpr.index()).copied() {
                Some(b) => {
                    s.reg8.insert(dr.gpr.index(), b);
                }
                None => {
                    s.reg8.remove(&dr.gpr.index());
                }
            }
            Action::Keep
        }
        // Constant materialisation: equal immediates are equal values.
        Inst::Mov {
            w: Width::W64,
            src: Operand::Imm(i),
            dst: Operand::Reg(dr),
        } if dr.width == Width::W64 => {
            let v = s.operand64(&Operand::Imm(*i)).expect("imm interns");
            s.def64(dr.gpr, v);
            Action::Keep
        }
        // Byte copy: writes the low byte only, so the 64-bit content
        // number dies but the byte number propagates.
        Inst::Mov {
            w: Width::W8,
            src: Operand::Reg(sr),
            dst: Operand::Reg(dr),
        } if sr.width == Width::W8 && dr.width == Width::W8 => {
            s.reg64.remove(&dr.gpr.index());
            let b = s.vn8(sr.gpr);
            s.reg8.insert(dr.gpr.index(), b);
            Action::Keep
        }
        // Any other register-writing mov (loads, narrow widths).
        Inst::Mov {
            dst: Operand::Reg(r),
            ..
        } => {
            s.kill(r.gpr);
            Action::Keep
        }
        // Stores don't touch register contents, but a direct store
        // redefines its slot's content number.  Indirect stores cannot
        // alias tracked slots (never address-taken), so the map only
        // ever holds tracked offsets and needs no other invalidation.
        Inst::Mov {
            w,
            src,
            dst: Operand::Mem(m),
        } => {
            if let Some(off) = direct_slot(m) {
                s.slot.remove(&off);
                if *w == Width::W64 && fm.tracked.contains(&off) {
                    match src {
                        Operand::Reg(sr) if sr.width == Width::W64 => {
                            let v = s.vn64(sr.gpr);
                            s.slot.insert(off, v);
                        }
                        Operand::Imm(i) => {
                            let v = s.operand64(&Operand::Imm(*i)).expect("imm interns");
                            s.slot.insert(off, v);
                        }
                        _ => {}
                    }
                }
            }
            Action::Keep
        }
        Inst::Mov { .. } => Action::Keep,
        // Boolean widening: the canonical second half of the lowered
        // `setcc; movzx` materialisation.
        Inst::Movzx {
            src_w: Width::W8,
            dst_w: Width::W64,
            src: Operand::Reg(sr),
            dst,
        } if sr.width == Width::W8 => {
            let b = s.vn8(sr.gpr);
            let (v, known) = s.intern((TAG_MOVZX8, 0, b, 0));
            let holder = s.holder64(v);
            s.reg64.insert(dst.gpr.index(), v);
            // Zero-extension preserves the low byte.
            s.reg8.insert(dst.gpr.index(), b);
            if known {
                if let Some(h) = holder {
                    if h == dst.gpr {
                        return Action::Delete;
                    }
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Reg(Reg::q(h)),
                        dst: Operand::Reg(Reg::q(dst.gpr)),
                    });
                }
                if let Some(off) = s.slot_holder(v) {
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, off)),
                        dst: Operand::Reg(Reg::q(dst.gpr)),
                    });
                }
            }
            Action::Keep
        }
        Inst::Movzx { dst, .. } | Inst::Movsx { dst, .. } => {
            s.kill(dst.gpr);
            Action::Keep
        }
        // Two-operand ALU over known values.
        Inst::Alu {
            op,
            w: Width::W64,
            src,
            dst: Operand::Reg(r),
        } if r.width == Width::W64 => {
            let a = s.vn64(r.gpr);
            let Some(b) = s.operand64(src) else {
                s.kill(r.gpr);
                return Action::Keep;
            };
            let (x, y) = if alu_commutes(*op) && b < a { (b, a) } else { (a, b) };
            let (v, known) = s.intern((TAG_ALU, *op as u64, x, y));
            let holder = s.holder64(v);
            s.def64(r.gpr, v);
            if known && flags_dead {
                if let Some(h) = holder {
                    if h == r.gpr {
                        return Action::Delete;
                    }
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Reg(Reg::q(h)),
                        dst: Operand::Reg(Reg::q(r.gpr)),
                    });
                }
                if let Some(off) = s.slot_holder(v) {
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, off)),
                        dst: Operand::Reg(Reg::q(r.gpr)),
                    });
                }
            }
            Action::Keep
        }
        Inst::Imul {
            w: Width::W64,
            src,
            dst,
        } if dst.width == Width::W64 => {
            let a = s.vn64(dst.gpr);
            let Some(b) = s.operand64(src) else {
                s.kill(dst.gpr);
                return Action::Keep;
            };
            let (x, y) = if b < a { (b, a) } else { (a, b) };
            let (v, known) = s.intern((TAG_IMUL, 0, x, y));
            let holder = s.holder64(v);
            s.def64(dst.gpr, v);
            if known && flags_dead {
                if let Some(h) = holder {
                    if h == dst.gpr {
                        return Action::Delete;
                    }
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Reg(Reg::q(h)),
                        dst: Operand::Reg(Reg::q(dst.gpr)),
                    });
                }
                if let Some(off) = s.slot_holder(v) {
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, off)),
                        dst: Operand::Reg(Reg::q(dst.gpr)),
                    });
                }
            }
            Action::Keep
        }
        Inst::Shift {
            op,
            w: Width::W64,
            amount: ShiftAmount::Imm(k),
            dst: Operand::Reg(r),
        } if r.width == Width::W64 => {
            let a = s.vn64(r.gpr);
            let (v, known) = s.intern((TAG_SHIFT, (*op as u64) << 8 | u64::from(*k), a, 0));
            let holder = s.holder64(v);
            s.def64(r.gpr, v);
            if known && flags_dead {
                if let Some(h) = holder {
                    if h == r.gpr {
                        return Action::Delete;
                    }
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Reg(Reg::q(h)),
                        dst: Operand::Reg(Reg::q(r.gpr)),
                    });
                }
                if let Some(off) = s.slot_holder(v) {
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, off)),
                        dst: Operand::Reg(Reg::q(r.gpr)),
                    });
                }
            }
            Action::Keep
        }
        Inst::Unary {
            op,
            w: Width::W64,
            dst: Operand::Reg(r),
        } if r.width == Width::W64 => {
            let a = s.vn64(r.gpr);
            let (v, known) = s.intern((TAG_UNARY, *op as u64, a, 0));
            let holder = s.holder64(v);
            s.def64(r.gpr, v);
            if known && flags_dead {
                if let Some(h) = holder {
                    if h == r.gpr {
                        return Action::Delete;
                    }
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Reg(Reg::q(h)),
                        dst: Operand::Reg(Reg::q(r.gpr)),
                    });
                }
                if let Some(off) = s.slot_holder(v) {
                    return Action::Replace(Inst::Mov {
                        w: Width::W64,
                        src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, off)),
                        dst: Operand::Reg(Reg::q(r.gpr)),
                    });
                }
            }
            Action::Keep
        }
        // Flag materialisation is deliberately NOT value-numbered: a
        // duplicated `cmp; setcc` chain could collapse into a byte
        // copy, but rewriting flag producers/consumers is the business
        // of the dedicated fusion pass, which has the strict adjacency
        // conditions x86 flags semantics demand.  `cmp`/`test` only
        // read registers, so they leave the state untouched.
        Inst::Cmp { .. } | Inst::Test { .. } => Action::Keep,
        Inst::Setcc {
            dst: Operand::Reg(r),
            ..
        } => {
            s.kill(r.gpr);
            Action::Keep
        }
        Inst::Call { .. } => {
            s.reg64.clear();
            s.reg8.clear();
            Action::Keep
        }
        Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Ret | Inst::Push { .. } => Action::Keep,
        other => {
            // Any remaining direct frame write invalidates its slot
            // entry (read-modify-write ALU forms, setcc/pop to memory).
            if let Inst::Alu {
                dst: Operand::Mem(m),
                ..
            }
            | Inst::Unary {
                dst: Operand::Mem(m),
                ..
            }
            | Inst::Shift {
                dst: Operand::Mem(m),
                ..
            }
            | Inst::Setcc {
                dst: Operand::Mem(m),
                ..
            }
            | Inst::Pop {
                dst: Operand::Mem(m),
            } = other
            {
                if let Some(off) = direct_slot(m) {
                    s.slot.remove(&off);
                }
            }
            for g in other.gprs_written() {
                s.kill(g);
            }
            Action::Keep
        }
    }
}

/// Runs block-local value numbering over every block, rewriting proven
/// recomputations into register copies.  Returns
/// `(rewritten, deleted)`.
fn cse_local(f: &mut AsmFunction, fm: &FuncMeta) -> (usize, usize) {
    let entry = converged_entry_facts(f, fm);
    let cfg = Cfg::build(f);
    // Whether a block consumes flags before writing them — backend
    // output never does (flags producers and consumers are adjacent),
    // but compute it so end-of-block flags deadness stays sound.
    let entry_reads_flags: Vec<bool> = f
        .blocks
        .iter()
        .map(|b| {
            for ai in &b.insts {
                if reads_flags(&ai.inst) {
                    return true;
                }
                if ai.inst.writes_flags() {
                    return false;
                }
            }
            false
        })
        .collect();
    let mut rewritten = 0;
    let mut deleted = 0;
    // Extended-basic-block scope: a block with a single already-numbered
    // predecessor inherits that predecessor's exit state wholesale.  The
    // IR-level EDDI pass splits blocks at every check, so the master and
    // its shadow routinely land on opposite sides of a check-continuation
    // edge; those continuation blocks have exactly one predecessor and
    // the carried state keeps the master/shadow value chain visible.
    let mut exit: Vec<Option<Lvn>> = vec![None; f.blocks.len()];
    for bi in 0..f.blocks.len() {
        let n = f.blocks[bi].insts.len();
        // flags_dead[i]: no instruction after i consumes the flags
        // that are live right after i.
        let mut flags_dead = vec![false; n];
        let mut dead = !cfg.succs[bi].iter().any(|&sb| entry_reads_flags[sb]);
        for i in (0..n).rev() {
            flags_dead[i] = dead;
            let inst = &f.blocks[bi].insts[i].inst;
            if inst.writes_flags() {
                dead = true;
            } else if reads_flags(inst) {
                dead = false;
            }
        }
        let inherited = match cfg.preds[bi].as_slice() {
            [p] if *p < bi => exit[*p].clone(),
            _ => None,
        };
        let mut lvn = match inherited {
            Some(state) => state,
            None => {
                let mut fresh = Lvn::default();
                if let Some(facts) = &entry[bi] {
                    fresh.seed_from_facts(facts);
                }
                fresh
            }
        };
        let actions: Vec<Action> = f.blocks[bi]
            .insts
            .iter()
            .enumerate()
            .map(|(i, ai)| cse_step(&mut lvn, &ai.inst, fm, flags_dead[i]))
            .collect();
        exit[bi] = Some(lvn);
        let block = &mut f.blocks[bi];
        let mut keep = Vec::with_capacity(n);
        for (mut ai, action) in block.insts.drain(..).zip(actions) {
            match action {
                Action::Keep => keep.push(ai),
                Action::Delete => deleted += 1,
                Action::Replace(inst) => {
                    ai.inst = inst;
                    rewritten += 1;
                    keep.push(ai);
                }
            }
        }
        block.insts = keep;
    }
    (rewritten, deleted)
}

// ---------------------------------------------------------------------
// Cmp/branch fusion
// ---------------------------------------------------------------------

/// One fusable chain: the re-test at `test_pos`, the `jcc` right after
/// it, and the boolean-materialisation instructions to delete.
struct FusionPlan {
    block: usize,
    jcc_pos: usize,
    cc: Cc,
    delete: Vec<usize>,
}

fn fuse_compare_branches(f: &mut AsmFunction) -> (usize, usize) {
    let cfg = Cfg::build(f);
    let lv = Liveness::compute(f, &cfg);
    let mut plans = Vec::new();
    for bi in 0..f.blocks.len() {
        let after = lv.live_after_each(f, bi);
        if let Some(plan) = find_fusion(f, bi, &after) {
            plans.push(plan);
        }
    }
    let fused = plans.len();
    let mut deleted = 0;
    for plan in plans {
        let block = &mut f.blocks[plan.block];
        if let Inst::Jcc { cc, .. } = &mut block.insts[plan.jcc_pos].inst {
            *cc = plan.cc;
        }
        let del: BTreeSet<usize> = plan.delete.iter().copied().collect();
        deleted += del.len();
        let mut i = 0;
        block.insts.retain(|_| {
            let keep = !del.contains(&i);
            i += 1;
            keep
        });
    }
    (fused, deleted)
}

/// Finds the `…; setcc cc; movzx; [mov]*; test/cmp0; jcc ne` chain in
/// block `bi` and checks every side condition:
///
/// * the traced defs form exactly the boolean-materialisation shape;
/// * no non-chain instruction reads a chain register inside its
///   def-to-consumer window, so the chain can be deleted whole
///   (leaving a partial chain would put GPR sites between the compare
///   and the fused `jcc`, which the hybrid baseline's checker cannot
///   protect without clobbering live flags);
/// * no non-chain instruction between the `setcc` and the `jcc` writes
///   flags, so the fused `jcc` observes exactly the flags the `setcc`
///   encoded;
/// * every chain register is dead after the `jcc` on all paths.
fn find_fusion(f: &AsmFunction, bi: usize, live_after: &[u128]) -> Option<FusionPlan> {
    let insts = &f.blocks[bi].insts;
    // Locate `test r, r` or `cmp $0, r` immediately before a `jcc ne`.
    let (t, j, tested) = insts.iter().enumerate().find_map(|(j, ai)| {
        if !matches!(&ai.inst, Inst::Jcc { cc: Cc::Ne, .. }) || j == 0 {
            return None;
        }
        let t = j - 1;
        let tested = match &insts[t].inst {
            Inst::Test {
                w: Width::W64,
                src: Operand::Reg(a),
                dst: Operand::Reg(b),
            } if a.gpr == b.gpr && a.width == Width::W64 => Some(a.gpr),
            Inst::Cmp {
                w: Width::W64,
                src: Operand::Imm(0),
                dst: Operand::Reg(r),
            } if r.width == Width::W64 => Some(r.gpr),
            _ => None,
        };
        tested.map(|g| (t, j, g))
    })?;

    // Trace the boolean's defining chain backwards.
    let mut delete = vec![t];
    let mut chain_regs = vec![tested];
    let mut links: Vec<(usize, usize, Gpr)> = Vec::new(); // (def, consumer, reg)
    let mut cur = tested;
    let mut consumer = t;
    let (setcc_pos, cc) = loop {
        let def = (0..consumer)
            .rev()
            .find(|&k| inst_kills(&insts[k].inst) & reg_bytes(cur) != 0)?;
        links.push((def, consumer, cur));
        delete.push(def);
        match &insts[def].inst {
            Inst::Setcc {
                cc,
                dst: Operand::Reg(r),
            } if r.gpr == cur => break (def, *cc),
            Inst::Movzx {
                src_w: Width::W8,
                dst_w: Width::W64,
                src: Operand::Reg(s),
                dst,
            } if dst.gpr == cur => {
                cur = s.gpr;
                chain_regs.push(cur);
                consumer = def;
            }
            Inst::Mov {
                w: Width::W64,
                src: Operand::Reg(s),
                dst: Operand::Reg(d),
            } if d.gpr == cur && s.width == Width::W64 => {
                cur = s.gpr;
                chain_regs.push(cur);
                consumer = def;
            }
            _ => return None,
        }
    };

    let in_delete = |q: usize| delete.contains(&q);
    // Everything between the setcc and the jcc must be chain (and thus
    // deleted): the fused `jcc` has to land immediately after the
    // original compare, because FERRUM's deferred-flags scheme (§III-B2)
    // and the hybrid baseline's checker both require a flags producer's
    // consumer to be adjacent.
    for q in setcc_pos + 1..j {
        if !in_delete(q) {
            return None;
        }
    }
    // No non-chain reads of a chain register inside its window.
    for &(def, cons, g) in &links {
        for (q, ai) in insts.iter().enumerate().take(cons).skip(def + 1) {
            if !in_delete(q) && inst_reads(&ai.inst) & reg_bytes(g) != 0 {
                return None;
            }
        }
    }
    // No surviving flag writer between the setcc and the jcc.
    for (q, ai) in insts.iter().enumerate().take(j).skip(setcc_pos + 1) {
        if !in_delete(q) && ai.inst.writes_flags() {
            return None;
        }
    }
    // Chain registers must be dead after the branch on every path.
    for &g in &chain_regs {
        if live_after[j] & reg_bytes(g) != 0 {
            return None;
        }
    }
    Some(FusionPlan {
        block: bi,
        jcc_pos: j,
        cc,
        delete,
    })
}

// ---------------------------------------------------------------------
// Dead-store elimination
// ---------------------------------------------------------------------

/// Accesses one instruction makes to directly addressed frame words.
enum SlotAccess {
    /// A full-width overwrite of one slot.
    PureWrite(i64),
    /// Reads (possibly several: both operands can be memory-free; the
    /// vector is usually empty).
    Reads(Vec<i64>),
}

fn slot_access(inst: &Inst) -> SlotAccess {
    if let Inst::Mov {
        w: Width::W64,
        src,
        dst: Operand::Mem(m),
    } = inst
    {
        let full_src = match src {
            Operand::Reg(r) => r.width == Width::W64,
            Operand::Imm(_) => true,
            Operand::Mem(_) => false,
        };
        if full_src {
            if let Some(off) = direct_slot(m) {
                return SlotAccess::PureWrite(off);
            }
        }
    }
    // Everything else: any direct-slot memory operand counts as a read
    // (including RMW destinations and `lea`, conservatively).
    let mut reads = Vec::new();
    let mut note = |m: &MemRef| {
        if let Some(off) = direct_slot(m) {
            reads.push(off);
        }
    };
    match inst {
        Inst::Mov { src, dst, .. }
        | Inst::Alu { src, dst, .. }
        | Inst::Cmp { src, dst, .. }
        | Inst::Test { src, dst, .. } => {
            if let Operand::Mem(m) = src {
                note(m);
            }
            if let Operand::Mem(m) = dst {
                note(m);
            }
        }
        Inst::Movsx { src, .. } | Inst::Movzx { src, .. } => {
            if let Operand::Mem(m) = src {
                note(m);
            }
        }
        Inst::Imul { src, .. } | Inst::Idiv { src, .. } | Inst::Push { src, .. } => {
            if let Operand::Mem(m) = src {
                note(m);
            }
        }
        Inst::Lea { mem, .. } => note(mem),
        Inst::Shift { dst, .. } | Inst::Unary { dst, .. } | Inst::Setcc { dst, .. } | Inst::Pop { dst } => {
            if let Operand::Mem(m) = dst {
                note(m);
            }
        }
        _ => {
            // SIMD loads/stores and control flow: SIMD memory operands
            // address batch buffers through registers, never direct
            // slots; if one ever did, the operand patterns above would
            // need extending. Conservatively scan via reg_masks-free
            // variants is unnecessary for backend output.
        }
    }
    SlotAccess::Reads(reads)
}

fn eliminate_dead_stores(f: &mut AsmFunction, fm: &FuncMeta) -> usize {
    let cfg = Cfg::build(f);
    let n = f.blocks.len();
    // Backward fixpoint over live tracked slots.
    let transfer = |bi: usize, out: &BTreeSet<i64>| -> BTreeSet<i64> {
        let mut live = out.clone();
        for ai in f.blocks[bi].insts.iter().rev() {
            match slot_access(&ai.inst) {
                SlotAccess::PureWrite(off) => {
                    live.remove(&off);
                }
                SlotAccess::Reads(rs) => {
                    for off in rs {
                        if fm.tracked.contains(&off) {
                            live.insert(off);
                        }
                    }
                }
            }
        }
        live
    };
    let mut live_in: Vec<BTreeSet<i64>> = vec![BTreeSet::new(); n];
    loop {
        let mut changed = false;
        for bi in (0..n).rev() {
            let mut out = BTreeSet::new();
            for &s in &cfg.succs[bi] {
                out.extend(live_in[s].iter().copied());
            }
            let inn = transfer(bi, &out);
            if inn != live_in[bi] {
                live_in[bi] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Delete dead stores with the converged facts.
    let mut removed = 0;
    for bi in 0..n {
        let mut live = BTreeSet::new();
        for &s in &cfg.succs[bi] {
            live.extend(live_in[s].iter().copied());
        }
        let block = &mut f.blocks[bi];
        let mut dead = Vec::new();
        for (i, ai) in block.insts.iter().enumerate().rev() {
            match slot_access(&ai.inst) {
                SlotAccess::PureWrite(off) => {
                    if fm.tracked.contains(&off) && !live.contains(&off) {
                        dead.push(i);
                    } else {
                        live.remove(&off);
                    }
                }
                SlotAccess::Reads(rs) => {
                    for off in rs {
                        if fm.tracked.contains(&off) {
                            live.insert(off);
                        }
                    }
                }
            }
        }
        removed += dead.len();
        let del: BTreeSet<usize> = dead.into_iter().collect();
        let mut i = 0;
        block.insts.retain(|_| {
            let keep = !del.contains(&i);
            i += 1;
            keep
        });
    }
    removed
}

// ---------------------------------------------------------------------
// Dead-code sweep
// ---------------------------------------------------------------------

/// Registers written by a deletable instruction, with the kill width —
/// `None` when the instruction has side effects (flags, memory,
/// control) and must stay.
fn dce_candidate(inst: &Inst) -> Option<u128> {
    match inst {
        Inst::Mov {
            w,
            dst: Operand::Reg(r),
            ..
        } => Some(ferrum_asm::analysis::liveness::kill_bytes(r.gpr, *w)),
        Inst::Movsx { dst_w, dst, .. } | Inst::Movzx { dst_w, dst, .. } => {
            Some(ferrum_asm::analysis::liveness::kill_bytes(dst.gpr, *dst_w))
        }
        Inst::Lea { dst, .. } => Some(ferrum_asm::analysis::liveness::kill_bytes(
            dst.gpr,
            Width::W64,
        )),
        Inst::Setcc {
            dst: Operand::Reg(r),
            ..
        } => Some(ferrum_asm::analysis::liveness::kill_bytes(r.gpr, Width::W8)),
        _ => None,
    }
}

fn sweep_dead_code(f: &mut AsmFunction) -> usize {
    let mut removed = 0;
    loop {
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        let mut any = false;
        for bi in 0..f.blocks.len() {
            let after = lv.live_after_each(f, bi);
            let block = &mut f.blocks[bi];
            let del: BTreeSet<usize> = block
                .insts
                .iter()
                .enumerate()
                .filter(|(i, ai)| {
                    dce_candidate(&ai.inst).is_some_and(|kill| after[*i] & kill == 0)
                })
                .map(|(i, _)| i)
                .collect();
            if del.is_empty() {
                continue;
            }
            any = true;
            removed += del.len();
            let mut i = 0;
            block.insts.retain(|_| {
                let keep = !del.contains(&i);
                i += 1;
                keep
            });
        }
        if !any {
            return removed;
        }
    }
}
