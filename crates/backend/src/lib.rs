//! # ferrum-backend — the MIR → assembly compiler
//!
//! A deliberately `-O0`-flavoured backend in the style of Clang without
//! optimisations, matching the code shapes in the FERRUM paper's
//! listings: every MIR value lives in an `%rbp`-relative 8-byte frame
//! slot, every instruction reloads its operands, and synchronisation
//! points (stores, branches, calls, returns) are lowered with explicit
//! *glue* instructions that have no IR counterpart:
//!
//! * branch materialisation: `cmpq $0, slot` + `jne`/`jmp` (Figs. 8–9 of
//!   the paper — the flags written here are invisible at IR level),
//! * store staging: reloading the value and address into registers after
//!   any IR-level check has already run,
//! * call glue: argument and return-value marshalling,
//! * frame setup: prologue/epilogue.
//!
//! Each emitted instruction carries a [`ferrum_asm::Provenance`] tag, so
//! fault-injection campaigns can attribute silent data corruptions to
//! backend-generated code — reproducing the paper's root-cause analysis
//! of why IR-level EDDI loses ~28% coverage (§IV-B1).
//!
//! The backend intentionally allocates from a small register set
//! (`%rax`, `%rcx`, `%rdx`, `%rdi`, plus argument registers around
//! calls), leaving `%rbx` and `%r10`–`%r15` and all XMM registers spare:
//! exactly the resource slack FERRUM's scanner discovers and exploits
//! (§III-B1).
//!
//! [`peephole`] implements the "other compiler-level transformations"
//! the paper folds into FERRUM: redundant-reload elimination and jump
//! threading, run on assembly before protection.
//!
//! The naive shape above is the [`opt::OptLevel::O0`] default.  At
//! [`opt::OptLevel::O1`] ([`compile_opt`]) the backend additionally runs
//! linear-scan register allocation ([`regalloc`], driven by
//! `ferrum_mir::liveness::MirLiveness`) and a global assembly pass
//! bundle ([`opt`]): available-loads forwarding, cmp/branch fusion,
//! dead-store elimination, and a dead-code sweep.  That pipeline is what
//! makes IR-level duplication decay after lowering — the paper's second
//! root cause — measurable at realistic strength.
//!
//! ## Example
//!
//! ```
//! use ferrum_mir::builder::FunctionBuilder;
//! use ferrum_mir::module::Module;
//! use ferrum_mir::types::Ty;
//!
//! let mut b = FunctionBuilder::new("main", &[], None);
//! let v = b.iconst(Ty::I64, 7);
//! b.print(v);
//! b.ret(None);
//! let module = Module::from_functions(vec![b.finish()]);
//! let asm = ferrum_backend::compile(&module).expect("compiles");
//! assert!(asm.function("main").is_some());
//! ```

pub mod frame;
pub mod lower;
pub mod opt;
pub mod peephole;
pub mod regalloc;

pub use frame::Frame;
pub use lower::{compile, compile_opt, compile_with_stats, CompileError};
pub use opt::{OptLevel, PassStats, ProgramMeta};
