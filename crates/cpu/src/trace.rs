//! Execution tracing: a bounded per-instruction record of what ran and
//! what it wrote — the tool you want when a protection pass misbehaves
//! ("which check fired, and what did the duplicate hold?").

use ferrum_asm::inst::DestClass;
use ferrum_asm::printer::print_inst;
use ferrum_asm::provenance::Provenance;

use crate::exec::{step, State, StepEvent};
use crate::fault::FaultSpec;
use crate::outcome::{RunResult, StopReason};
use crate::run::Cpu;

/// One executed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Position in the dynamic stream.
    pub dyn_index: u64,
    /// Static instruction index in the loaded image.
    pub pc: usize,
    /// Rendered instruction text.
    pub text: String,
    /// Provenance of the instruction.
    pub prov: Provenance,
    /// The 64-bit value left in the destination register, when the
    /// instruction has a plain GPR destination.
    pub wrote: Option<u64>,
}

/// A bounded execution trace plus the run's result.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The recorded entries (at most the configured limit, from the
    /// start of execution).
    pub entries: Vec<TraceEntry>,
    /// The run result.
    pub result: RunResult,
}

impl Trace {
    /// Renders the trace as an annotated listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let wrote = match e.wrote {
                Some(v) => format!(" ; -> {v:#x}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "{:>6}  {:<40} # {}{}\n",
                e.dyn_index, e.text, e.prov, wrote
            ));
        }
        out.push_str(&format!("stop: {}\n", self.result.stop));
        out
    }
}

impl Cpu {
    /// Runs like [`Cpu::run`] while recording up to `limit` trace
    /// entries (from the start of execution; later instructions still
    /// execute, untraced).
    pub fn run_traced(&self, fault: Option<FaultSpec>, limit: usize) -> Trace {
        let image = self.image();
        let mut st = State::new(image);
        let mut entries = Vec::with_capacity(limit.min(4096));
        let mut cycles = 0u64;
        let mut n = 0u64;
        let cost = self.cost_model();
        let step_limit = self.step_limit();
        loop {
            if n >= step_limit {
                return Trace {
                    entries,
                    result: RunResult {
                        stop: StopReason::Timeout,
                        output: st.output,
                        cycles,
                        dyn_insts: n,
                    },
                };
            }
            let pc = st.pc;
            let li = &image.insts[pc];
            let ev = step(image, &mut st);
            cycles += cost.cost_tagged(&li.inst, li.prov);
            if let Some(f) = fault {
                if f.dyn_index == n {
                    crate::exec::apply_fault(&li.inst, f.raw_bit, &mut st);
                }
            }
            if entries.len() < limit {
                let wrote = match li.inst.dest_class() {
                    DestClass::Gpr(r) => Some(st.regs.read64(r.gpr)),
                    _ => None,
                };
                entries.push(TraceEntry {
                    dyn_index: n,
                    pc,
                    text: print_inst(&li.inst),
                    prov: li.prov,
                    wrote,
                });
            }
            n += 1;
            if let StepEvent::Stop(stop) = ev {
                return Trace {
                    entries,
                    result: RunResult {
                        stop,
                        output: st.output,
                        cycles,
                        dyn_insts: n,
                    },
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::inst::Inst;
    use ferrum_asm::operand::Operand;
    use ferrum_asm::program::single_block_main;
    use ferrum_asm::reg::{Gpr, Reg, Width};

    fn demo_cpu() -> Cpu {
        let p = single_block_main(vec![
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Mov {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Operand::Reg(Reg::q(Gpr::Rdi)),
            },
            Inst::Call {
                target: "print_i64".into(),
            },
        ]);
        Cpu::load(&p).unwrap()
    }

    #[test]
    fn trace_records_writes_and_matches_run() {
        let cpu = demo_cpu();
        let trace = cpu.run_traced(None, 100);
        assert_eq!(trace.result, cpu.run(None));
        assert_eq!(trace.entries.len(), trace.result.dyn_insts as usize);
        assert_eq!(trace.entries[0].wrote, Some(7));
        assert_eq!(trace.entries[0].text, "movq $7, %rax");
        assert!(trace.entries.iter().any(|e| e.text.starts_with("call")));
    }

    #[test]
    fn trace_limit_is_respected() {
        let cpu = demo_cpu();
        let trace = cpu.run_traced(None, 2);
        assert_eq!(trace.entries.len(), 2);
        // Execution still ran to completion.
        assert_eq!(trace.result.output, vec![7]);
    }

    #[test]
    fn traced_fault_shows_the_corrupted_value() {
        let cpu = demo_cpu();
        let trace = cpu.run_traced(Some(FaultSpec::new(0, 3)), 100);
        assert_eq!(
            trace.entries[0].wrote,
            Some(7 ^ 8),
            "bit 3 flipped at write-back"
        );
        assert_eq!(trace.result.output, vec![7 ^ 8], "corruption propagates");
    }

    #[test]
    fn render_is_human_readable() {
        let cpu = demo_cpu();
        let text = cpu.run_traced(None, 10).render();
        assert!(text.contains("movq $7, %rax"));
        assert!(text.contains("stop: completed"));
        assert!(text.contains("-> 0x7"));
    }
}
