//! Execution tracing: a bounded per-instruction record of what ran and
//! what it wrote — the tool you want when a protection pass misbehaves
//! ("which check fired, and what did the duplicate hold?").

use std::fmt;

use ferrum_asm::flags::Flags;
use ferrum_asm::inst::{DestClass, Inst};
use ferrum_asm::printer::print_inst;
use ferrum_asm::provenance::Provenance;
use ferrum_asm::reg::{Gpr, Zmm};

use crate::exec::{step, State, StepEvent};
use crate::fault::FaultSpec;
use crate::machine::RegFile;
use crate::outcome::{RunResult, StopReason};
use crate::run::Cpu;

/// The architectural value an instruction left in its destination,
/// captured right after write-back — so an injected fault shows up as
/// the corrupted value, exactly what the destination holds going
/// forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WroteValue {
    /// No recordable destination (stores, branches, push/call glue).
    None,
    /// Plain GPR destination: the full 64-bit register afterwards.
    Gpr(u64),
    /// `idiv` writes the quotient/remainder pair.
    RaxRdx { rax: u64, rdx: u64 },
    /// A flag-writing compare/test: the resulting RFLAGS.
    Flags(Flags),
    /// SIMD destination: the register unit and its value as eight
    /// 64-bit lanes (upper lanes zero for XMM/YMM-width writes).
    Simd { reg: u8, lanes: [u64; 8] },
}

impl WroteValue {
    /// Captures the destination of `inst` from the post-write-back
    /// register file.
    pub fn capture(inst: &Inst, regs: &RegFile) -> WroteValue {
        match inst.dest_class() {
            DestClass::Gpr(r) => WroteValue::Gpr(regs.read64(r.gpr)),
            DestClass::RaxRdxPair(_) => WroteValue::RaxRdx {
                rax: regs.read64(Gpr::Rax),
                rdx: regs.read64(Gpr::Rdx),
            },
            DestClass::Rflags => WroteValue::Flags(regs.flags),
            DestClass::Xmm(x) => WroteValue::Simd {
                reg: x.0,
                lanes: regs.read_zmm(Zmm::new(x.0)),
            },
            DestClass::Ymm(y) => WroteValue::Simd {
                reg: y.0,
                lanes: regs.read_zmm(Zmm::new(y.0)),
            },
            DestClass::Zmm(z) => WroteValue::Simd {
                reg: z.0,
                lanes: regs.read_zmm(z),
            },
            DestClass::None => WroteValue::None,
        }
    }

    /// The plain-GPR value, when that is what was written (the common
    /// case, and all the trace recorded before SIMD/flag capture).
    pub fn gpr(&self) -> Option<u64> {
        match self {
            WroteValue::Gpr(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for WroteValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WroteValue::None => write!(f, "-"),
            WroteValue::Gpr(v) => write!(f, "{v:#x}"),
            WroteValue::RaxRdx { rax, rdx } => write!(f, "rax={rax:#x} rdx={rdx:#x}"),
            WroteValue::Flags(fl) => {
                let mut set = Vec::new();
                for (name, on) in [
                    ("zf", fl.zf),
                    ("sf", fl.sf),
                    ("cf", fl.cf),
                    ("of", fl.of),
                    ("pf", fl.pf),
                ] {
                    if on {
                        set.push(name);
                    }
                }
                write!(f, "flags[{}]", set.join(" "))
            }
            WroteValue::Simd { reg, lanes } => {
                let used = lanes.iter().rposition(|&l| l != 0).map_or(1, |i| i + 1);
                let rendered: Vec<String> =
                    lanes[..used].iter().map(|l| format!("{l:#x}")).collect();
                write!(f, "simd{}[{}]", reg, rendered.join(" "))
            }
        }
    }
}

/// One executed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Position in the dynamic stream.
    pub dyn_index: u64,
    /// Static instruction index in the loaded image.
    pub pc: usize,
    /// Rendered instruction text.
    pub text: String,
    /// Provenance of the instruction.
    pub prov: Provenance,
    /// What the instruction's destination holds after write-back.
    pub wrote: WroteValue,
}

/// A bounded execution trace plus the run's result.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The recorded entries (at most the configured limit, from the
    /// start of execution).
    pub entries: Vec<TraceEntry>,
    /// The run result.
    pub result: RunResult,
}

impl Trace {
    /// Renders the trace as an annotated listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let wrote = match e.wrote {
                WroteValue::None => String::new(),
                w => format!(" ; -> {w}"),
            };
            out.push_str(&format!(
                "{:>6}  {:<40} # {}{}\n",
                e.dyn_index, e.text, e.prov, wrote
            ));
        }
        out.push_str(&format!("stop: {}\n", self.result.stop));
        out
    }
}

impl Cpu {
    /// Runs like [`Cpu::run`] while recording up to `limit` trace
    /// entries (from the start of execution; later instructions still
    /// execute, untraced).
    pub fn run_traced(&self, fault: Option<FaultSpec>, limit: usize) -> Trace {
        let image = self.image();
        let mut st = State::new(image);
        let mut entries = Vec::with_capacity(limit.min(4096));
        let mut cycles = 0u64;
        let mut n = 0u64;
        let cost = self.cost_model();
        let step_limit = self.step_limit();
        loop {
            if n >= step_limit {
                return Trace {
                    entries,
                    result: RunResult {
                        stop: StopReason::Timeout,
                        output: st.output,
                        cycles,
                        dyn_insts: n,
                    },
                };
            }
            let pc = st.pc;
            let li = &image.insts[pc];
            let ev = step(image, &mut st);
            cycles += cost.cost_tagged(&li.inst, li.prov);
            if let Some(f) = fault {
                if f.dyn_index == n {
                    crate::exec::apply_fault(&li.inst, f.raw_bit, &mut st);
                }
            }
            if entries.len() < limit {
                let wrote = WroteValue::capture(&li.inst, &st.regs);
                entries.push(TraceEntry {
                    dyn_index: n,
                    pc,
                    text: print_inst(&li.inst),
                    prov: li.prov,
                    wrote,
                });
            }
            n += 1;
            if let StepEvent::Stop(stop) = ev {
                return Trace {
                    entries,
                    result: RunResult {
                        stop,
                        output: st.output,
                        cycles,
                        dyn_insts: n,
                    },
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::inst::Inst;
    use ferrum_asm::operand::Operand;
    use ferrum_asm::program::single_block_main;
    use ferrum_asm::reg::{Gpr, Reg, Width, Xmm};

    fn demo_cpu() -> Cpu {
        let p = single_block_main(vec![
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Mov {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Operand::Reg(Reg::q(Gpr::Rdi)),
            },
            Inst::Call {
                target: "print_i64".into(),
            },
        ]);
        Cpu::load(&p).unwrap()
    }

    #[test]
    fn trace_records_writes_and_matches_run() {
        let cpu = demo_cpu();
        let trace = cpu.run_traced(None, 100);
        assert_eq!(trace.result, cpu.run(None));
        assert_eq!(trace.entries.len(), trace.result.dyn_insts as usize);
        assert_eq!(trace.entries[0].wrote, WroteValue::Gpr(7));
        assert_eq!(trace.entries[0].wrote.gpr(), Some(7));
        assert_eq!(trace.entries[0].text, "movq $7, %rax");
        assert!(trace.entries.iter().any(|e| e.text.starts_with("call")));
    }

    #[test]
    fn trace_limit_is_respected() {
        let cpu = demo_cpu();
        let trace = cpu.run_traced(None, 2);
        assert_eq!(trace.entries.len(), 2);
        // Execution still ran to completion.
        assert_eq!(trace.result.output, vec![7]);
    }

    #[test]
    fn traced_fault_shows_the_corrupted_value() {
        let cpu = demo_cpu();
        let trace = cpu.run_traced(Some(FaultSpec::new(0, 3)), 100);
        assert_eq!(
            trace.entries[0].wrote,
            WroteValue::Gpr(7 ^ 8),
            "bit 3 flipped at write-back"
        );
        assert_eq!(trace.result.output, vec![7 ^ 8], "corruption propagates");
    }

    #[test]
    fn render_is_human_readable() {
        let cpu = demo_cpu();
        let text = cpu.run_traced(None, 10).render();
        assert!(text.contains("movq $7, %rax"));
        assert!(text.contains("stop: completed"));
        assert!(text.contains("-> 0x7"));
    }

    #[test]
    fn simd_writes_are_recorded_per_lane() {
        let p = single_block_main(vec![
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(0x2a),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Xmm::new(3),
            },
            Inst::Pinsrq {
                lane: 1,
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: Xmm::new(3),
            },
        ]);
        let cpu = Cpu::load(&p).unwrap();
        let trace = cpu.run_traced(None, 10);
        assert_eq!(
            trace.entries[1].wrote,
            WroteValue::Simd {
                reg: 3,
                lanes: [0x2a, 0, 0, 0, 0, 0, 0, 0]
            }
        );
        assert_eq!(
            trace.entries[2].wrote,
            WroteValue::Simd {
                reg: 3,
                lanes: [0x2a, 0x2a, 0, 0, 0, 0, 0, 0]
            }
        );
        assert_eq!(trace.entries[1].wrote.gpr(), None);
        assert!(trace.render().contains("-> simd3[0x2a 0x2a]"));
    }

    #[test]
    fn flag_writes_are_recorded() {
        let p = single_block_main(vec![
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(5),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Cmp {
                w: Width::W64,
                src: Operand::Imm(5),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
        ]);
        let cpu = Cpu::load(&p).unwrap();
        let trace = cpu.run_traced(None, 10);
        match trace.entries[1].wrote {
            WroteValue::Flags(fl) => assert!(fl.zf, "5 - 5 sets ZF"),
            ref other => panic!("expected flags write, got {other:?}"),
        }
        assert!(trace.render().contains("-> flags[zf"));
    }

    #[test]
    fn idiv_records_the_pair() {
        let p = single_block_main(vec![
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(17),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(5),
                dst: Operand::Reg(Reg::q(Gpr::Rcx)),
            },
            Inst::Cqo { w: Width::W64 },
            Inst::Idiv {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
            },
        ]);
        let cpu = Cpu::load(&p).unwrap();
        let trace = cpu.run_traced(None, 10);
        assert_eq!(
            trace.entries[3].wrote,
            WroteValue::RaxRdx { rax: 3, rdx: 2 },
            "17 / 5 = 3 rem 2"
        );
    }
}
