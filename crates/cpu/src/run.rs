//! The top-level simulator: load once, run many times (optionally with a
//! fault), and profile to enumerate injectable sites.

use ferrum_asm::program::AsmProgram;
use ferrum_asm::provenance::{Mechanism, Provenance};

use crate::cost::CostModel;
use crate::exec::{eligible_dest_bits, step, State, StepEvent};
use crate::fault::FaultSpec;
use crate::image::{Image, LoadError, TargetRef};
use crate::outcome::{RunResult, StopReason};
use crate::profile::{PcProfile, ProfileBuilder};

/// A loaded program ready for repeated simulation.
#[derive(Debug, Clone)]
pub struct Cpu {
    image: Image,
    cost: CostModel,
    step_limit: u64,
}

/// One injectable dynamic fault site discovered by profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteInfo {
    /// Dynamic index of the instruction.
    pub dyn_index: u64,
    /// Flat program counter of the instruction (static identity; keys
    /// into `ferrum_asm::analysis::coverage::CoverageMap`).
    pub pc: usize,
    /// Provenance of the instruction (for root-cause attribution).
    pub prov: Provenance,
    /// True when the injectable destination is RFLAGS.
    pub is_flags: bool,
    /// Width in bits of the injectable destination — the campaign
    /// sampler draws the fault bit uniformly from `0..bits` so that no
    /// destination bit is over-weighted by modulo reduction.
    pub bits: u32,
}

/// Dynamic instruction counts by provenance class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvCounts {
    /// Instructions lowered from IR instructions.
    pub from_ir: u64,
    /// Backend glue (store staging, branch materialisation, ...).
    pub glue: u64,
    /// Protection-inserted code.
    pub protection: u64,
    /// Synthetic/hand-written code.
    pub synthetic: u64,
}

impl ProvCounts {
    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.from_ir + self.glue + self.protection + self.synthetic
    }
}

/// Executed-instruction and cycle-proxy totals for one protection
/// mechanism — one row of the paper's overhead-breakdown figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MechCount {
    /// Dynamic (executed) instructions carrying this mechanism tag.
    pub insts: u64,
    /// Cycle-proxy cost those instructions accrued under the active
    /// [`CostModel`] (co-issue discount included).
    pub cycles: u64,
}

/// Per-mechanism dynamic cost attribution, indexed by
/// [`Mechanism::ALL`] order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MechCounts {
    counts: [MechCount; Mechanism::ALL.len()],
}

impl MechCounts {
    fn index(m: Mechanism) -> usize {
        Mechanism::ALL
            .iter()
            .position(|&x| x == m)
            .expect("mechanism in ALL")
    }

    /// The totals for one mechanism.
    pub fn get(&self, m: Mechanism) -> MechCount {
        self.counts[Self::index(m)]
    }

    pub(crate) fn add(&mut self, m: Mechanism, cycles: u64) {
        self.add_counts(m, 1, cycles);
    }

    /// Accumulates pre-aggregated totals into mechanism `m` (used by
    /// differential profilers that fold per-pc counts back into
    /// per-mechanism totals).
    pub fn add_counts(&mut self, m: Mechanism, insts: u64, cycles: u64) {
        let c = &mut self.counts[Self::index(m)];
        c.insts += insts;
        c.cycles += cycles;
    }

    /// Iterates `(mechanism, totals)` in [`Mechanism::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Mechanism, MechCount)> + '_ {
        Mechanism::ALL.iter().map(|&m| (m, self.get(m)))
    }

    /// Sum of executed protection instructions across mechanisms.
    pub fn total_insts(&self) -> u64 {
        self.counts.iter().map(|c| c.insts).sum()
    }

    /// Sum of cycle-proxy cost across mechanisms.
    pub fn total_cycles(&self) -> u64 {
        self.counts.iter().map(|c| c.cycles).sum()
    }
}

/// Result of a profiling run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Every injectable dynamic site, in execution order.
    pub sites: Vec<SiteInfo>,
    /// Dynamic instruction counts by provenance class.
    pub prov_counts: ProvCounts,
    /// Executed-instruction and cycle totals per protection mechanism
    /// (all zero for unprotected programs).
    pub mech_counts: MechCounts,
    /// Exact per-pc / per-function / folded-stack counts
    /// (byte-identical across engines).
    pub pcs: PcProfile,
    /// The fault-free run result (golden output, baseline cycles).
    pub result: RunResult,
}

impl Cpu {
    /// Loads `p` with the default cost model and step limit (50 M).
    ///
    /// # Errors
    ///
    /// Propagates [`LoadError`] from image construction.
    pub fn load(p: &AsmProgram) -> Result<Cpu, LoadError> {
        Ok(Cpu {
            image: Image::load(p)?,
            cost: CostModel::default(),
            step_limit: 50_000_000,
        })
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Cpu {
        self.cost = cost;
        self
    }

    /// Replaces the dynamic step limit (timeout detection).
    pub fn with_step_limit(mut self, limit: u64) -> Cpu {
        self.step_limit = limit;
        self
    }

    /// The loaded image.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// The active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The active step limit.
    pub fn step_limit(&self) -> u64 {
        self.step_limit
    }

    /// Runs the program, optionally injecting one fault.
    pub fn run(&self, fault: Option<FaultSpec>) -> RunResult {
        match fault {
            Some(f) => self.run_multi(&[f]),
            None => self.run_multi(&[]),
        }
    }

    /// Runs the program injecting every fault in `faults` (each at its
    /// own dynamic index).  The paper's evaluation uses a single fault
    /// per run (§II-A); multi-fault campaigns are the paper's stated
    /// future work, reproduced by `repro_multibit`.
    pub fn run_multi(&self, faults: &[FaultSpec]) -> RunResult {
        crate::snapshot::Machine::new(self).run_to_completion(faults)
    }

    /// Resumes execution from a [`Snapshot`] of this program's state,
    /// injecting `faults` (only those at-or-after the snapshot's
    /// instruction boundary can still fire).  Byte-identical to a full
    /// [`Cpu::run_multi`] with the same faults when the snapshot was
    /// taken on the fault-free path before every injection index.
    pub fn resume(&self, snap: &crate::snapshot::Snapshot, faults: &[FaultSpec]) -> RunResult {
        let mut m = crate::snapshot::Machine::new(self);
        m.restore(snap);
        m.run_to_completion(faults)
    }

    /// Runs fault-free while recording every injectable dynamic site.
    pub fn profile(&self) -> Profile {
        let mut st = State::new(&self.image);
        let mut cycles = 0u64;
        let mut n = 0u64;
        let mut sites = Vec::new();
        let mut prov_counts = ProvCounts::default();
        let mut mech_counts = MechCounts::default();
        let mut pcs = ProfileBuilder::new(&self.image);
        loop {
            if n >= self.step_limit {
                return Profile {
                    sites,
                    prov_counts,
                    mech_counts,
                    pcs: pcs.finish(),
                    result: RunResult {
                        stop: StopReason::Timeout,
                        output: st.output,
                        cycles,
                        dyn_insts: n,
                    },
                };
            }
            let pc = st.pc;
            let li = &self.image.insts[pc];
            match li.prov {
                Provenance::FromIr(_) => prov_counts.from_ir += 1,
                Provenance::Glue(_) => prov_counts.glue += 1,
                Provenance::Protection(..) => prov_counts.protection += 1,
                Provenance::Synthetic => prov_counts.synthetic += 1,
            }
            if let Some(bits) = eligible_dest_bits(&li.inst) {
                sites.push(SiteInfo {
                    dyn_index: n,
                    pc,
                    prov: li.prov,
                    is_flags: matches!(li.inst.dest_class(), ferrum_asm::inst::DestClass::Rflags),
                    bits,
                });
            }
            let ev = step(&self.image, &mut st);
            let step_cycles = self.cost.cost_tagged(&li.inst, li.prov);
            cycles += step_cycles;
            if let Some(m) = li.prov.mechanism() {
                mech_counts.add(m, step_cycles);
            }
            pcs.record(pc, step_cycles);
            match (&li.inst, li.target) {
                (ferrum_asm::inst::Inst::Call { .. }, TargetRef::Index(t)) => pcs.enter(t),
                (ferrum_asm::inst::Inst::Ret, _) => pcs.leave(),
                _ => {}
            }
            n += 1;
            if let StepEvent::Stop(stop) = ev {
                return Profile {
                    sites,
                    prov_counts,
                    mech_counts,
                    pcs: pcs.finish(),
                    result: RunResult {
                        stop,
                        output: st.output,
                        cycles,
                        dyn_insts: n,
                    },
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::{Global, Module};
    use ferrum_mir::types::Ty;

    fn compile_and_load(m: &Module) -> Cpu {
        let asm = ferrum_backend::compile(m).expect("compiles");
        Cpu::load(&asm).expect("loads")
    }

    fn simple_sum_module() -> Module {
        // print(tab[0] + tab[1] + tab[2])
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![10, 20, 12]));
        let mut b = FunctionBuilder::new("main", &[], None);
        let base = b.global(g);
        let mut acc = b.iconst(Ty::I64, 0);
        for i in 0..3 {
            let idx = b.iconst(Ty::I64, i);
            let p = b.gep(base, idx);
            let v = b.load(Ty::I64, p);
            acc = b.add(Ty::I64, acc, v);
        }
        b.print(acc);
        b.ret(None);
        module.functions.push(b.finish());
        module
    }

    #[test]
    fn compiled_program_matches_interpreter() {
        let m = simple_sum_module();
        let golden = ferrum_mir::interp::Interp::new(&m).run().unwrap();
        let cpu = compile_and_load(&m);
        let r = cpu.run(None);
        assert_eq!(r.stop, StopReason::MainReturned);
        assert_eq!(r.output, golden.output);
        assert_eq!(r.output, vec![42]);
        assert!(r.cycles > 0 && r.dyn_insts > 0);
    }

    #[test]
    fn loops_and_branches_execute() {
        // print(sum of 0..10)
        let mut b = FunctionBuilder::new("main", &[], None);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let pi = b.alloca(Ty::I64);
        let ps = b.alloca(Ty::I64);
        let zero = b.iconst(Ty::I64, 0);
        b.store(Ty::I64, zero, pi);
        b.store(Ty::I64, zero, ps);
        b.jmp(header);
        b.switch_to(header);
        let i = b.load(Ty::I64, pi);
        let ten = b.iconst(Ty::I64, 10);
        let c = b.icmp(ferrum_mir::inst::ICmpPred::Slt, Ty::I64, i, ten);
        b.br(c, body, exit);
        b.switch_to(body);
        let i2 = b.load(Ty::I64, pi);
        let s = b.load(Ty::I64, ps);
        let s2 = b.add(Ty::I64, s, i2);
        b.store(Ty::I64, s2, ps);
        let one = b.iconst(Ty::I64, 1);
        let i3 = b.add(Ty::I64, i2, one);
        b.store(Ty::I64, i3, pi);
        b.jmp(header);
        b.switch_to(exit);
        let r = b.load(Ty::I64, ps);
        b.print(r);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        let cpu = compile_and_load(&m);
        let result = cpu.run(None);
        assert_eq!(result.output, vec![45]);
    }

    #[test]
    fn function_calls_work_in_simulation() {
        let mut callee = FunctionBuilder::new("mul3", &[Ty::I64], Some(Ty::I64));
        let three = callee.iconst(Ty::I64, 3);
        let r = callee.mul(Ty::I64, callee.arg(0), three);
        callee.ret(Some(r));
        let mut main = FunctionBuilder::new("main", &[], None);
        let x = main.iconst(Ty::I64, 14);
        let r = main.call("mul3", vec![x], Some(Ty::I64)).unwrap();
        main.print(r);
        main.ret(None);
        let m = Module::from_functions(vec![main.finish(), callee.finish()]);
        let cpu = compile_and_load(&m);
        assert_eq!(cpu.run(None).output, vec![42]);
    }

    #[test]
    fn infinite_loop_times_out() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let lp = b.create_block("lp");
        b.jmp(lp);
        b.switch_to(lp);
        b.jmp(lp);
        let m = Module::from_functions(vec![b.finish()]);
        let asm = ferrum_backend::compile(&m).unwrap();
        let cpu = Cpu::load(&asm).unwrap().with_step_limit(1000);
        assert_eq!(cpu.run(None).stop, StopReason::Timeout);
    }

    #[test]
    fn profile_enumerates_sites_and_matches_run() {
        let m = simple_sum_module();
        let cpu = compile_and_load(&m);
        let prof = cpu.profile();
        let run = cpu.run(None);
        assert_eq!(prof.result, run);
        assert!(!prof.sites.is_empty());
        // All site indices are within the dynamic stream and increasing.
        let mut prev = None;
        for s in &prof.sites {
            assert!(s.dyn_index < run.dyn_insts);
            if let Some(p) = prev {
                assert!(s.dyn_index > p);
            }
            prev = Some(s.dyn_index);
        }
        // Flag sites exist only if a cmp/test executed; this program has
        // no branches, so none are flagged... the icmp-free sum has no
        // cmp at all.
        assert!(prof.sites.iter().all(|s| !s.is_flags));
    }

    #[test]
    fn profile_prov_counts_sum_to_dynamic_length() {
        let m = simple_sum_module();
        let cpu = compile_and_load(&m);
        let prof = cpu.profile();
        assert_eq!(prof.prov_counts.total(), prof.result.dyn_insts);
        assert!(prof.prov_counts.from_ir > 0);
        assert!(prof.prov_counts.glue > 0, "prologue/store glue expected");
        assert_eq!(prof.prov_counts.protection, 0, "unprotected program");
    }

    #[test]
    fn mech_counts_reconcile_with_protection_count() {
        // An unprotected program attributes nothing to any mechanism.
        let m = simple_sum_module();
        let cpu = compile_and_load(&m);
        let prof = cpu.profile();
        assert_eq!(prof.mech_counts.total_insts(), 0);
        assert_eq!(prof.mech_counts.total_cycles(), 0);
        assert_eq!(prof.mech_counts, MechCounts::default());
    }

    #[test]
    fn fault_injection_changes_output_or_more() {
        let m = simple_sum_module();
        let cpu = compile_and_load(&m);
        let prof = cpu.profile();
        // Inject into every site with bit 0 and observe at least one SDC
        // (silent wrong output) across the campaign, plus determinism.
        let golden = prof.result.output.clone();
        let mut sdc = 0;
        for s in &prof.sites {
            let r1 = cpu.run(Some(FaultSpec::new(s.dyn_index, 0)));
            let r2 = cpu.run(Some(FaultSpec::new(s.dyn_index, 0)));
            assert_eq!(r1, r2, "simulation must be deterministic");
            if r1.stop == StopReason::MainReturned && r1.output != golden {
                sdc += 1;
            }
        }
        assert!(sdc > 0, "an unprotected program must show SDCs");
    }

    #[test]
    fn fault_free_run_has_no_detection() {
        let m = simple_sum_module();
        let cpu = compile_and_load(&m);
        assert_eq!(cpu.run(None).stop, StopReason::MainReturned);
    }

    #[test]
    fn multi_fault_injection_applies_both_faults() {
        let m = simple_sum_module();
        let cpu = compile_and_load(&m);
        let prof = cpu.profile();
        let a = prof.sites[2];
        let b = prof.sites[5];
        let single_a = cpu.run(Some(FaultSpec::new(a.dyn_index, 1)));
        let single_b = cpu.run(Some(FaultSpec::new(b.dyn_index, 1)));
        let both = cpu.run_multi(&[
            FaultSpec::new(a.dyn_index, 1),
            FaultSpec::new(b.dyn_index, 1),
        ]);
        // Injecting both cannot equal a fault-free run unless each alone
        // was benign with identical output.
        let golden = cpu.run(None);
        if single_a.output != golden.output || single_b.output != golden.output {
            assert_ne!(both.output, golden.output);
        }
        assert_eq!(cpu.run_multi(&[]), golden);
    }

    #[test]
    fn cost_model_is_configurable() {
        let m = simple_sum_module();
        let asm = ferrum_backend::compile(&m).unwrap();
        let cheap = Cpu::load(&asm).unwrap();
        let model = CostModel {
            mem_load: 30,
            mem_store: 30,
            ..CostModel::default()
        };
        let expensive = Cpu::load(&asm).unwrap().with_cost_model(model);
        assert!(expensive.run(None).cycles > cheap.run(None).cycles);
    }
}
