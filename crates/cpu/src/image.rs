//! Program loading: flattening an [`AsmProgram`] into an indexable
//! instruction array with resolved jump/call targets and global symbols.
//!
//! Loading once and executing many times is what makes 1000-fault
//! campaigns per benchmark affordable.

use std::collections::HashMap;
use std::fmt;

use ferrum_asm::inst::Inst;
use ferrum_asm::operand::{MemRef, Operand};
use ferrum_asm::program::AsmProgram;
use ferrum_asm::provenance::Provenance;

/// Resolved control-transfer target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetRef {
    /// Not a control transfer.
    None,
    /// Jump/call to this instruction index.
    Index(usize),
    /// Transfer to `exit_function` (detection).
    Exit,
    /// Call to the `print_i64` intrinsic.
    Print,
}

/// One flattened instruction.
#[derive(Debug, Clone)]
pub struct LoadedInst {
    /// The instruction with memory symbols pre-resolved to absolute
    /// displacements.
    pub inst: Inst,
    /// Its provenance tag.
    pub prov: Provenance,
    /// Its resolved control target.
    pub target: TargetRef,
}

/// Load failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Structural validation failed.
    Invalid(String),
    /// A memory operand names an unknown global symbol.
    UnknownSymbol(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Invalid(m) => write!(f, "invalid program: {m}"),
            LoadError::UnknownSymbol(s) => write!(f, "unknown global symbol `{s}`"),
        }
    }
}

impl std::error::Error for LoadError {}

/// One function's contiguous span of flattened instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSpan {
    /// Function name.
    pub name: String,
    /// Index of the function's first instruction.
    pub start: usize,
    /// One past the function's last instruction.
    pub end: usize,
}

/// A loaded, executable program image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Flattened instructions.
    pub insts: Vec<LoadedInst>,
    /// Index of `main`'s first instruction.
    pub entry: usize,
    /// Initial contents of the global data segment.
    pub globals_image: Vec<u8>,
    /// Base address of each global, by name.
    pub symbol_bases: HashMap<String, u64>,
    /// Function spans in layout order (ascending, contiguous) — the
    /// static side of per-function profile rollups.
    pub funcs: Vec<FuncSpan>,
}

impl Image {
    /// Loads and resolves `p`.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Invalid`] if `p` fails validation and
    /// [`LoadError::UnknownSymbol`] for unresolved data references.
    pub fn load(p: &AsmProgram) -> Result<Image, LoadError> {
        if let Err(errs) = p.validate() {
            return Err(LoadError::Invalid(
                errs.first().map(ToString::to_string).unwrap_or_default(),
            ));
        }
        let (globals_image, bases) = crate::mem::build_globals(&p.data);
        let symbol_bases: HashMap<String, u64> = bases.into_iter().collect();

        // First pass: assign indices to every instruction and record the
        // index of each label (block labels and function entries).
        let mut label_index: HashMap<&str, usize> = HashMap::new();
        let mut funcs = Vec::with_capacity(p.functions.len());
        let mut idx = 0usize;
        for f in &p.functions {
            label_index.insert(f.name.as_str(), idx);
            let start = idx;
            for b in &f.blocks {
                label_index.insert(b.label.as_str(), idx);
                idx += b.insts.len();
            }
            funcs.push(FuncSpan {
                name: f.name.clone(),
                start,
                end: idx,
            });
        }
        let entry = *label_index
            .get("main")
            .ok_or_else(|| LoadError::Invalid("no main".into()))?;

        // Second pass: emit resolved instructions.
        let mut insts = Vec::with_capacity(idx);
        for f in &p.functions {
            for b in &f.blocks {
                for ai in &b.insts {
                    let target = match ai.inst.target() {
                        None => TargetRef::None,
                        Some(t) if t == ferrum_asm::EXIT_FUNCTION => TargetRef::Exit,
                        Some(t) if t == ferrum_asm::PRINT_I64 => TargetRef::Print,
                        Some(t) => TargetRef::Index(
                            *label_index
                                .get(t.as_str())
                                .ok_or_else(|| LoadError::Invalid(format!("label {t}")))?,
                        ),
                    };
                    let inst = resolve_symbols(&ai.inst, &symbol_bases)?;
                    insts.push(LoadedInst {
                        inst,
                        prov: ai.prov,
                        target,
                    });
                }
            }
        }
        Ok(Image {
            insts,
            entry,
            globals_image,
            symbol_bases,
            funcs,
        })
    }

    /// Number of flattened instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the image is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Index (into [`Image::funcs`]) of the function containing `pc`.
    /// Spans are contiguous and ascending, so this is a binary search.
    pub fn func_of(&self, pc: usize) -> Option<usize> {
        let i = self.funcs.partition_point(|f| f.end <= pc);
        (i < self.funcs.len() && self.funcs[i].start <= pc).then_some(i)
    }

    /// The name of the function containing `pc`, or `"?"`.
    pub fn func_name(&self, pc: usize) -> &str {
        self.func_of(pc)
            .map_or("?", |i| self.funcs[i].name.as_str())
    }
}

fn resolve_mem(m: &MemRef, syms: &HashMap<String, u64>) -> Result<MemRef, LoadError> {
    match &m.symbol {
        None => Ok(m.clone()),
        Some(s) => {
            let base = syms
                .get(s)
                .copied()
                .ok_or_else(|| LoadError::UnknownSymbol(s.clone()))?;
            Ok(MemRef {
                disp: m.disp + base as i64,
                base: m.base,
                index: m.index,
                symbol: None,
            })
        }
    }
}

fn resolve_op(op: &Operand, syms: &HashMap<String, u64>) -> Result<Operand, LoadError> {
    match op {
        Operand::Mem(m) => Ok(Operand::Mem(resolve_mem(m, syms)?)),
        other => Ok(other.clone()),
    }
}

fn resolve_symbols(inst: &Inst, syms: &HashMap<String, u64>) -> Result<Inst, LoadError> {
    let mut out = inst.clone();
    match &mut out {
        Inst::Mov { src, dst, .. }
        | Inst::Alu { src, dst, .. }
        | Inst::Cmp { src, dst, .. }
        | Inst::Test { src, dst, .. } => {
            *src = resolve_op(src, syms)?;
            *dst = resolve_op(dst, syms)?;
        }
        Inst::Movsx { src, .. } | Inst::Movzx { src, .. } | Inst::Idiv { src, .. } => {
            *src = resolve_op(src, syms)?;
        }
        Inst::Imul { src, .. } => {
            *src = resolve_op(src, syms)?;
        }
        Inst::Lea { mem, .. } => {
            *mem = resolve_mem(mem, syms)?;
        }
        Inst::Unary { dst, .. } | Inst::Shift { dst, .. } | Inst::Setcc { dst, .. } => {
            *dst = resolve_op(dst, syms)?;
        }
        Inst::Push { src } => {
            *src = resolve_op(src, syms)?;
        }
        Inst::Pop { dst } => {
            *dst = resolve_op(dst, syms)?;
        }
        Inst::MovqToXmm { src, .. } | Inst::Pinsrq { src, .. } => {
            *src = resolve_op(src, syms)?;
        }
        _ => {}
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::program::{single_block_main, DataObject};
    use ferrum_asm::reg::{Gpr, Reg};

    #[test]
    fn flattening_assigns_entry() {
        let p = single_block_main(vec![Inst::Nop]);
        let img = Image::load(&p).unwrap();
        assert_eq!(img.entry, 0);
        assert_eq!(img.len(), 2);
        assert!(!img.is_empty());
    }

    #[test]
    fn function_spans_cover_the_image_contiguously() {
        let p = single_block_main(vec![Inst::Nop, Inst::Nop]);
        let img = Image::load(&p).unwrap();
        assert!(!img.funcs.is_empty());
        let mut next = 0;
        for f in &img.funcs {
            assert_eq!(f.start, next, "spans must be contiguous");
            assert!(f.end >= f.start);
            next = f.end;
        }
        assert_eq!(next, img.len(), "spans must cover every instruction");
        for pc in 0..img.len() {
            let fi = img.func_of(pc).expect("every pc is inside a function");
            assert!(img.funcs[fi].start <= pc && pc < img.funcs[fi].end);
        }
        assert_eq!(img.func_of(img.len()), None);
        assert_eq!(img.func_name(img.entry), "main");
    }

    #[test]
    fn targets_resolved_to_indices() {
        let p = single_block_main(vec![Inst::Jmp {
            target: "main_entry".into(),
        }]);
        let img = Image::load(&p).unwrap();
        assert_eq!(img.insts[0].target, TargetRef::Index(0));
    }

    #[test]
    fn exit_and_print_targets() {
        let p = single_block_main(vec![
            Inst::Jcc {
                cc: ferrum_asm::flags::Cc::Ne,
                target: "exit_function".into(),
            },
            Inst::Call {
                target: "print_i64".into(),
            },
        ]);
        let img = Image::load(&p).unwrap();
        assert_eq!(img.insts[0].target, TargetRef::Exit);
        assert_eq!(img.insts[1].target, TargetRef::Print);
    }

    #[test]
    fn symbols_resolved_into_displacements() {
        let mut p = single_block_main(vec![Inst::Lea {
            mem: MemRef::global("tab", 8),
            dst: Reg::q(Gpr::Rax),
        }]);
        p.data.push(DataObject::new("other", vec![0, 0]));
        p.data.push(DataObject::new("tab", vec![1, 2, 3]));
        let img = Image::load(&p).unwrap();
        match &img.insts[0].inst {
            Inst::Lea { mem, .. } => {
                assert_eq!(mem.symbol, None);
                assert_eq!(mem.disp as u64, crate::mem::GLOBALS_BASE + 16 + 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_symbol_rejected() {
        let p = single_block_main(vec![Inst::Lea {
            mem: MemRef::global("ghost", 0),
            dst: Reg::q(Gpr::Rax),
        }]);
        assert_eq!(
            Image::load(&p).unwrap_err(),
            LoadError::UnknownSymbol("ghost".into())
        );
    }

    #[test]
    fn invalid_program_rejected() {
        let p = AsmProgram::new();
        assert!(matches!(Image::load(&p), Err(LoadError::Invalid(_))));
    }
}
