//! The architectural register file.

use ferrum_asm::flags::Flags;
use ferrum_asm::reg::{merge_write, Reg, Xmm, Ymm, Zmm};

/// General-purpose, SIMD, and flags state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    gprs: [u64; 16],
    simd: [[u64; 8]; 16],
    /// Condition flags.
    pub flags: Flags,
}

impl Default for RegFile {
    fn default() -> RegFile {
        RegFile::new()
    }
}

impl RegFile {
    /// All registers zeroed, flags cleared.
    pub fn new() -> RegFile {
        RegFile {
            gprs: [0; 16],
            simd: [[0; 8]; 16],
            flags: Flags::default(),
        }
    }

    /// Reads a register view, returning the raw bits in the low
    /// `width.bits()` of the result.
    pub fn read(&self, r: Reg) -> u64 {
        self.gprs[r.gpr.index()] & r.width.mask()
    }

    /// Reads the full 64-bit register.
    pub fn read64(&self, g: ferrum_asm::reg::Gpr) -> u64 {
        self.gprs[g.index()]
    }

    /// Writes a register view with architectural merge semantics
    /// (32-bit writes zero-extend, 8/16-bit writes merge).
    pub fn write(&mut self, r: Reg, value: u64) {
        let old = self.gprs[r.gpr.index()];
        self.gprs[r.gpr.index()] = merge_write(old, r.width, value);
    }

    /// Writes the full 64-bit register.
    pub fn write64(&mut self, g: ferrum_asm::reg::Gpr, value: u64) {
        self.gprs[g.index()] = value;
    }

    /// Reads one 64-bit lane (0–1) of an XMM register.
    pub fn read_xmm_lane(&self, x: Xmm, lane: u8) -> u64 {
        self.simd[x.index()][usize::from(lane)]
    }

    /// Writes one 64-bit lane (0–1) of an XMM register, leaving all other
    /// lanes (including the upper YMM half) unchanged — legacy-SSE
    /// semantics, as used by `pinsrq`.
    pub fn write_xmm_lane(&mut self, x: Xmm, lane: u8, value: u64) {
        self.simd[x.index()][usize::from(lane)] = value;
    }

    /// `movq src, %xmm` semantics: lane 0 = value, lane 1 = 0, upper YMM
    /// half unchanged (legacy SSE).
    pub fn write_xmm_movq(&mut self, x: Xmm, value: u64) {
        self.simd[x.index()][0] = value;
        self.simd[x.index()][1] = 0;
    }

    /// Reads all four 64-bit lanes of a YMM register.
    pub fn read_ymm(&self, y: Ymm) -> [u64; 4] {
        let r = &self.simd[y.index()];
        [r[0], r[1], r[2], r[3]]
    }

    /// Writes all four 64-bit lanes of a YMM register and zeroes the
    /// upper ZMM half (EVEX/VEX.256 semantics).
    pub fn write_ymm(&mut self, y: Ymm, value: [u64; 4]) {
        let r = &mut self.simd[y.index()];
        r[..4].copy_from_slice(&value);
        r[4..].fill(0);
    }

    /// Reads all eight 64-bit lanes of a ZMM register.
    pub fn read_zmm(&self, z: Zmm) -> [u64; 8] {
        self.simd[z.index()]
    }

    /// Writes all eight 64-bit lanes of a ZMM register.
    pub fn write_zmm(&mut self, z: Zmm, value: [u64; 8]) {
        self.simd[z.index()] = value;
    }

    /// Reads the low 128 bits of a register as two lanes.
    pub fn read_xmm(&self, x: Xmm) -> [u64; 2] {
        [self.simd[x.index()][0], self.simd[x.index()][1]]
    }

    /// Writes the low 128 bits and zeroes the upper half (VEX semantics,
    /// used by `vpxor` on XMM operands).
    pub fn write_xmm_vex(&mut self, x: Xmm, value: [u64; 2]) {
        self.simd[x.index()] = [value[0], value[1], 0, 0, 0, 0, 0, 0];
    }

    /// Flips bit `bit` of a register view (fault injection).
    pub fn flip_gpr_bit(&mut self, r: Reg, bit: u32) {
        let raw = self.read(r);
        self.write(r, raw ^ (1u64 << (bit % r.width.bits())));
    }

    /// Flips bit `bit` (0–511) of a SIMD register.
    pub fn flip_simd_bit(&mut self, idx: u8, bit: u32) {
        let lane = (bit / 64) as usize % 8;
        self.simd[usize::from(idx)][lane] ^= 1u64 << (bit % 64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::reg::{Gpr, Zmm};

    #[test]
    fn gpr_read_write_views() {
        let mut rf = RegFile::new();
        rf.write(Reg::q(Gpr::Rax), 0xffff_ffff_ffff_ffff);
        rf.write(Reg::l(Gpr::Rax), 0x1234_5678);
        assert_eq!(rf.read64(Gpr::Rax), 0x1234_5678); // zero-extended
        rf.write(Reg::b(Gpr::Rax), 0xff);
        assert_eq!(rf.read64(Gpr::Rax), 0x1234_56ff); // merged
        assert_eq!(rf.read(Reg::b(Gpr::Rax)), 0xff);
        assert_eq!(rf.read(Reg::l(Gpr::Rax)), 0x1234_56ff);
    }

    #[test]
    fn movq_to_xmm_zeroes_lane1_keeps_upper() {
        let mut rf = RegFile::new();
        rf.write_ymm(Ymm::new(0), [1, 2, 3, 4]);
        rf.write_xmm_movq(Xmm::new(0), 99);
        assert_eq!(rf.read_ymm(Ymm::new(0)), [99, 0, 3, 4]);
    }

    #[test]
    fn pinsrq_preserves_other_lanes() {
        let mut rf = RegFile::new();
        rf.write_ymm(Ymm::new(2), [1, 2, 3, 4]);
        rf.write_xmm_lane(Xmm::new(2), 1, 77);
        assert_eq!(rf.read_ymm(Ymm::new(2)), [1, 77, 3, 4]);
    }

    #[test]
    fn vex_write_zeroes_upper_half() {
        let mut rf = RegFile::new();
        rf.write_ymm(Ymm::new(1), [1, 2, 3, 4]);
        rf.write_xmm_vex(Xmm::new(1), [9, 8]);
        assert_eq!(rf.read_ymm(Ymm::new(1)), [9, 8, 0, 0]);
    }

    #[test]
    fn ymm_aliases_xmm_low_half() {
        let mut rf = RegFile::new();
        rf.write_xmm_movq(Xmm::new(5), 42);
        assert_eq!(rf.read_ymm(Ymm::new(5))[0], 42);
    }

    #[test]
    fn bit_flip_respects_view_width() {
        let mut rf = RegFile::new();
        rf.write(Reg::l(Gpr::Rcx), 0);
        rf.flip_gpr_bit(Reg::l(Gpr::Rcx), 31);
        assert_eq!(rf.read64(Gpr::Rcx), 0x8000_0000);
        // Bit index wraps modulo the view width.
        rf.flip_gpr_bit(Reg::l(Gpr::Rcx), 63);
        assert_eq!(rf.read64(Gpr::Rcx), 0); // 63 % 32 == 31 → flipped back
    }

    #[test]
    fn zmm_reads_writes_and_ymm_zeroing() {
        let mut rf = RegFile::new();
        rf.write_zmm(Zmm::new(2), [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(rf.read_zmm(Zmm::new(2)), [1, 2, 3, 4, 5, 6, 7, 8]);
        // YMM read sees the low half; YMM write zeroes the upper half
        // (EVEX/VEX.256 semantics).
        assert_eq!(rf.read_ymm(Ymm::new(2)), [1, 2, 3, 4]);
        rf.write_ymm(Ymm::new(2), [9, 9, 9, 9]);
        assert_eq!(rf.read_zmm(Zmm::new(2)), [9, 9, 9, 9, 0, 0, 0, 0]);
    }

    #[test]
    fn simd_bit_flip() {
        let mut rf = RegFile::new();
        rf.flip_simd_bit(3, 64);
        assert_eq!(rf.read_ymm(Ymm::new(3)), [0, 1, 0, 0]);
        rf.flip_simd_bit(3, 255);
        assert_eq!(rf.read_ymm(Ymm::new(3))[3], 1u64 << 63);
    }
}
