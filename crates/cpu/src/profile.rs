//! Exact per-pc / per-function execution profiles.
//!
//! Both engines collect these during [`Cpu::profile`](crate::run::Cpu::profile)
//! and [`DecodedCpu::profile`](crate::decoded::DecodedCpu::profile): every
//! dynamic instruction bumps the executed-instruction and cycle counters
//! of its flat pc, of the function containing that pc, and of the
//! current call stack (for folded flamegraph output).  The counts are
//! **exact**, not sampled — the simulator sees every instruction — and
//! byte-identical across the interpreter and the decoded engine, which
//! makes the profile itself a cross-engine oracle: any divergence in
//! dispatch order, cycle pricing, or call/ret tracking shows up as a
//! profile mismatch long before it corrupts a campaign.
//!
//! The collection path is one slot bump per instruction: the folded
//! stack's accumulator slot is re-resolved only on call/ret, so the
//! fault-free golden walk stays linear in the dynamic instruction
//! count.

use std::collections::HashMap;

use crate::image::Image;

/// Executed-instruction and cycle totals for one profile bucket
/// (a pc, a function, or a call stack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcCount {
    /// Dynamic (executed) instructions.
    pub insts: u64,
    /// Cycle-proxy cost those instructions accrued (provenance
    /// discount included).
    pub cycles: u64,
}

impl PcCount {
    fn bump(&mut self, cycles: u64) {
        self.insts += 1;
        self.cycles += cycles;
    }
}

/// An exact execution profile at pc, function, and call-stack
/// granularity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcProfile {
    /// Per-pc totals, indexed by flat pc (same length as
    /// [`Image::insts`]).
    pub pcs: Vec<PcCount>,
    /// Per-function rollup, indexed like [`Image::funcs`].
    pub funcs: Vec<PcCount>,
    /// Folded call stacks (outermost function first, as indices into
    /// [`Image::funcs`]) with the totals charged while that exact stack
    /// was live.  Sorted by stack for deterministic output.
    pub stacks: Vec<(Vec<u32>, PcCount)>,
}

impl PcProfile {
    /// Whole-program totals (equal to the run's `dyn_insts`/`cycles`).
    pub fn total(&self) -> PcCount {
        let mut t = PcCount::default();
        for c in &self.pcs {
            t.insts += c.insts;
            t.cycles += c.cycles;
        }
        t
    }

    /// Non-zero pcs as `(pc, counts)`, descending by cycles (ties by
    /// ascending pc) — the hot-spot table order.
    pub fn hottest_pcs(&self) -> Vec<(usize, PcCount)> {
        let mut v: Vec<(usize, PcCount)> = self
            .pcs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.insts > 0)
            .map(|(pc, c)| (pc, *c))
            .collect();
        v.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));
        v
    }

    /// The profile in standard flamegraph folded-stack format, one
    /// `outer;inner <cycles>` line per distinct call stack, sorted by
    /// stack.
    pub fn folded(&self, image: &Image) -> String {
        let mut out = String::new();
        for (stack, c) in &self.stacks {
            let names: Vec<&str> = stack
                .iter()
                .map(|&f| image.funcs[f as usize].name.as_str())
                .collect();
            out.push_str(&names.join(";"));
            out.push(' ');
            out.push_str(&c.cycles.to_string());
            out.push('\n');
        }
        out
    }
}

/// Streaming collector both engines drive during their `profile` walk.
///
/// The engines call [`ProfileBuilder::record`] once per dynamic
/// instruction (with the instruction's flat pc and charged cycles) and
/// [`ProfileBuilder::enter`]/[`ProfileBuilder::leave`] when that
/// instruction was a resolved call / a non-final `ret` — keeping the
/// call-stack model identical to the executed one.
#[derive(Debug)]
pub struct ProfileBuilder {
    pcs: Vec<PcCount>,
    funcs: Vec<PcCount>,
    /// pc → owning function index, precomputed so `record` is O(1).
    func_of_pc: Vec<u32>,
    /// Accumulators per distinct call stack.
    stacks: Vec<(Vec<u32>, PcCount)>,
    stack_slots: HashMap<Vec<u32>, usize>,
    /// The live call stack as function indices (outermost first).
    fstack: Vec<u32>,
    /// Slot in `stacks` for the live stack, re-resolved on call/ret.
    cur_slot: usize,
}

impl ProfileBuilder {
    /// A collector positioned at `image`'s entry point.
    pub fn new(image: &Image) -> ProfileBuilder {
        let mut func_of_pc = vec![0u32; image.insts.len()];
        for (fi, f) in image.funcs.iter().enumerate() {
            for slot in &mut func_of_pc[f.start..f.end] {
                *slot = fi as u32;
            }
        }
        let entry_func = image.func_of(image.entry).unwrap_or(0) as u32;
        let mut b = ProfileBuilder {
            pcs: vec![PcCount::default(); image.insts.len()],
            funcs: vec![PcCount::default(); image.funcs.len()],
            func_of_pc,
            stacks: Vec::new(),
            stack_slots: HashMap::new(),
            fstack: vec![entry_func],
            cur_slot: 0,
        };
        b.cur_slot = b.resolve_slot();
        b
    }

    fn resolve_slot(&mut self) -> usize {
        if let Some(&s) = self.stack_slots.get(&self.fstack) {
            return s;
        }
        let s = self.stacks.len();
        self.stacks.push((self.fstack.clone(), PcCount::default()));
        self.stack_slots.insert(self.fstack.clone(), s);
        s
    }

    /// Charges one executed instruction at `pc` costing `cycles`.
    #[inline]
    pub fn record(&mut self, pc: usize, cycles: u64) {
        self.pcs[pc].bump(cycles);
        if let Some(f) = self.funcs.get_mut(self.func_of_pc[pc] as usize) {
            f.bump(cycles);
        }
        self.stacks[self.cur_slot].1.bump(cycles);
    }

    /// The just-recorded instruction was a call resolved to flat index
    /// `target` (a function entry): push the callee.
    pub fn enter(&mut self, target: usize) {
        self.fstack.push(self.func_of_pc[target]);
        self.cur_slot = self.resolve_slot();
    }

    /// The just-recorded instruction was a `ret`: pop back to the
    /// caller.  The final `ret` of `main` (which stops the run) leaves
    /// the stack untouched.
    pub fn leave(&mut self) {
        if self.fstack.len() > 1 {
            self.fstack.pop();
            self.cur_slot = self.resolve_slot();
        }
    }

    /// Finishes the walk, sorting folded stacks deterministically.
    pub fn finish(self) -> PcProfile {
        let mut stacks = self.stacks;
        stacks.sort_by(|a, b| a.0.cmp(&b.0));
        PcProfile {
            pcs: self.pcs,
            funcs: self.funcs,
            stacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::run::Cpu;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::Module;
    use ferrum_mir::types::Ty;

    fn call_heavy_cpu() -> Cpu {
        let mut callee = FunctionBuilder::new("mul3", &[Ty::I64], Some(Ty::I64));
        let three = callee.iconst(Ty::I64, 3);
        let r = callee.mul(Ty::I64, callee.arg(0), three);
        callee.ret(Some(r));
        let mut main = FunctionBuilder::new("main", &[], None);
        let x = main.iconst(Ty::I64, 14);
        let a = main.call("mul3", vec![x], Some(Ty::I64)).unwrap();
        let b = main.call("mul3", vec![a], Some(Ty::I64)).unwrap();
        main.print(b);
        main.ret(None);
        let m = Module::from_functions(vec![main.finish(), callee.finish()]);
        let asm = ferrum_backend::compile(&m).unwrap();
        Cpu::load(&asm).unwrap()
    }

    #[test]
    fn pc_totals_reconcile_with_run_result() {
        let cpu = call_heavy_cpu();
        let prof = cpu.profile();
        let total = prof.pcs.total();
        assert_eq!(total.insts, prof.result.dyn_insts);
        assert_eq!(total.cycles, prof.result.cycles);
        let func_insts: u64 = prof.pcs.funcs.iter().map(|c| c.insts).sum();
        let func_cycles: u64 = prof.pcs.funcs.iter().map(|c| c.cycles).sum();
        assert_eq!(func_insts, prof.result.dyn_insts);
        assert_eq!(func_cycles, prof.result.cycles);
        let stack_insts: u64 = prof.pcs.stacks.iter().map(|(_, c)| c.insts).sum();
        let stack_cycles: u64 = prof.pcs.stacks.iter().map(|(_, c)| c.cycles).sum();
        assert_eq!(stack_insts, prof.result.dyn_insts);
        assert_eq!(stack_cycles, prof.result.cycles);
    }

    #[test]
    fn per_function_rollup_matches_pc_spans() {
        let cpu = call_heavy_cpu();
        let prof = cpu.profile();
        let image = cpu.image();
        for (fi, f) in image.funcs.iter().enumerate() {
            let span_insts: u64 = prof.pcs.pcs[f.start..f.end].iter().map(|c| c.insts).sum();
            let span_cycles: u64 = prof.pcs.pcs[f.start..f.end].iter().map(|c| c.cycles).sum();
            assert_eq!(span_insts, prof.pcs.funcs[fi].insts, "{}", f.name);
            assert_eq!(span_cycles, prof.pcs.funcs[fi].cycles, "{}", f.name);
        }
    }

    #[test]
    fn folded_stacks_track_calls() {
        let cpu = call_heavy_cpu();
        let prof = cpu.profile();
        let folded = prof.pcs.folded(cpu.image());
        // The program calls mul3 from main twice, so both the bare
        // "main" frame and the "main;mul3" stack accrue cycles.
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.iter().any(|l| l.starts_with("main ")), "{folded}");
        assert!(
            lines.iter().any(|l| l.starts_with("main;mul3 ")),
            "{folded}"
        );
        // Folded values are cycles and sum to the run total.
        let sum: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(sum, prof.result.cycles);
    }

    #[test]
    fn hottest_pcs_are_sorted_and_nonzero() {
        let cpu = call_heavy_cpu();
        let prof = cpu.profile();
        let hot = prof.pcs.hottest_pcs();
        assert!(!hot.is_empty());
        for w in hot.windows(2) {
            assert!(w[0].1.cycles >= w[1].1.cycles);
        }
        assert!(hot.iter().all(|(_, c)| c.insts > 0));
        // mul3's entry executes twice.
        let image = cpu.image();
        let mul3 = image.funcs.iter().find(|f| f.name == "mul3").unwrap();
        assert_eq!(prof.pcs.pcs[mul3.start].insts, 2);
    }
}
