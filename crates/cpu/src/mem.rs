//! Simulated memory: a global data segment plus a downward-growing stack.
//!
//! Addresses match the layout constants in `ferrum-mir`'s interpreter so
//! that pointer values printed by either executor would agree.  Memory is
//! byte-addressable and little-endian; accesses outside the two mapped
//! regions fault.

use ferrum_asm::reg::Width;

/// Base address of the global data segment.
pub const GLOBALS_BASE: u64 = 0x0001_0000;
/// Top of the stack (exclusive); the stack grows downward from here.
pub const STACK_TOP: u64 = 0x0800_0000;
/// Stack size in bytes.
pub const STACK_SIZE: u64 = 512 * 1024;

/// Byte-addressable little-endian memory.
#[derive(Debug, Clone)]
pub struct Memory {
    globals: Vec<u8>,
    stack: Vec<u8>,
    /// Lowest stack offset ever written — everything below is still the
    /// all-zero initial image, letting content compares walk only the
    /// touched suffix.  Monotonically decreasing; cloning (snapshot /
    /// restore) carries it with the bytes it describes.
    stack_low: usize,
}

/// A faulting access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessFault {
    /// The offending address.
    pub addr: u64,
}

impl Memory {
    /// Creates memory with the given global segment image.
    pub fn new(globals: Vec<u8>) -> Memory {
        Memory {
            globals,
            stack: vec![0; STACK_SIZE as usize],
            stack_low: STACK_SIZE as usize,
        }
    }

    /// Whether two memories hold identical contents.
    ///
    /// Stack bytes below a memory's own low-water mark have never been
    /// written since construction, so they are the all-zero initial
    /// image in both operands; the compare walks only the globals and
    /// the touched stack suffix.
    pub fn same_contents(&self, other: &Memory) -> bool {
        let wm = self.stack_low.min(other.stack_low);
        self.globals == other.globals && self.stack[wm..] == other.stack[wm..]
    }

    /// A clone that materializes the untouched stack prefix as fresh
    /// zero pages instead of copying it.
    ///
    /// Bytes below `stack_low` are the all-zero initial image (see the
    /// field invariant), so allocating them zeroed and copying only the
    /// touched suffix yields contents identical to [`Clone::clone`] —
    /// the decoded engine's snapshot capture uses this to keep the cost
    /// proportional to the stack actually in use.
    pub(crate) fn clone_compact(&self) -> Memory {
        let mut stack = vec![0u8; STACK_SIZE as usize];
        stack[self.stack_low..].copy_from_slice(&self.stack[self.stack_low..]);
        Memory {
            globals: self.globals.clone(),
            stack,
            stack_low: self.stack_low,
        }
    }

    /// In-place restore from `other`, reusing this memory's buffers.
    ///
    /// Copies the globals and the stack suffix above the lower of the
    /// two low-water marks; below that both stacks are still the
    /// all-zero initial image, so the result is byte-identical to
    /// `*self = other.clone()` without the 512 KiB allocation — the
    /// decoded engine's snapshot restore runs this once per injection.
    pub(crate) fn restore_from(&mut self, other: &Memory) {
        self.globals.clone_from(&other.globals);
        let wm = self.stack_low.min(other.stack_low);
        self.stack[wm..].copy_from_slice(&other.stack[wm..]);
        self.stack_low = other.stack_low;
    }

    /// Size of the global segment in bytes.
    pub fn globals_len(&self) -> u64 {
        self.globals.len() as u64
    }

    fn locate(&self, addr: u64, len: u64) -> Result<(bool, usize), AccessFault> {
        let gend = GLOBALS_BASE + self.globals.len() as u64;
        if addr >= GLOBALS_BASE && addr.saturating_add(len) <= gend {
            return Ok((true, (addr - GLOBALS_BASE) as usize));
        }
        let sbase = STACK_TOP - STACK_SIZE;
        if addr >= sbase && addr.saturating_add(len) <= STACK_TOP {
            return Ok((false, (addr - sbase) as usize));
        }
        Err(AccessFault { addr })
    }

    /// Loads `w.bytes()` little-endian bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Faults when the access leaves the mapped regions.
    pub fn load(&self, addr: u64, w: Width) -> Result<u64, AccessFault> {
        let n = w.bytes();
        let (is_g, off) = self.locate(addr, n)?;
        let buf = if is_g { &self.globals } else { &self.stack };
        let mut v = 0u64;
        for i in (0..n as usize).rev() {
            v = (v << 8) | u64::from(buf[off + i]);
        }
        Ok(v)
    }

    /// Word-at-a-time load used by the decoded engine's hot loop.
    ///
    /// Same mapping rules and little-endian layout as [`Memory::load`]
    /// (the byte-loop form stays as the reference implementation the
    /// interpreter executes), but reads whole words via
    /// `from_le_bytes`.
    pub(crate) fn load_w(&self, addr: u64, w: Width) -> Result<u64, AccessFault> {
        let n = w.bytes();
        let (is_g, off) = self.locate(addr, n)?;
        let buf = if is_g { &self.globals } else { &self.stack };
        Ok(match w {
            Width::W8 => u64::from(buf[off]),
            Width::W16 => u64::from(u16::from_le_bytes([buf[off], buf[off + 1]])),
            Width::W32 => {
                let mut b = [0u8; 4];
                b.copy_from_slice(&buf[off..off + 4]);
                u64::from(u32::from_le_bytes(b))
            }
            Width::W64 => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&buf[off..off + 8]);
                u64::from_le_bytes(b)
            }
        })
    }

    /// Word-at-a-time store used by the decoded engine's hot loop.
    ///
    /// Byte-identical effect to [`Memory::store`].
    pub(crate) fn store_w(&mut self, addr: u64, w: Width, value: u64) -> Result<(), AccessFault> {
        let n = w.bytes();
        let (is_g, off) = self.locate(addr, n)?;
        let buf = if is_g {
            &mut self.globals
        } else {
            self.stack_low = self.stack_low.min(off);
            &mut self.stack
        };
        match w {
            Width::W8 => buf[off] = value as u8,
            Width::W16 => buf[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            Width::W32 => buf[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes()),
            Width::W64 => buf[off..off + 8].copy_from_slice(&value.to_le_bytes()),
        }
        Ok(())
    }

    /// Stores the low `w.bytes()` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Faults when the access leaves the mapped regions.
    pub fn store(&mut self, addr: u64, w: Width, value: u64) -> Result<(), AccessFault> {
        let n = w.bytes();
        let (is_g, off) = self.locate(addr, n)?;
        let buf = if is_g {
            &mut self.globals
        } else {
            self.stack_low = self.stack_low.min(off);
            &mut self.stack
        };
        for i in 0..n as usize {
            buf[off + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }
}

/// Builds the global segment image from data objects, returning the
/// image and each object's base address in declaration order.
pub fn build_globals(data: &[ferrum_asm::program::DataObject]) -> (Vec<u8>, Vec<(String, u64)>) {
    let mut image = Vec::new();
    let mut bases = Vec::new();
    for d in data {
        bases.push((d.name.clone(), GLOBALS_BASE + image.len() as u64));
        for w in &d.words {
            image.extend_from_slice(&w.to_le_bytes());
        }
    }
    (image, bases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::program::DataObject;

    #[test]
    fn round_trip_at_all_widths() {
        let mut m = Memory::new(vec![0; 64]);
        for (w, val) in [
            (Width::W8, 0xabu64),
            (Width::W16, 0xbeefu64),
            (Width::W32, 0xdead_beefu64),
            (Width::W64, 0x0123_4567_89ab_cdefu64),
        ] {
            m.store(GLOBALS_BASE + 8, w, val).unwrap();
            assert_eq!(m.load(GLOBALS_BASE + 8, w).unwrap(), val);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(vec![0; 16]);
        m.store(GLOBALS_BASE, Width::W64, 0x0807_0605_0403_0201)
            .unwrap();
        assert_eq!(m.load(GLOBALS_BASE, Width::W8).unwrap(), 0x01);
        assert_eq!(m.load(GLOBALS_BASE + 7, Width::W8).unwrap(), 0x08);
        assert_eq!(m.load(GLOBALS_BASE, Width::W32).unwrap(), 0x0403_0201);
    }

    #[test]
    fn stack_region_is_mapped() {
        let mut m = Memory::new(vec![]);
        let addr = STACK_TOP - 8;
        m.store(addr, Width::W64, 77).unwrap();
        assert_eq!(m.load(addr, Width::W64).unwrap(), 77);
        let low = STACK_TOP - STACK_SIZE;
        m.store(low, Width::W64, 1).unwrap();
        assert!(m.store(low - 8, Width::W64, 1).is_err());
    }

    #[test]
    fn unmapped_access_faults() {
        let m = Memory::new(vec![0; 8]);
        assert!(m.load(0, Width::W64).is_err());
        assert!(m.load(GLOBALS_BASE + 8, Width::W64).is_err()); // past end
        assert!(m.load(GLOBALS_BASE + 4, Width::W64).is_err()); // straddles end
        assert_eq!(m.load(GLOBALS_BASE, Width::W64).unwrap(), 0);
    }

    #[test]
    fn unaligned_access_is_allowed_like_x86() {
        let mut m = Memory::new(vec![0; 32]);
        m.store(GLOBALS_BASE + 3, Width::W32, 0xaabb_ccdd).unwrap();
        assert_eq!(m.load(GLOBALS_BASE + 3, Width::W32).unwrap(), 0xaabb_ccdd);
    }

    #[test]
    fn word_fast_paths_agree_with_byte_loops() {
        let mut a = Memory::new(vec![0; 64]);
        let mut b = Memory::new(vec![0; 64]);
        for (w, val) in [
            (Width::W8, 0x5au64),
            (Width::W16, 0xbeefu64),
            (Width::W32, 0xdead_beefu64),
            (Width::W64, 0x0123_4567_89ab_cdefu64),
        ] {
            for addr in [GLOBALS_BASE + 3, STACK_TOP - 16] {
                a.store(addr, w, val).unwrap();
                b.store_w(addr, w, val).unwrap();
                assert_eq!(a.load(addr, w), b.load_w(addr, w));
                assert_eq!(a.load(addr, Width::W64), b.load(addr, Width::W64));
            }
        }
        // Faulting accesses fault identically.
        assert_eq!(a.load(0, Width::W64), a.load_w(0, Width::W64));
        assert_eq!(
            b.store(GLOBALS_BASE + 60, Width::W64, 1),
            b.store_w(GLOBALS_BASE + 60, Width::W64, 1)
        );
    }

    #[test]
    fn globals_image_layout() {
        let data = vec![
            DataObject::new("a", vec![1, 2]),
            DataObject::new("b", vec![-1]),
        ];
        let (image, bases) = build_globals(&data);
        assert_eq!(image.len(), 24);
        assert_eq!(bases[0], ("a".into(), GLOBALS_BASE));
        assert_eq!(bases[1], ("b".into(), GLOBALS_BASE + 16));
        let m = Memory::new(image);
        assert_eq!(m.load(GLOBALS_BASE + 8, Width::W64).unwrap(), 2);
        assert_eq!(m.load(GLOBALS_BASE + 16, Width::W64).unwrap(), u64::MAX);
    }
}
