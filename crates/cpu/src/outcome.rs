//! Run results and stop reasons.

use std::fmt;

/// Why a simulated crash occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// Memory access outside the mapped regions.
    OutOfBounds(u64),
    /// `idiv` by zero or quotient overflow (#DE).
    DivideError,
    /// Stack pointer left the stack region during push/pop/call.
    StackFault(u64),
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashKind::OutOfBounds(a) => write!(f, "segmentation fault at {a:#x}"),
            CrashKind::DivideError => write!(f, "integer divide error"),
            CrashKind::StackFault(a) => write!(f, "stack fault at {a:#x}"),
        }
    }
}

/// Why the simulation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// `main` returned normally.
    MainReturned,
    /// Control reached `exit_function`: a checker detected a mismatch.
    Detected,
    /// A hardware-style exception.
    Crash(CrashKind),
    /// The dynamic step budget was exhausted.
    Timeout,
}

impl StopReason {
    /// True if the run completed normally (output is meaningful).
    pub fn completed(self) -> bool {
        self == StopReason::MainReturned
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::MainReturned => write!(f, "completed"),
            StopReason::Detected => write!(f, "detected"),
            StopReason::Crash(k) => write!(f, "crash: {k}"),
            StopReason::Timeout => write!(f, "timeout"),
        }
    }
}

/// The result of one simulated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Values printed via `print_i64`, in order.
    pub output: Vec<i64>,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub dyn_insts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_predicate() {
        assert!(StopReason::MainReturned.completed());
        assert!(!StopReason::Detected.completed());
        assert!(!StopReason::Crash(CrashKind::DivideError).completed());
        assert!(!StopReason::Timeout.completed());
    }

    #[test]
    fn display_forms() {
        assert_eq!(StopReason::MainReturned.to_string(), "completed");
        assert_eq!(StopReason::Detected.to_string(), "detected");
        assert_eq!(
            StopReason::Crash(CrashKind::OutOfBounds(0x10)).to_string(),
            "crash: segmentation fault at 0x10"
        );
        assert_eq!(StopReason::Timeout.to_string(), "timeout");
    }
}
