//! Fault specification: a single bit flip at a chosen dynamic
//! instruction's write-back.
//!
//! This mirrors the paper's methodology (§IV-A2): sample one dynamically
//! executed instruction, flip one random bit in its destination register
//! (or, for `cmp`/`test`, in the RFLAGS bits they produce — the "New FI
//! Site" of Fig. 9), one fault per run.

/// A single-bit write-back fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Zero-based index into the dynamic instruction stream: the fault
    /// corrupts the destination of the `dyn_index`-th executed
    /// instruction, immediately after it writes back.
    pub dyn_index: u64,
    /// Raw entropy for choosing the bit; reduced modulo the destination
    /// width (64/32/16/8 for GPR views, 128/256 for SIMD, 4 for flags).
    /// Using a raw value keeps the spec independent of the destination's
    /// width, which the sampler may not know.
    pub raw_bit: u16,
}

impl FaultSpec {
    /// Creates a fault spec.
    pub fn new(dyn_index: u64, raw_bit: u16) -> FaultSpec {
        FaultSpec { dyn_index, raw_bit }
    }

    /// The bit to flip for a destination of `bits` width.
    pub fn bit_for(&self, bits: u32) -> u32 {
        u32::from(self.raw_bit) % bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reduction_is_uniform_for_power_of_two_widths() {
        // 65536 raw values distribute evenly over widths dividing 65536.
        for bits in [4u32, 8, 16, 32, 64, 128, 256] {
            let mut counts = vec![0u32; bits as usize];
            for raw in 0..=u16::MAX {
                counts[FaultSpec::new(0, raw).bit_for(bits) as usize] += 1;
            }
            let expect = 65536 / bits;
            assert!(counts.iter().all(|&c| c == expect), "width {bits}");
        }
    }

    #[test]
    fn accessors() {
        let f = FaultSpec::new(42, 7);
        assert_eq!(f.dyn_index, 42);
        assert_eq!(f.bit_for(4), 3);
    }
}
