//! # ferrum-cpu — architectural simulator for the `ferrum-asm` ISA
//!
//! Executes [`ferrum_asm::AsmProgram`]s with:
//!
//! * an architecturally faithful register file (sub-register write
//!   semantics, XMM/YMM aliasing, RFLAGS),
//! * byte-addressable memory split into a global data segment and a
//!   downward-growing stack,
//! * a configurable per-instruction-class [`cost::CostModel`] whose cycle
//!   counts stand in for the paper's wall-clock measurements,
//! * a single-fault write-back corruption hook ([`fault::FaultSpec`]):
//!   at a chosen dynamic instruction, one bit of the instruction's
//!   destination (register, RFLAGS, or SIMD register) is flipped right
//!   after write-back — the PINFI-style fault model of §IV-A2,
//! * run profiling ([`run::Cpu::profile`]) that enumerates every
//!   injectable dynamic fault site with its width and provenance, which
//!   the campaign sampler draws from,
//! * snapshot/restore execution ([`snapshot::Machine`]): the complete
//!   architectural state can be checkpointed at any instruction
//!   boundary and resumed, which campaign executors use to share the
//!   golden prefix across faulted runs instead of re-executing it.
//!
//! A transfer to the `exit_function` label stops the run with
//! [`outcome::StopReason::Detected`] — the paper's checker-fired event.
//!
//! ## Example
//!
//! ```
//! use ferrum_mir::builder::FunctionBuilder;
//! use ferrum_mir::module::Module;
//! use ferrum_mir::types::Ty;
//! use ferrum_cpu::run::Cpu;
//! use ferrum_cpu::outcome::StopReason;
//!
//! let mut b = FunctionBuilder::new("main", &[], None);
//! let v = b.iconst(Ty::I64, 41);
//! let one = b.iconst(Ty::I64, 1);
//! let s = b.add(Ty::I64, v, one);
//! b.print(s);
//! b.ret(None);
//! let module = Module::from_functions(vec![b.finish()]);
//! let asm = ferrum_backend::compile(&module).expect("compiles");
//! let cpu = Cpu::load(&asm).expect("loads");
//! let result = cpu.run(None);
//! assert_eq!(result.stop, StopReason::MainReturned);
//! assert_eq!(result.output, vec![42]);
//! ```

pub mod cost;
pub mod decoded;
pub mod differential;
pub mod exec;
pub mod fault;
pub mod image;
pub mod machine;
pub mod mem;
pub mod outcome;
pub mod profile;
pub mod run;
pub mod snapshot;
pub mod trace;

pub use cost::{CostClass, CostModel};
pub use decoded::{DecodedCpu, DecodedMachine};
pub use differential::{diff_regs, first_divergence, DiffLoc, MemDivergence, RegDiff};
pub use fault::FaultSpec;
pub use image::{FuncSpan, Image};
pub use outcome::{CrashKind, RunResult, StopReason};
pub use profile::{PcCount, PcProfile, ProfileBuilder};
pub use run::{Cpu, Profile, SiteInfo};
pub use snapshot::{Machine, Snapshot};
pub use trace::{Trace, TraceEntry, WroteValue};
