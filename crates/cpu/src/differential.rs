//! Differential-execution primitives: compare two lock-stepped runs of
//! the same image architecturally — which registers, SIMD lanes, flags,
//! memory bytes, and output entries disagree — without ever scanning
//! the full address space.
//!
//! The forensics engine (`ferrum_faultsim::forensics`) steps a golden
//! and a faulted [`crate::snapshot::Machine`] from the injection
//! boundary and uses these helpers to locate the first architectural
//! divergence and to track the live corruption set over time.  Memory
//! divergence is maintained *incrementally*: as long as both runs sit
//! at the same pc, only the bytes an instruction is about to write can
//! change the divergence set, so [`store_ranges`] predicts those
//! targets (in both states — effective addresses may themselves have
//! diverged) and [`MemDivergence::update`] re-compares exactly them.

use std::collections::BTreeSet;
use std::fmt;

use ferrum_asm::inst::Inst;
use ferrum_asm::operand::Operand;
use ferrum_asm::reg::{Gpr, Width, Zmm, ALL_GPRS};

use crate::exec::State;
use crate::image::{Image, TargetRef};
use crate::mem::Memory;

/// One architectural location where two executions disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffLoc {
    /// A general-purpose register.
    Gpr(Gpr),
    /// One 64-bit lane of a SIMD register unit.
    SimdLane {
        /// Register unit index (0..16).
        reg: u8,
        /// Lane index (0..8).
        lane: u8,
    },
    /// The RFLAGS register.
    Flags,
    /// One memory byte.
    Mem {
        /// Absolute byte address.
        addr: u64,
    },
    /// A program-output entry.
    Output {
        /// Index into the output buffer.
        index: usize,
    },
}

impl fmt::Display for DiffLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffLoc::Gpr(g) => write!(f, "{g}"),
            DiffLoc::SimdLane { reg, lane } => write!(f, "%zmm{reg}[{lane}]"),
            DiffLoc::Flags => write!(f, "rflags"),
            DiffLoc::Mem { addr } => write!(f, "mem[{addr:#x}]"),
            DiffLoc::Output { index } => write!(f, "output[{index}]"),
        }
    }
}

/// The live register-file divergence between two states.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegDiff {
    /// GPRs holding different 64-bit values.
    pub gprs: Vec<Gpr>,
    /// `(register unit, lane)` pairs of differing 64-bit SIMD lanes.
    pub simd_lanes: Vec<(u8, u8)>,
    /// Whether RFLAGS differ.
    pub flags: bool,
}

impl RegDiff {
    /// No live register divergence at all.
    pub fn is_empty(&self) -> bool {
        self.gprs.is_empty() && self.simd_lanes.is_empty() && !self.flags
    }

    /// Number of divergent register-file locations (flags count as one).
    pub fn count(&self) -> usize {
        self.gprs.len() + self.simd_lanes.len() + usize::from(self.flags)
    }
}

/// Compares the complete register files of two states.
pub fn diff_regs(a: &State, b: &State) -> RegDiff {
    let mut d = RegDiff::default();
    for g in ALL_GPRS {
        if a.regs.read64(g) != b.regs.read64(g) {
            d.gprs.push(g);
        }
    }
    for reg in 0..16u8 {
        let x = a.regs.read_zmm(Zmm::new(reg));
        let y = b.regs.read_zmm(Zmm::new(reg));
        for lane in 0..8u8 {
            if x[lane as usize] != y[lane as usize] {
                d.simd_lanes.push((reg, lane));
            }
        }
    }
    d.flags = a.regs.flags != b.regs.flags;
    d
}

/// Byte ranges `(address, length)` the instruction at `st.pc` will
/// write to memory when stepped from `st`.  Over-approximates for
/// zero-amount shifts (which architecturally leave memory unchanged —
/// harmless here, since re-comparing equal bytes is a no-op).
pub fn store_ranges(image: &Image, st: &State) -> Vec<(u64, u64)> {
    let li = &image.insts[st.pc];
    let mut out = Vec::new();
    let mut mem_dst = |dst: &Operand, w: Width| {
        if let Operand::Mem(m) = dst {
            out.push((st.ea(m), w.bytes()));
        }
    };
    match &li.inst {
        Inst::Mov { w, dst, .. }
        | Inst::Alu { w, dst, .. }
        | Inst::Unary { w, dst, .. }
        | Inst::Shift { w, dst, .. } => mem_dst(dst, *w),
        Inst::Setcc { dst, .. } => mem_dst(dst, Width::W8),
        Inst::Push { .. } => out.push((st.regs.read64(Gpr::Rsp).wrapping_sub(8), 8)),
        Inst::Call { .. } => {
            // Only intra-image calls spill a return slot; `print_i64`
            // and `exit_function` are modelled without stack traffic.
            if let TargetRef::Index(_) = li.target {
                out.push((st.regs.read64(Gpr::Rsp).wrapping_sub(8), 8));
            }
        }
        _ => {}
    }
    out
}

/// Byte ranges `(address, length)` the instruction at `st.pc` will
/// read from memory when stepped from `st`.
pub fn load_ranges(image: &Image, st: &State) -> Vec<(u64, u64)> {
    let li = &image.insts[st.pc];
    let mut out = Vec::new();
    let mut mem_op = |op: &Operand, w: Width| {
        if let Operand::Mem(m) = op {
            out.push((st.ea(m), w.bytes()));
        }
    };
    match &li.inst {
        Inst::Mov { w, src, .. } | Inst::Idiv { w, src } | Inst::Imul { w, src, .. } => {
            mem_op(src, *w)
        }
        Inst::Movsx { src_w, src, .. } | Inst::Movzx { src_w, src, .. } => mem_op(src, *src_w),
        // Read-modify-write destinations.
        Inst::Alu { w, src, dst, .. } => {
            mem_op(src, *w);
            mem_op(dst, *w);
        }
        Inst::Unary { w, dst, .. } | Inst::Shift { w, dst, .. } => mem_op(dst, *w),
        Inst::Cmp { w, src, dst } | Inst::Test { w, src, dst } => {
            mem_op(src, *w);
            mem_op(dst, *w);
        }
        Inst::Push { src } => mem_op(src, Width::W64),
        Inst::Pop { .. } => out.push((st.regs.read64(Gpr::Rsp), 8)),
        Inst::Ret => out.push((st.regs.read64(Gpr::Rsp), 8)),
        Inst::MovqToXmm { src, .. } | Inst::Pinsrq { src, .. } => mem_op(src, Width::W64),
        _ => {}
    }
    out
}

/// Incrementally maintained set of memory byte addresses at which two
/// executions disagree.
///
/// Callers feed it the union of both runs' [`store_ranges`] right
/// after each lock step; bytes that re-converge are removed, so the
/// set always reflects the *live* memory divergence.
#[derive(Debug, Clone, Default)]
pub struct MemDivergence {
    bytes: BTreeSet<u64>,
}

impl MemDivergence {
    /// An empty divergence set (two identical memories).
    pub fn new() -> MemDivergence {
        MemDivergence::default()
    }

    /// Re-compares the given byte ranges between the two memories,
    /// inserting bytes that differ and clearing bytes that agree again.
    pub fn update(&mut self, a: &Memory, b: &Memory, ranges: &[(u64, u64)]) {
        for &(addr, len) in ranges {
            for i in 0..len {
                let p = addr.wrapping_add(i);
                // Out-of-bounds probes compare as equal-and-unmapped.
                let va = a.load(p, Width::W8).ok();
                let vb = b.load(p, Width::W8).ok();
                if va == vb {
                    self.bytes.remove(&p);
                } else {
                    self.bytes.insert(p);
                }
            }
        }
    }

    /// Number of currently divergent bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the two memories agree everywhere ever compared.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Whether the byte at `addr` currently diverges.
    pub fn contains(&self, addr: u64) -> bool {
        self.bytes.contains(&addr)
    }

    /// Whether any byte of the given ranges currently diverges.
    pub fn overlaps(&self, ranges: &[(u64, u64)]) -> bool {
        ranges.iter().any(|&(addr, len)| {
            self.bytes
                .range(addr..addr.wrapping_add(len))
                .next()
                .is_some()
        })
    }

    /// The divergent addresses in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.bytes.iter().copied()
    }
}

/// The first architectural difference between two states, in a fixed
/// priority order (GPRs by index, then SIMD lanes, flags, memory, and
/// output) so the location reported for a given divergence is
/// deterministic.
pub fn first_divergence(a: &State, b: &State, mem: &MemDivergence) -> Option<DiffLoc> {
    let rd = diff_regs(a, b);
    if let Some(&g) = rd.gprs.first() {
        return Some(DiffLoc::Gpr(g));
    }
    if let Some(&(reg, lane)) = rd.simd_lanes.first() {
        return Some(DiffLoc::SimdLane { reg, lane });
    }
    if rd.flags {
        return Some(DiffLoc::Flags);
    }
    if let Some(addr) = mem.iter().next() {
        return Some(DiffLoc::Mem { addr });
    }
    if a.output != b.output {
        let index = a
            .output
            .iter()
            .zip(&b.output)
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.output.len().min(b.output.len()));
        return Some(DiffLoc::Output { index });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSpec;
    use crate::run::Cpu;
    use crate::snapshot::Machine;
    use ferrum_asm::inst::AluOp;
    use ferrum_asm::operand::MemRef;
    use ferrum_asm::program::single_block_main;
    use ferrum_asm::reg::Reg;

    fn store_cpu() -> Cpu {
        // rax = 7; push rax; mem[rsp] += 1; pop rbx
        let p = single_block_main(vec![
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                src: Operand::Imm(1),
                dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, 0)),
            },
            Inst::Pop {
                dst: Operand::Reg(Reg::q(Gpr::Rbx)),
            },
        ]);
        Cpu::load(&p).unwrap()
    }

    #[test]
    fn identical_states_have_no_divergence() {
        let cpu = store_cpu();
        let a = Machine::new(&cpu);
        let b = Machine::new(&cpu);
        let mem = MemDivergence::new();
        assert!(diff_regs(a.state(), b.state()).is_empty());
        assert_eq!(first_divergence(a.state(), b.state(), &mem), None);
    }

    #[test]
    fn a_flipped_gpr_is_located() {
        let cpu = store_cpu();
        let golden = Machine::new(&cpu);
        let mut faulty = golden.clone();
        // Flip bit 3 of the first mov's destination (%rax).
        faulty.state_mut().regs.flip_gpr_bit(Reg::q(Gpr::Rax), 3);
        let d = diff_regs(golden.state(), faulty.state());
        assert_eq!(d.gprs, vec![Gpr::Rax]);
        assert_eq!(d.count(), 1);
        assert_eq!(
            first_divergence(golden.state(), faulty.state(), &MemDivergence::new()),
            Some(DiffLoc::Gpr(Gpr::Rax))
        );
    }

    #[test]
    fn store_and_load_ranges_cover_stack_traffic() {
        let cpu = store_cpu();
        let mut m = Machine::new(&cpu);
        m.step(); // mov
        let rsp = m.state().regs.read64(Gpr::Rsp);
        // push writes 8 bytes below rsp
        assert_eq!(store_ranges(cpu.image(), m.state()), vec![(rsp - 8, 8)]);
        m.step(); // push
        // add $1, (%rsp): RMW — reads and writes the slot
        assert_eq!(store_ranges(cpu.image(), m.state()), vec![(rsp - 8, 8)]);
        assert!(load_ranges(cpu.image(), m.state()).contains(&(rsp - 8, 8)));
        m.step(); // add
        // pop reads the slot back
        assert_eq!(load_ranges(cpu.image(), m.state()), vec![(rsp - 8, 8)]);
    }

    #[test]
    fn mem_divergence_tracks_corrupted_stores_and_reconvergence() {
        let cpu = store_cpu();
        let fault = FaultSpec::new(0, 3); // corrupt %rax after the mov
        let mut golden = Machine::new(&cpu);
        let mut faulty = Machine::new(&cpu);
        golden.step();
        faulty.step_faulted(&[fault]);
        let mut mem = MemDivergence::new();

        // The push stores the corrupted value: one range, 8 bytes, and
        // the divergence set picks up the differing byte.
        let mut ranges = store_ranges(cpu.image(), golden.state());
        ranges.extend(store_ranges(cpu.image(), faulty.state()));
        golden.step();
        faulty.step();
        mem.update(&golden.state().mem, &faulty.state().mem, &ranges);
        assert_eq!(mem.len(), 1, "bit 3 corrupts exactly one byte");
        let addr = mem.iter().next().unwrap();
        assert!(mem.contains(addr));
        assert!(mem.overlaps(&[(addr, 1)]));
        assert!(!mem.overlaps(&[(addr + 1, 4)]));

        // Writing the same value to both sides re-converges the byte.
        golden.state_mut().mem.store(addr, Width::W8, 0).unwrap();
        faulty.state_mut().mem.store(addr, Width::W8, 0).unwrap();
        mem.update(&golden.state().mem, &faulty.state().mem, &[(addr, 1)]);
        assert!(mem.is_empty());
    }

    #[test]
    fn output_divergence_is_last_resort() {
        let cpu = store_cpu();
        let mut a = Machine::new(&cpu);
        let b = Machine::new(&cpu);
        a.state_mut().output.push(9);
        assert_eq!(
            first_divergence(a.state(), b.state(), &MemDivergence::new()),
            Some(DiffLoc::Output { index: 0 })
        );
        assert_eq!(format!("{}", DiffLoc::Output { index: 0 }), "output[0]");
        assert_eq!(format!("{}", DiffLoc::Gpr(Gpr::Rax)), "%rax");
    }
}
