//! Decode-once flattened execution: the campaign-throughput engine.
//!
//! Every campaign engine bottoms out in [`crate::exec::step`], which
//! re-matches heap-carrying operand enums, re-resolves widths, and
//! re-prices the cost model on every dynamic instruction — even though
//! a campaign executes the same basic blocks millions of times.
//! [`DecodedCpu`] lowers a loaded [`Image`] **once** into a dense
//! flattened program (the `InstInfo { src_regs, out_regs, cycle }`
//! decode-once shape of DSVita's JIT; see SNIPPETS Snippet 1):
//!
//! * operands pre-resolved to width-applied registers, pre-masked
//!   immediates, and factor-multiplied address expressions ([`DMem`]) —
//!   no per-step `with_width`/`Scale::factor`/symbol plumbing;
//! * branch/call targets pre-resolved to flat indices (including the
//!   `exit_function` detection edge) — no [`TargetRef`] re-match;
//! * the per-instruction cycle cost (provenance discount included)
//!   baked in at lowering — no per-step [`CostModel`] dispatch;
//! * the fault-injection destination pre-classified ([`DFault`]) along
//!   with its eligible bit width — no per-step `dest_class` walk;
//! * the hot protection idioms (dup pairs, `pinsrq` pairs, and the
//!   `vpxor`+`vptest`+`jcc` checker triple) fused into
//!   superinstructions dispatched as one unit inside fault-free
//!   windows.
//!
//! Byte-identity contract: [`DecodedCpu`] exposes the full [`Cpu`]
//! surface (`run`, `run_multi`, `resume`, `profile`, plus
//! [`DecodedMachine`] with snapshot/restore), and every observable —
//! [`RunResult`]s, [`Profile`]s, [`Snapshot`] states — is
//! byte-identical to the interpreter's for the same program and
//! faults.  The lowering is a bijection on semantics: each [`DOp`]
//! mirrors one `exec::step` arm exactly (same read/write order, same
//! crash precedence, same flag updates), fused groups only ever
//! replace runs that contain no leader (jump target) in their interior
//! and no crash-capable constituent before the final instruction, and
//! the tight loop only dispatches a fused group when the whole group
//! fits below the next fault/timeout boundary.  `tests/` and the
//! `ferrum-cpu --selfcheck` catalog sweep pin the contract.

use ferrum_asm::flags::{Cc, FlagBit, Flags};
use ferrum_asm::inst::{AluOp, DestClass, Inst, RegMasks, ShiftAmount, ShiftOp, UnaryOp};
use ferrum_asm::operand::{MemRef, Operand};
use ferrum_asm::provenance::Provenance;
use ferrum_asm::reg::{Gpr, Reg, Width, Xmm, Ymm, Zmm};

use crate::cost::CostModel;
use crate::exec::{eligible_dest_bits, State, StepEvent};
use crate::fault::FaultSpec;
use crate::image::{Image, LoadedInst, TargetRef};
use crate::machine::RegFile;
use crate::outcome::{CrashKind, RunResult, StopReason};
use crate::profile::ProfileBuilder;
use crate::run::{Cpu, MechCounts, Profile, ProvCounts, SiteInfo};
use crate::snapshot::Snapshot;

/// Pre-resolved memory operand: absolute displacement, optional base,
/// and the index register with its scale factor already multiplied out.
#[derive(Debug, Clone, Copy)]
struct DMem {
    disp: u64,
    base: Option<Gpr>,
    index: Option<(Gpr, u64)>,
}

impl DMem {
    fn lower(m: &MemRef) -> DMem {
        debug_assert!(m.symbol.is_none(), "symbols resolved at image load");
        DMem {
            disp: m.disp as u64,
            base: m.base,
            index: m.index.map(|(g, s)| (g, s.factor())),
        }
    }

    #[inline]
    fn ea(&self, regs: &RegFile) -> u64 {
        let mut a = self.disp;
        if let Some(b) = self.base {
            a = a.wrapping_add(regs.read64(b));
        }
        if let Some((i, f)) = self.index {
            a = a.wrapping_add(regs.read64(i).wrapping_mul(f));
        }
        a
    }
}

/// Crash-free pre-resolved value source (register view or pre-masked
/// immediate) — the operand form fused superinstructions require.
#[derive(Debug, Clone, Copy)]
enum DVal {
    Reg(Reg),
    Imm(u64),
}

#[inline]
fn read_val(st: &State, v: &DVal) -> u64 {
    match v {
        DVal::Reg(r) => st.regs.read(*r),
        DVal::Imm(v) => *v,
    }
}

/// Pre-resolved source operand.
#[derive(Debug, Clone, Copy)]
enum DSrc {
    Reg(Reg),
    Imm(u64),
    Mem(DMem),
}

impl DSrc {
    fn lower(op: &Operand, w: Width) -> DSrc {
        match op {
            Operand::Reg(r) => DSrc::Reg(r.with_width(w)),
            Operand::Imm(v) => DSrc::Imm((*v as u64) & w.mask()),
            Operand::Mem(m) => DSrc::Mem(DMem::lower(m)),
        }
    }

    fn as_val(&self) -> Option<DVal> {
        match self {
            DSrc::Reg(r) => Some(DVal::Reg(*r)),
            DSrc::Imm(v) => Some(DVal::Imm(*v)),
            DSrc::Mem(_) => None,
        }
    }
}

/// Pre-resolved destination operand.
#[derive(Debug, Clone, Copy)]
enum DDst {
    Reg(Reg),
    Mem(DMem),
}

impl DDst {
    fn lower(op: &Operand, w: Width) -> DDst {
        match op {
            Operand::Reg(r) => DDst::Reg(r.with_width(w)),
            Operand::Mem(m) => DDst::Mem(DMem::lower(m)),
            Operand::Imm(_) => unreachable!("immediate destination"),
        }
    }
}

#[inline]
fn read_src(st: &State, s: &DSrc, w: Width) -> Result<u64, CrashKind> {
    match s {
        DSrc::Reg(r) => Ok(st.regs.read(*r)),
        DSrc::Imm(v) => Ok(*v),
        DSrc::Mem(m) => st
            .mem
            .load_w(m.ea(&st.regs), w)
            .map_err(|f| CrashKind::OutOfBounds(f.addr)),
    }
}

#[inline]
fn read_dst(st: &State, d: &DDst, w: Width) -> Result<u64, CrashKind> {
    match d {
        DDst::Reg(r) => Ok(st.regs.read(*r)),
        DDst::Mem(m) => st
            .mem
            .load_w(m.ea(&st.regs), w)
            .map_err(|f| CrashKind::OutOfBounds(f.addr)),
    }
}

#[inline]
fn write_dst(st: &mut State, d: &DDst, w: Width, v: u64) -> Result<(), CrashKind> {
    match d {
        DDst::Reg(r) => {
            st.regs.write(*r, v);
            Ok(())
        }
        DDst::Mem(m) => st
            .mem
            .store_w(m.ea(&st.regs), w, v)
            .map_err(|f| CrashKind::OutOfBounds(f.addr)),
    }
}

/// One flattened operation.  Each variant mirrors exactly one
/// `exec::step` arm; register operands are pre-width-applied and
/// control targets pre-resolved.
#[derive(Debug, Clone, Copy)]
enum DOp {
    Nop,
    Mov { w: Width, src: DSrc, dst: DDst },
    Movsx { src_w: Width, src: DSrc, dst: Reg },
    Movzx { src_w: Width, src: DSrc, dst: Reg },
    Lea { mem: DMem, dst: Reg },
    Alu { op: AluOp, w: Width, src: DSrc, dst: DDst },
    Imul { w: Width, src: DSrc, dst: Reg },
    Unary { op: UnaryOp, w: Width, dst: DDst },
    Shift { op: ShiftOp, w: Width, amount: ShiftAmount, dst: DDst },
    Cqo { w: Width },
    Idiv { w: Width, src: DSrc },
    Cmp { w: Width, src: DSrc, dst: DSrc },
    Test { w: Width, src: DSrc, dst: DSrc },
    Setcc { cc: Cc, dst: DDst },
    Jmp { t: usize },
    JmpExit,
    Jcc { cc: Cc, t: usize },
    JccExit { cc: Cc },
    Call { t: usize },
    CallPrint,
    CallExit,
    Ret,
    Push { src: DSrc },
    Pop { dst: DDst },
    MovqToXmm { src: DSrc, dst: Xmm },
    MovqFromXmm { src: Xmm, dst: Reg },
    Pinsrq { lane: u8, src: DSrc, dst: Xmm },
    Pextrq { lane: u8, src: Xmm, dst: Reg },
    Vinserti128 { lane: u8, src: Xmm, src2: Ymm, dst: Ymm },
    VpxorY { a: Ymm, b: Ymm, dst: Ymm },
    VptestY { a: Ymm, b: Ymm },
    VpxorX { a: Xmm, b: Xmm, dst: Xmm },
    VptestX { a: Xmm, b: Xmm },
    Vinserti64x4 { lane: u8, src: Ymm, src2: Zmm, dst: Zmm },
    VpxorZ { a: Zmm, b: Zmm, dst: Zmm },
    VptestZ { a: Zmm, b: Zmm },
}

/// Pre-classified fault destination — `exec::apply_fault` without the
/// per-injection `dest_class` walk.
#[derive(Debug, Clone, Copy)]
enum DFault {
    None,
    Gpr(Reg),
    Pair(Width),
    Flags,
    Simd { idx: u8, bits: u16 },
}

#[inline]
fn apply_dfault(f: DFault, raw_bit: u16, st: &mut State) {
    match f {
        DFault::None => {}
        DFault::Gpr(r) => st.regs.flip_gpr_bit(r, u32::from(raw_bit) % r.width.bits()),
        DFault::Pair(w) => {
            let bits = w.bits();
            let sel = u32::from(raw_bit) % (2 * bits);
            let (g, bit) = if sel < bits {
                (Gpr::Rax, sel)
            } else {
                (Gpr::Rdx, sel - bits)
            };
            st.regs.flip_gpr_bit(Reg::gpr(g, w), bit);
        }
        DFault::Flags => {
            let bit = FlagBit::ALL[usize::from(raw_bit) % 4];
            st.regs.flags.flip(bit);
        }
        DFault::Simd { idx, bits } => st
            .regs
            .flip_simd_bit(idx, u32::from(raw_bit) % u32::from(bits)),
    }
}

/// One decoded instruction with everything the hot loop needs
/// pre-computed.
#[derive(Debug, Clone)]
struct DInst {
    op: DOp,
    prov: Provenance,
    /// Cycle cost under the decode-time [`CostModel`], provenance
    /// discount included.
    cost: u64,
    /// Injectable destination width in bits; 0 when not a fault site.
    eligible: u16,
    /// True when the injectable destination is RFLAGS.
    is_flags: bool,
    fault: DFault,
    /// Compact src/out register touch sets ([`Inst::reg_masks`]),
    /// decoded once — consumed by the fault-propagation summary builder
    /// and by the masked golden-trace convergence compare.
    masks: RegMasks,
    /// Index into the fused-group table when this instruction leads a
    /// superinstruction; `u32::MAX` otherwise.
    fuse: u32,
}

/// Resolved control target of a fused checker.
#[derive(Debug, Clone, Copy)]
enum FTarget {
    Index(usize),
    Exit,
}

/// A fused superinstruction — the hot dup/check idioms of protected
/// code dispatched as one unit.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)]
enum FOp {
    /// Two consecutive `movq`-to-XMM duplications with crash-free
    /// sources.
    Dup2 { s1: DVal, d1: Xmm, s2: DVal, d2: Xmm },
    /// Two consecutive `pinsrq` lane captures with crash-free sources.
    Pinsr2 { l1: u8, s1: DVal, d1: Xmm, l2: u8, s2: DVal, d2: Xmm },
    /// `vpxor` + `vptest` + `jcc`: the 128-bit checker tail.
    CheckX { a: Xmm, b: Xmm, dst: Xmm, ta: Xmm, tb: Xmm, cc: Cc, t: FTarget },
    /// The 256-bit checker tail (Fig. 6's batch check).
    CheckY { a: Ymm, b: Ymm, dst: Ymm, ta: Ymm, tb: Ymm, cc: Cc, t: FTarget },
    /// The 512-bit checker tail.
    CheckZ { a: Zmm, b: Zmm, dst: Zmm, ta: Zmm, tb: Zmm, cc: Cc, t: FTarget },
}

/// A fused group: its operation, constituent count, and summed cost.
#[derive(Debug, Clone, Copy)]
struct DFused {
    op: FOp,
    len: u8,
    cost: u64,
}

const NO_FUSE: u32 = u32::MAX;

/// A [`Cpu`] lowered once into a flattened program.
///
/// Construction clones the source `Cpu` (images are loaded once per
/// campaign; the clone keeps lifetimes simple) and bakes in its cost
/// model, so later cost-model changes require re-decoding.
#[derive(Debug, Clone)]
pub struct DecodedCpu {
    cpu: Cpu,
    code: Vec<DInst>,
    fused: Vec<DFused>,
    /// GPRs any instruction writes or any fault can corrupt (bit per
    /// [`Gpr::index`](ferrum_asm::reg::Gpr::index)).  Registers outside
    /// this mask keep their load-time value in every run of the
    /// program, so state compares may skip them.
    touched_gpr: u16,
    /// SIMD registers any instruction writes or any fault can corrupt.
    touched_simd: u16,
}

impl DecodedCpu {
    /// Lowers `cpu`'s loaded image into a flattened program.
    pub fn new(cpu: &Cpu) -> DecodedCpu {
        let (code, fused) = lower(cpu);
        let mut touched_gpr = 0u16;
        let mut touched_simd = 0u16;
        for d in &code {
            touched_gpr |= d.masks.out_gpr;
            touched_simd |= d.masks.out_simd;
            match d.fault {
                DFault::Gpr(r) => touched_gpr |= 1 << r.gpr.index(),
                DFault::Pair(_) => {
                    touched_gpr |= (1 << Gpr::Rax.index()) | (1 << Gpr::Rdx.index());
                }
                DFault::Simd { idx, .. } => touched_simd |= 1 << idx,
                DFault::Flags | DFault::None => {}
            }
        }
        DecodedCpu {
            cpu: cpu.clone(),
            code,
            fused,
            touched_gpr,
            touched_simd,
        }
    }

    /// The decoded src/out register masks of the instruction at `pc`.
    pub fn masks_at(&self, pc: usize) -> RegMasks {
        self.code[pc].masks
    }

    /// Program-level `(gpr, simd)` union of every instruction's output
    /// mask and every fault destination — the registers a run of this
    /// program can ever modify.
    pub fn touched_registers(&self) -> (u16, u16) {
        (self.touched_gpr, self.touched_simd)
    }

    /// The underlying interpreter-facing [`Cpu`].
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The loaded image.
    pub fn image(&self) -> &Image {
        self.cpu.image()
    }

    /// The cost model baked into the lowering.
    pub fn cost_model(&self) -> &CostModel {
        self.cpu.cost_model()
    }

    /// The active step limit.
    pub fn step_limit(&self) -> u64 {
        self.cpu.step_limit()
    }

    /// Number of fused superinstruction groups in the program.
    pub fn superinstructions(&self) -> usize {
        self.fused.len()
    }

    /// Runs the program, optionally injecting one fault.
    pub fn run(&self, fault: Option<FaultSpec>) -> RunResult {
        match fault {
            Some(f) => self.run_multi(&[f]),
            None => self.run_multi(&[]),
        }
    }

    /// Runs the program injecting every fault in `faults`.
    pub fn run_multi(&self, faults: &[FaultSpec]) -> RunResult {
        DecodedMachine::new(self).run_to_completion(faults)
    }

    /// Resumes execution from a [`Snapshot`] (interchangeable with the
    /// interpreter's — both machines execute over the same [`State`]).
    pub fn resume(&self, snap: &Snapshot, faults: &[FaultSpec]) -> RunResult {
        let mut m = DecodedMachine::new(self);
        m.restore(snap);
        m.run_to_completion(faults)
    }

    /// [`DecodedCpu::resume`] with the golden-trace convergence
    /// short-circuit: once every fault has been applied, the run is
    /// compared against the fault-free run's `checkpoints` (snapshots
    /// taken along the golden execution, ascending in dynamic index)
    /// whenever it crosses one's dynamic index, and on an exact
    /// architectural-state match the remainder of the result is
    /// stitched from `golden` (the fault-free [`RunResult`]) instead of
    /// being re-executed.  See [`DecodedMachine::run_converging`] for
    /// the identity argument.  Campaigns spend most of their samples on
    /// faults that die quickly — a flipped bit overwritten before it is
    /// read — so this turns the typical post-fault suffix from a full
    /// re-execution into a short run plus one state compare.
    pub fn resume_converging(
        &self,
        snap: &Snapshot,
        faults: &[FaultSpec],
        checkpoints: &[Snapshot],
        golden: &RunResult,
    ) -> RunResult {
        let mut m = DecodedMachine::new(self);
        m.restore(snap);
        m.run_converging(faults, checkpoints, golden)
    }

    /// [`DecodedCpu::run_multi`] with the golden-trace convergence
    /// short-circuit of [`DecodedCpu::resume_converging`].
    pub fn run_converging(
        &self,
        faults: &[FaultSpec],
        checkpoints: &[Snapshot],
        golden: &RunResult,
    ) -> RunResult {
        DecodedMachine::new(self).run_converging(faults, checkpoints, golden)
    }

    /// Runs fault-free while recording every injectable dynamic site.
    /// Byte-identical to [`Cpu::profile`] on the same program.
    pub fn profile(&self) -> Profile {
        let mut st = State::new(self.cpu.image());
        let mut cycles = 0u64;
        let mut n = 0u64;
        let mut sites = Vec::new();
        let mut prov_counts = ProvCounts::default();
        let mut mech_counts = MechCounts::default();
        let mut pcs = ProfileBuilder::new(self.cpu.image());
        loop {
            if n >= self.cpu.step_limit() {
                return Profile {
                    sites,
                    prov_counts,
                    mech_counts,
                    pcs: pcs.finish(),
                    result: RunResult {
                        stop: StopReason::Timeout,
                        output: st.output,
                        cycles,
                        dyn_insts: n,
                    },
                };
            }
            let pc = st.pc;
            let d = &self.code[pc];
            match d.prov {
                Provenance::FromIr(_) => prov_counts.from_ir += 1,
                Provenance::Glue(_) => prov_counts.glue += 1,
                Provenance::Protection(..) => prov_counts.protection += 1,
                Provenance::Synthetic => prov_counts.synthetic += 1,
            }
            if d.eligible != 0 {
                sites.push(SiteInfo {
                    dyn_index: n,
                    pc,
                    prov: d.prov,
                    is_flags: d.is_flags,
                    bits: u32::from(d.eligible),
                });
            }
            let ev = exec_dop(&d.op, &mut st);
            cycles += d.cost;
            if let Some(m) = d.prov.mechanism() {
                mech_counts.add(m, d.cost);
            }
            pcs.record(pc, d.cost);
            match d.op {
                DOp::Call { t } => pcs.enter(t),
                DOp::Ret => pcs.leave(),
                _ => {}
            }
            n += 1;
            if let StepEvent::Stop(stop) = ev {
                return Profile {
                    sites,
                    prov_counts,
                    mech_counts,
                    pcs: pcs.finish(),
                    result: RunResult {
                        stop,
                        output: st.output,
                        cycles,
                        dyn_insts: n,
                    },
                };
            }
        }
    }
}

fn lower(cpu: &Cpu) -> (Vec<DInst>, Vec<DFused>) {
    let image = cpu.image();
    let cost = cpu.cost_model();
    let mut code: Vec<DInst> = image
        .insts
        .iter()
        .map(|li| lower_inst(li, cost))
        .collect();

    // Leaders: indices control flow can land on.  A fused group must
    // not span one — a jump into its interior would observe a state the
    // group never materialises.
    let mut leader = vec![false; code.len()];
    if image.entry < leader.len() {
        leader[image.entry] = true;
    }
    for (pc, li) in image.insts.iter().enumerate() {
        if let TargetRef::Index(t) = li.target {
            leader[t] = true;
        }
        // `ret` jumps to the fall-through of the matching call.
        if matches!(li.inst, Inst::Call { .. })
            && matches!(li.target, TargetRef::Index(_))
            && pc + 1 < leader.len()
        {
            leader[pc + 1] = true;
        }
    }

    let mut fused: Vec<DFused> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if let Some(g) = try_fuse(&code, &leader, i) {
            code[i].fuse = fused.len() as u32;
            let len = usize::from(g.len);
            fused.push(g);
            i += len;
        } else {
            i += 1;
        }
    }
    (code, fused)
}

fn lower_inst(li: &LoadedInst, cost: &CostModel) -> DInst {
    let inst = &li.inst;
    let op = match inst {
        Inst::Nop => DOp::Nop,
        Inst::Mov { w, src, dst } => DOp::Mov {
            w: *w,
            src: DSrc::lower(src, *w),
            dst: DDst::lower(dst, *w),
        },
        Inst::Movsx {
            src_w,
            dst_w,
            src,
            dst,
        } => DOp::Movsx {
            src_w: *src_w,
            src: DSrc::lower(src, *src_w),
            dst: dst.with_width(*dst_w),
        },
        Inst::Movzx {
            src_w,
            dst_w,
            src,
            dst,
        } => DOp::Movzx {
            src_w: *src_w,
            src: DSrc::lower(src, *src_w),
            dst: dst.with_width(*dst_w),
        },
        Inst::Lea { mem, dst } => DOp::Lea {
            mem: DMem::lower(mem),
            dst: dst.with_width(Width::W64),
        },
        Inst::Alu { op, w, src, dst } => DOp::Alu {
            op: *op,
            w: *w,
            src: DSrc::lower(src, *w),
            dst: DDst::lower(dst, *w),
        },
        Inst::Imul { w, src, dst } => DOp::Imul {
            w: *w,
            src: DSrc::lower(src, *w),
            dst: dst.with_width(*w),
        },
        Inst::Unary { op, w, dst } => DOp::Unary {
            op: *op,
            w: *w,
            dst: DDst::lower(dst, *w),
        },
        Inst::Shift { op, w, amount, dst } => DOp::Shift {
            op: *op,
            w: *w,
            amount: *amount,
            dst: DDst::lower(dst, *w),
        },
        Inst::Cqo { w } => DOp::Cqo { w: *w },
        Inst::Idiv { w, src } => DOp::Idiv {
            w: *w,
            src: DSrc::lower(src, *w),
        },
        Inst::Cmp { w, src, dst } => DOp::Cmp {
            w: *w,
            src: DSrc::lower(src, *w),
            dst: DSrc::lower(dst, *w),
        },
        Inst::Test { w, src, dst } => DOp::Test {
            w: *w,
            src: DSrc::lower(src, *w),
            dst: DSrc::lower(dst, *w),
        },
        Inst::Setcc { cc, dst } => DOp::Setcc {
            cc: *cc,
            dst: DDst::lower(dst, Width::W8),
        },
        Inst::Jmp { .. } => match li.target {
            TargetRef::Index(t) => DOp::Jmp { t },
            TargetRef::Exit => DOp::JmpExit,
            _ => unreachable!("jmp target resolved at load"),
        },
        Inst::Jcc { cc, .. } => match li.target {
            TargetRef::Index(t) => DOp::Jcc { cc: *cc, t },
            TargetRef::Exit => DOp::JccExit { cc: *cc },
            _ => unreachable!("jcc target resolved at load"),
        },
        Inst::Call { .. } => match li.target {
            TargetRef::Index(t) => DOp::Call { t },
            TargetRef::Print => DOp::CallPrint,
            TargetRef::Exit => DOp::CallExit,
            TargetRef::None => unreachable!("call target resolved at load"),
        },
        Inst::Ret => DOp::Ret,
        Inst::Push { src } => DOp::Push {
            src: DSrc::lower(src, Width::W64),
        },
        Inst::Pop { dst } => DOp::Pop {
            dst: DDst::lower(dst, Width::W64),
        },
        Inst::MovqToXmm { src, dst } => DOp::MovqToXmm {
            src: DSrc::lower(src, Width::W64),
            dst: *dst,
        },
        Inst::MovqFromXmm { src, dst } => DOp::MovqFromXmm {
            src: *src,
            dst: dst.with_width(Width::W64),
        },
        Inst::Pinsrq { lane, src, dst } => DOp::Pinsrq {
            lane: *lane,
            src: DSrc::lower(src, Width::W64),
            dst: *dst,
        },
        Inst::Pextrq { lane, src, dst } => DOp::Pextrq {
            lane: *lane,
            src: *src,
            dst: dst.with_width(Width::W64),
        },
        Inst::Vinserti128 {
            lane,
            src,
            src2,
            dst,
        } => DOp::Vinserti128 {
            lane: *lane,
            src: *src,
            src2: *src2,
            dst: *dst,
        },
        Inst::Vpxor { a, b, dst } => DOp::VpxorY {
            a: *a,
            b: *b,
            dst: *dst,
        },
        Inst::Vptest { a, b } => DOp::VptestY { a: *a, b: *b },
        Inst::Vpxor128 { a, b, dst } => DOp::VpxorX {
            a: *a,
            b: *b,
            dst: *dst,
        },
        Inst::Vptest128 { a, b } => DOp::VptestX { a: *a, b: *b },
        Inst::Vinserti64x4 {
            lane,
            src,
            src2,
            dst,
        } => DOp::Vinserti64x4 {
            lane: *lane,
            src: *src,
            src2: *src2,
            dst: *dst,
        },
        Inst::Vpxor512 { a, b, dst } => DOp::VpxorZ {
            a: *a,
            b: *b,
            dst: *dst,
        },
        Inst::Vptest512 { a, b } => DOp::VptestZ { a: *a, b: *b },
    };
    let fault = match inst.dest_class() {
        DestClass::Gpr(r) => DFault::Gpr(r),
        DestClass::RaxRdxPair(w) => DFault::Pair(w),
        DestClass::Rflags => DFault::Flags,
        DestClass::Xmm(x) => DFault::Simd { idx: x.0, bits: 128 },
        DestClass::Ymm(y) => DFault::Simd { idx: y.0, bits: 256 },
        DestClass::Zmm(z) => DFault::Simd { idx: z.0, bits: 512 },
        DestClass::None => DFault::None,
    };
    DInst {
        op,
        prov: li.prov,
        cost: cost.cost_tagged(inst, li.prov),
        eligible: eligible_dest_bits(inst).unwrap_or(0) as u16,
        is_flags: matches!(inst.dest_class(), DestClass::Rflags),
        fault,
        masks: inst.reg_masks(),
        fuse: NO_FUSE,
    }
}

fn jcc_parts(op: &DOp) -> Option<(Cc, FTarget)> {
    match op {
        DOp::Jcc { cc, t } => Some((*cc, FTarget::Index(*t))),
        DOp::JccExit { cc } => Some((*cc, FTarget::Exit)),
        _ => None,
    }
}

fn try_fuse(code: &[DInst], leader: &[bool], i: usize) -> Option<DFused> {
    // Checker triples first (longest match).
    if i + 2 < code.len() && !leader[i + 1] && !leader[i + 2] {
        let cost = code[i].cost + code[i + 1].cost + code[i + 2].cost;
        match (&code[i].op, &code[i + 1].op, &code[i + 2].op) {
            (DOp::VpxorX { a, b, dst }, DOp::VptestX { a: ta, b: tb }, j) => {
                if let Some((cc, t)) = jcc_parts(j) {
                    return Some(DFused {
                        op: FOp::CheckX {
                            a: *a,
                            b: *b,
                            dst: *dst,
                            ta: *ta,
                            tb: *tb,
                            cc,
                            t,
                        },
                        len: 3,
                        cost,
                    });
                }
            }
            (DOp::VpxorY { a, b, dst }, DOp::VptestY { a: ta, b: tb }, j) => {
                if let Some((cc, t)) = jcc_parts(j) {
                    return Some(DFused {
                        op: FOp::CheckY {
                            a: *a,
                            b: *b,
                            dst: *dst,
                            ta: *ta,
                            tb: *tb,
                            cc,
                            t,
                        },
                        len: 3,
                        cost,
                    });
                }
            }
            (DOp::VpxorZ { a, b, dst }, DOp::VptestZ { a: ta, b: tb }, j) => {
                if let Some((cc, t)) = jcc_parts(j) {
                    return Some(DFused {
                        op: FOp::CheckZ {
                            a: *a,
                            b: *b,
                            dst: *dst,
                            ta: *ta,
                            tb: *tb,
                            cc,
                            t,
                        },
                        len: 3,
                        cost,
                    });
                }
            }
            _ => {}
        }
    }
    // Crash-free duplication/capture pairs.
    if i + 1 < code.len() && !leader[i + 1] {
        let cost = code[i].cost + code[i + 1].cost;
        match (&code[i].op, &code[i + 1].op) {
            (DOp::MovqToXmm { src: s1, dst: d1 }, DOp::MovqToXmm { src: s2, dst: d2 }) => {
                if let (Some(s1), Some(s2)) = (s1.as_val(), s2.as_val()) {
                    return Some(DFused {
                        op: FOp::Dup2 {
                            s1,
                            d1: *d1,
                            s2,
                            d2: *d2,
                        },
                        len: 2,
                        cost,
                    });
                }
            }
            (
                DOp::Pinsrq {
                    lane: l1,
                    src: s1,
                    dst: d1,
                },
                DOp::Pinsrq {
                    lane: l2,
                    src: s2,
                    dst: d2,
                },
            ) => {
                if let (Some(s1), Some(s2)) = (s1.as_val(), s2.as_val()) {
                    return Some(DFused {
                        op: FOp::Pinsr2 {
                            l1: *l1,
                            s1,
                            d1: *d1,
                            l2: *l2,
                            s2,
                            d2: *d2,
                        },
                        len: 2,
                        cost,
                    });
                }
            }
            _ => {}
        }
    }
    None
}

/// Executes the flattened operation at `st.pc`, advancing `st.pc` —
/// the decode-once mirror of `exec::step` (same read/write order, same
/// crash precedence, same flag updates).
fn exec_dop(op: &DOp, st: &mut State) -> StepEvent {
    let next = st.pc + 1;
    macro_rules! crash {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(k) => return StepEvent::Stop(StopReason::Crash(k)),
            }
        };
    }
    match op {
        DOp::Nop => {}
        DOp::Mov { w, src, dst } => {
            let v = crash!(read_src(st, src, *w));
            crash!(write_dst(st, dst, *w, v));
        }
        DOp::Movsx { src_w, src, dst } => {
            let v = crash!(read_src(st, src, *src_w));
            let ext = src_w.sext(v) as u64;
            st.regs.write(*dst, ext & dst.width.mask());
        }
        DOp::Movzx { src_w, src, dst } => {
            let v = crash!(read_src(st, src, *src_w));
            st.regs.write(*dst, v & src_w.mask());
        }
        DOp::Lea { mem, dst } => {
            let a = mem.ea(&st.regs);
            st.regs.write(*dst, a);
        }
        DOp::Alu { op, w, src, dst } => {
            let b = crash!(read_src(st, src, *w));
            let a = crash!(read_dst(st, dst, *w));
            let (r, flags) = match op {
                AluOp::Add => {
                    let r = a.wrapping_add(b) & w.mask();
                    (r, Flags::from_add(a, b, *w))
                }
                AluOp::Sub => {
                    let r = a.wrapping_sub(b) & w.mask();
                    (r, Flags::from_sub(a, b, *w))
                }
                AluOp::And => {
                    let r = a & b;
                    (r, Flags::from_logic(r, *w))
                }
                AluOp::Or => {
                    let r = a | b;
                    (r, Flags::from_logic(r, *w))
                }
                AluOp::Xor => {
                    let r = a ^ b;
                    (r, Flags::from_logic(r, *w))
                }
            };
            st.regs.flags = flags;
            crash!(write_dst(st, dst, *w, r));
        }
        DOp::Imul { w, src, dst } => {
            let b = crash!(read_src(st, src, *w));
            let a = st.regs.read(*dst);
            let full = i128::from(w.sext(a)) * i128::from(w.sext(b));
            let r = (full as u64) & w.mask();
            let overflow = full != i128::from(w.sext(r));
            let mut flags = Flags::from_logic(r, *w);
            flags.cf = overflow;
            flags.of = overflow;
            st.regs.flags = flags;
            st.regs.write(*dst, r);
        }
        DOp::Unary { op, w, dst } => {
            let v = crash!(read_dst(st, dst, *w));
            match op {
                UnaryOp::Neg => {
                    let r = 0u64.wrapping_sub(v) & w.mask();
                    st.regs.flags = Flags::from_sub(0, v, *w);
                    crash!(write_dst(st, dst, *w, r));
                }
                UnaryOp::Not => {
                    crash!(write_dst(st, dst, *w, !v & w.mask()));
                }
            }
        }
        DOp::Shift { op, w, amount, dst } => {
            let amt_mask = if *w == Width::W64 { 63 } else { 31 };
            let amt = match amount {
                ShiftAmount::Imm(n) => u32::from(*n) & amt_mask,
                ShiftAmount::Cl => (st.regs.read(Reg::b(Gpr::Rcx)) as u32) & amt_mask,
            };
            let v = crash!(read_dst(st, dst, *w));
            if amt != 0 {
                let bits = w.bits();
                let (r, cf) = match op {
                    ShiftOp::Shl => {
                        let r = v.wrapping_shl(amt) & w.mask();
                        let cf = amt <= bits && (v >> (bits - amt)) & 1 == 1;
                        (r, cf)
                    }
                    ShiftOp::Shr => {
                        let r = (v & w.mask()) >> amt.min(63);
                        let cf = (v >> (amt - 1)) & 1 == 1;
                        (r, cf)
                    }
                    ShiftOp::Sar => {
                        let s = w.sext(v);
                        let r = (s >> amt.min(63) as i64) as u64 & w.mask();
                        let cf = (v >> (amt - 1)) & 1 == 1;
                        (r, cf)
                    }
                };
                let mut flags = Flags::from_logic(r, *w);
                flags.cf = cf;
                st.regs.flags = flags;
                crash!(write_dst(st, dst, *w, r));
            }
        }
        DOp::Cqo { w } => match w {
            Width::W64 => {
                let rax = st.regs.read64(Gpr::Rax) as i64;
                st.regs.write64(Gpr::Rdx, (rax >> 63) as u64);
            }
            _ => {
                let eax = st.regs.read(Reg::l(Gpr::Rax));
                let sign = (Width::W32.sext(eax) >> 31) as u64;
                st.regs.write(Reg::l(Gpr::Rdx), sign & Width::W32.mask());
            }
        },
        DOp::Idiv { w, src } => {
            let divisor = w.sext(crash!(read_src(st, src, *w)));
            if divisor == 0 {
                return StepEvent::Stop(StopReason::Crash(CrashKind::DivideError));
            }
            let (lo, hi) = (
                st.regs.read(Reg::gpr(Gpr::Rax, *w)),
                st.regs.read(Reg::gpr(Gpr::Rdx, *w)),
            );
            let dividend: i128 = match w {
                Width::W64 => ((i128::from(hi as i64)) << 64) | i128::from(lo),
                _ => {
                    let bits = w.bits();
                    ((i128::from(w.sext(hi))) << bits) | i128::from(lo)
                }
            };
            let quot = dividend / i128::from(divisor);
            let rem = dividend % i128::from(divisor);
            let fits = match w {
                Width::W64 => quot >= i128::from(i64::MIN) && quot <= i128::from(i64::MAX),
                _ => {
                    let half = 1i128 << (w.bits() - 1);
                    quot >= -half && quot < half
                }
            };
            if !fits {
                return StepEvent::Stop(StopReason::Crash(CrashKind::DivideError));
            }
            st.regs
                .write(Reg::gpr(Gpr::Rax, *w), quot as u64 & w.mask());
            st.regs.write(Reg::gpr(Gpr::Rdx, *w), rem as u64 & w.mask());
        }
        DOp::Cmp { w, src, dst } => {
            let b = crash!(read_src(st, src, *w));
            let a = crash!(read_src(st, dst, *w));
            st.regs.flags = Flags::from_sub(a, b, *w);
        }
        DOp::Test { w, src, dst } => {
            let b = crash!(read_src(st, src, *w));
            let a = crash!(read_src(st, dst, *w));
            st.regs.flags = Flags::from_logic(a & b, *w);
        }
        DOp::Setcc { cc, dst } => {
            let v = u64::from(cc.eval(st.regs.flags));
            crash!(write_dst(st, dst, Width::W8, v));
        }
        DOp::Jmp { t } => {
            st.pc = *t;
            return StepEvent::Continue;
        }
        DOp::JmpExit => return StepEvent::Stop(StopReason::Detected),
        DOp::Jcc { cc, t } => {
            if cc.eval(st.regs.flags) {
                st.pc = *t;
                return StepEvent::Continue;
            }
        }
        DOp::JccExit { cc } => {
            if cc.eval(st.regs.flags) {
                return StepEvent::Stop(StopReason::Detected);
            }
        }
        DOp::Call { t } => {
            let rsp = st.regs.read64(Gpr::Rsp).wrapping_sub(8);
            if st.mem.store_w(rsp, Width::W64, next as u64).is_err() {
                return StepEvent::Stop(StopReason::Crash(CrashKind::StackFault(rsp)));
            }
            st.regs.write64(Gpr::Rsp, rsp);
            st.call_stack.push(next);
            st.pc = *t;
            return StepEvent::Continue;
        }
        DOp::CallPrint => {
            let v = st.regs.read64(Gpr::Rdi) as i64;
            st.output.push(v);
        }
        DOp::CallExit => return StepEvent::Stop(StopReason::Detected),
        DOp::Ret => match st.call_stack.pop() {
            None => return StepEvent::Stop(StopReason::MainReturned),
            Some(ret) => {
                let rsp = st.regs.read64(Gpr::Rsp);
                st.regs.write64(Gpr::Rsp, rsp.wrapping_add(8));
                st.pc = ret;
                return StepEvent::Continue;
            }
        },
        DOp::Push { src } => {
            let v = crash!(read_src(st, src, Width::W64));
            let rsp = st.regs.read64(Gpr::Rsp).wrapping_sub(8);
            if st.mem.store_w(rsp, Width::W64, v).is_err() {
                return StepEvent::Stop(StopReason::Crash(CrashKind::StackFault(rsp)));
            }
            st.regs.write64(Gpr::Rsp, rsp);
        }
        DOp::Pop { dst } => {
            let rsp = st.regs.read64(Gpr::Rsp);
            let v = match st.mem.load_w(rsp, Width::W64) {
                Ok(v) => v,
                Err(_) => return StepEvent::Stop(StopReason::Crash(CrashKind::StackFault(rsp))),
            };
            st.regs.write64(Gpr::Rsp, rsp.wrapping_add(8));
            crash!(write_dst(st, dst, Width::W64, v));
        }
        DOp::MovqToXmm { src, dst } => {
            let v = crash!(read_src(st, src, Width::W64));
            st.regs.write_xmm_movq(*dst, v);
        }
        DOp::MovqFromXmm { src, dst } => {
            let v = st.regs.read_xmm_lane(*src, 0);
            st.regs.write(*dst, v);
        }
        DOp::Pinsrq { lane, src, dst } => {
            let v = crash!(read_src(st, src, Width::W64));
            st.regs.write_xmm_lane(*dst, *lane, v);
        }
        DOp::Pextrq { lane, src, dst } => {
            let v = st.regs.read_xmm_lane(*src, *lane);
            st.regs.write(*dst, v);
        }
        DOp::Vinserti128 {
            lane,
            src,
            src2,
            dst,
        } => {
            let low = st.regs.read_xmm(*src);
            let base = st.regs.read_ymm(*src2);
            let out = if *lane == 0 {
                [low[0], low[1], base[2], base[3]]
            } else {
                [base[0], base[1], low[0], low[1]]
            };
            st.regs.write_ymm(*dst, out);
        }
        DOp::VpxorY { a, b, dst } => {
            let x = st.regs.read_ymm(*a);
            let y = st.regs.read_ymm(*b);
            st.regs
                .write_ymm(*dst, [x[0] ^ y[0], x[1] ^ y[1], x[2] ^ y[2], x[3] ^ y[3]]);
        }
        DOp::VptestY { a, b } => {
            let x = st.regs.read_ymm(*a);
            let y = st.regs.read_ymm(*b);
            st.regs.flags = vptest_flags((0..4).all(|i| x[i] & y[i] == 0), {
                (0..4).all(|i| !x[i] & y[i] == 0)
            });
        }
        DOp::VpxorX { a, b, dst } => {
            let x = st.regs.read_xmm(*a);
            let y = st.regs.read_xmm(*b);
            st.regs.write_xmm_vex(*dst, [x[0] ^ y[0], x[1] ^ y[1]]);
        }
        DOp::VptestX { a, b } => {
            let x = st.regs.read_xmm(*a);
            let y = st.regs.read_xmm(*b);
            st.regs.flags = vptest_flags((0..2).all(|i| x[i] & y[i] == 0), {
                (0..2).all(|i| !x[i] & y[i] == 0)
            });
        }
        DOp::Vinserti64x4 {
            lane,
            src,
            src2,
            dst,
        } => {
            let low = st.regs.read_ymm(*src);
            let mut out = st.regs.read_zmm(*src2);
            let off = usize::from(*lane) * 4;
            out[off..off + 4].copy_from_slice(&low);
            st.regs.write_zmm(*dst, out);
        }
        DOp::VpxorZ { a, b, dst } => {
            let x = st.regs.read_zmm(*a);
            let y = st.regs.read_zmm(*b);
            let mut out = [0u64; 8];
            for i in 0..8 {
                out[i] = x[i] ^ y[i];
            }
            st.regs.write_zmm(*dst, out);
        }
        DOp::VptestZ { a, b } => {
            let x = st.regs.read_zmm(*a);
            let y = st.regs.read_zmm(*b);
            st.regs.flags = vptest_flags((0..8).all(|i| x[i] & y[i] == 0), {
                (0..8).all(|i| !x[i] & y[i] == 0)
            });
        }
    }
    st.pc = next;
    StepEvent::Continue
}

#[inline]
fn vptest_flags(and_zero: bool, andn_zero: bool) -> Flags {
    Flags {
        zf: and_zero,
        cf: andn_zero,
        sf: false,
        of: false,
        pf: false,
    }
}

/// Executes one fused group with `st.pc` at its first instruction.
///
/// Only called inside fault-free windows (the tight loop guards the
/// group against the next fault/timeout boundary), so no constituent
/// needs individual fault or budget checks; all constituents before
/// the final one are crash-free by construction.
fn exec_fused(op: &FOp, st: &mut State) -> StepEvent {
    let pc = st.pc;
    match op {
        FOp::Dup2 { s1, d1, s2, d2 } => {
            let v = read_val(st, s1);
            st.regs.write_xmm_movq(*d1, v);
            let v = read_val(st, s2);
            st.regs.write_xmm_movq(*d2, v);
            st.pc = pc + 2;
            StepEvent::Continue
        }
        FOp::Pinsr2 {
            l1,
            s1,
            d1,
            l2,
            s2,
            d2,
        } => {
            let v = read_val(st, s1);
            st.regs.write_xmm_lane(*d1, *l1, v);
            let v = read_val(st, s2);
            st.regs.write_xmm_lane(*d2, *l2, v);
            st.pc = pc + 2;
            StepEvent::Continue
        }
        FOp::CheckX {
            a,
            b,
            dst,
            ta,
            tb,
            cc,
            t,
        } => {
            let x = st.regs.read_xmm(*a);
            let y = st.regs.read_xmm(*b);
            st.regs.write_xmm_vex(*dst, [x[0] ^ y[0], x[1] ^ y[1]]);
            let x = st.regs.read_xmm(*ta);
            let y = st.regs.read_xmm(*tb);
            let flags = vptest_flags((0..2).all(|i| x[i] & y[i] == 0), {
                (0..2).all(|i| !x[i] & y[i] == 0)
            });
            check_branch(st, pc, flags, *cc, *t)
        }
        FOp::CheckY {
            a,
            b,
            dst,
            ta,
            tb,
            cc,
            t,
        } => {
            let x = st.regs.read_ymm(*a);
            let y = st.regs.read_ymm(*b);
            st.regs
                .write_ymm(*dst, [x[0] ^ y[0], x[1] ^ y[1], x[2] ^ y[2], x[3] ^ y[3]]);
            let x = st.regs.read_ymm(*ta);
            let y = st.regs.read_ymm(*tb);
            let flags = vptest_flags((0..4).all(|i| x[i] & y[i] == 0), {
                (0..4).all(|i| !x[i] & y[i] == 0)
            });
            check_branch(st, pc, flags, *cc, *t)
        }
        FOp::CheckZ {
            a,
            b,
            dst,
            ta,
            tb,
            cc,
            t,
        } => {
            let x = st.regs.read_zmm(*a);
            let y = st.regs.read_zmm(*b);
            let mut out = [0u64; 8];
            for i in 0..8 {
                out[i] = x[i] ^ y[i];
            }
            st.regs.write_zmm(*dst, out);
            let x = st.regs.read_zmm(*ta);
            let y = st.regs.read_zmm(*tb);
            let flags = vptest_flags((0..8).all(|i| x[i] & y[i] == 0), {
                (0..8).all(|i| !x[i] & y[i] == 0)
            });
            check_branch(st, pc, flags, *cc, *t)
        }
    }
}

/// The `jcc` tail of a fused checker.  `pc` is the group's first index
/// (the `vpxor`); the `jcc` itself sits at `pc + 2`, and on detection
/// `st.pc` stays there — exactly where the interpreter leaves it.
#[inline]
fn check_branch(st: &mut State, pc: usize, flags: Flags, cc: Cc, t: FTarget) -> StepEvent {
    st.regs.flags = flags;
    if cc.eval(flags) {
        match t {
            FTarget::Index(t) => {
                st.pc = t;
                StepEvent::Continue
            }
            FTarget::Exit => {
                st.pc = pc + 2;
                StepEvent::Stop(StopReason::Detected)
            }
        }
    } else {
        st.pc = pc + 3;
        StepEvent::Continue
    }
}

/// A steppable simulation over a [`DecodedCpu`] — the decoded mirror
/// of [`crate::snapshot::Machine`], with the same per-step ordering
/// (budget check, execute, charge cycles, inject, count, latch) and
/// interchangeable [`Snapshot`]s.
///
/// [`DecodedMachine::step_faulted`] always executes exactly one
/// instruction (never a fused group) so lock-step differential replay
/// against an interpreter machine observes identical boundaries;
/// [`DecodedMachine::run_to_completion`] dispatches fused groups
/// inside fault-free windows.
#[derive(Debug, Clone)]
pub struct DecodedMachine<'a> {
    dc: &'a DecodedCpu,
    st: State,
    cycles: u64,
    dyn_insts: u64,
    stop: Option<StopReason>,
}

/// Exact architectural-state equality, cheapest fields first: a
/// non-converged state almost always differs in a register or the pc,
/// so the memory walk (watermark-bounded, see
/// [`Memory::same_contents`](crate::mem::Memory::same_contents)) is the
/// last resort.
///
/// Register files are compared only within the program's touched masks
/// (`touched_gpr`/`touched_simd`): every state this compare ever sees
/// descends from the same loaded image's [`State::new`] initial
/// register file, and only instruction write-backs (⊆ the decoded out
/// masks) and injected faults (⊆ the decoded fault destinations) can
/// change a register — so registers outside the masks are equal in
/// both states by construction, and skipping them (in particular the
/// untouched bulk of the sixteen 512-bit SIMD registers) keeps the
/// compare proportional to what the program actually uses.  RFLAGS is
/// always compared: flag writes are not part of the masks.
fn states_converged(a: &State, b: &State, touched_gpr: u16, touched_simd: u16) -> bool {
    if a.pc != b.pc || a.regs.flags != b.regs.flags {
        return false;
    }
    let mut g = touched_gpr;
    while g != 0 {
        let r = Gpr::from_index(g.trailing_zeros() as usize);
        if a.regs.read64(r) != b.regs.read64(r) {
            return false;
        }
        g &= g - 1;
    }
    let mut s = touched_simd;
    while s != 0 {
        let i = s.trailing_zeros() as u8;
        if a.regs.read_zmm(Zmm::new(i)) != b.regs.read_zmm(Zmm::new(i)) {
            return false;
        }
        s &= s - 1;
    }
    a.call_stack == b.call_stack && a.output == b.output && a.mem.same_contents(&b.mem)
}

impl<'a> DecodedMachine<'a> {
    /// A machine at the program entry point.
    pub fn new(dc: &'a DecodedCpu) -> DecodedMachine<'a> {
        DecodedMachine {
            dc,
            st: State::new(dc.cpu.image()),
            cycles: 0,
            dyn_insts: 0,
            stop: None,
        }
    }

    /// Dynamic instructions executed so far.
    pub fn dyn_insts(&self) -> u64 {
        self.dyn_insts
    }

    /// Cycles accumulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Why the run stopped, if it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop
    }

    /// The architectural state at the current instruction boundary.
    pub fn state(&self) -> &State {
        &self.st
    }

    /// Mutable architectural state (forensic state surgery).
    pub fn state_mut(&mut self) -> &mut State {
        &mut self.st
    }

    /// Captures a [`Snapshot`] interchangeable with the interpreter
    /// machine's.
    pub fn snapshot(&self) -> Snapshot {
        // `clone_compact` materializes the untouched stack prefix as
        // fresh zero pages instead of copying it — contents identical
        // to a plain clone, cost proportional to the stack in use.
        let st = State {
            regs: self.st.regs.clone(),
            mem: self.st.mem.clone_compact(),
            pc: self.st.pc,
            call_stack: self.st.call_stack.clone(),
            output: self.st.output.clone(),
        };
        Snapshot::from_parts(st, self.cycles, self.dyn_insts)
    }

    /// Reinstates a snapshot (from either engine's machine), clearing
    /// any stop condition.
    ///
    /// Restores in place, reusing this machine's buffers: the stack
    /// copy is bounded by the low-water marks (`Memory::restore_from`),
    /// so a campaign worker that holds one machine and restores it per
    /// injection pays kilobytes, not the 512 KiB stack, per fault.
    pub fn restore(&mut self, snap: &Snapshot) {
        let s = snap.state();
        self.st.regs.clone_from(&s.regs);
        self.st.mem.restore_from(&s.mem);
        self.st.pc = s.pc;
        self.st.call_stack.clone_from(&s.call_stack);
        self.st.output.clone_from(&s.output);
        self.cycles = snap.cycles();
        self.dyn_insts = snap.dyn_insts();
        self.stop = None;
    }

    /// Executes one instruction (never a fused group), injecting any
    /// fault scheduled for the current dynamic index right after
    /// write-back — ordering identical to `Machine::step_faulted`.
    pub fn step_faulted(&mut self, faults: &[FaultSpec]) -> StepEvent {
        if let Some(stop) = self.stop {
            return StepEvent::Stop(stop);
        }
        if self.dyn_insts >= self.dc.cpu.step_limit() {
            self.stop = Some(StopReason::Timeout);
            return StepEvent::Stop(StopReason::Timeout);
        }
        let d = &self.dc.code[self.st.pc];
        let ev = exec_dop(&d.op, &mut self.st);
        self.cycles += d.cost;
        for f in faults {
            if f.dyn_index == self.dyn_insts {
                apply_dfault(d.fault, f.raw_bit, &mut self.st);
            }
        }
        self.dyn_insts += 1;
        if let StepEvent::Stop(stop) = ev {
            self.stop = Some(stop);
        }
        ev
    }

    /// Executes one fault-free instruction.
    pub fn step(&mut self) -> StepEvent {
        self.step_faulted(&[])
    }

    /// Runs until the program stops, injecting `faults` along the way.
    ///
    /// The loop partitions execution into fault-free windows bounded by
    /// the next pending injection index (or the step limit), runs each
    /// window through the tight fused-dispatch loop, and single-steps
    /// exactly the boundary instruction with the fault hook armed — so
    /// per-step fault scans, budget checks, and latch checks never
    /// touch the hot path.
    pub fn run_to_completion(&mut self, faults: &[FaultSpec]) -> RunResult {
        loop {
            if let Some(stop) = self.stop {
                return self.result(stop);
            }
            if self.dyn_insts >= self.dc.cpu.step_limit() {
                self.stop = Some(StopReason::Timeout);
                return self.result(StopReason::Timeout);
            }
            let next_fault = faults
                .iter()
                .map(|f| f.dyn_index)
                .filter(|&i| i >= self.dyn_insts)
                .min()
                .unwrap_or(u64::MAX);
            if self.dyn_insts == next_fault {
                self.step_faulted(faults);
            } else {
                self.run_tight(self.dc.cpu.step_limit().min(next_fault));
            }
        }
    }

    /// Runs until the program stops, with the golden-trace convergence
    /// short-circuit armed after the last fault.
    ///
    /// Identity argument: a run is a deterministic function of its
    /// architectural state ([`State`]: registers, memory, pc, call
    /// stack, output) and its remaining step budget.  When this machine
    /// reaches a checkpoint's dynamic index with *exactly* the
    /// checkpoint's state — compared in full, no hashing — both the
    /// state and the remaining budget (`step_limit - dyn_insts`) equal
    /// the golden run's at that point, so every future step, print, and
    /// stop is the golden run's.  The stitched result therefore copies
    /// the golden stop and output (the output-so-far is part of the
    /// matched state) and extends cycles by the golden suffix
    /// (`golden.cycles - checkpoint.cycles`); cycles accumulated before
    /// convergence may legitimately differ from the golden prefix, so
    /// they are kept.
    pub fn run_converging(
        &mut self,
        faults: &[FaultSpec],
        checkpoints: &[Snapshot],
        golden: &RunResult,
    ) -> RunResult {
        let limit = self.dc.cpu.step_limit();
        // Phase 1: ordinary faulted execution until every pending fault
        // has been applied (same partition as `run_to_completion`).
        let last_fault = faults
            .iter()
            .map(|f| f.dyn_index)
            .filter(|&i| i >= self.dyn_insts)
            .max();
        if let Some(last) = last_fault {
            while self.dyn_insts <= last {
                if let Some(stop) = self.stop {
                    return self.result(stop);
                }
                if self.dyn_insts >= limit {
                    self.stop = Some(StopReason::Timeout);
                    return self.result(StopReason::Timeout);
                }
                let next_fault = faults
                    .iter()
                    .map(|f| f.dyn_index)
                    .filter(|&i| i >= self.dyn_insts)
                    .min()
                    .unwrap_or(u64::MAX);
                if self.dyn_insts == next_fault {
                    self.step_faulted(faults);
                } else {
                    self.run_tight(limit.min(next_fault));
                }
            }
        }
        // Phase 2: fault-free execution, comparing against each golden
        // checkpoint ahead of the current position as it is crossed.
        for cp in checkpoints {
            if self.stop.is_some() {
                break;
            }
            if cp.dyn_insts() <= self.dyn_insts || cp.dyn_insts() > limit {
                continue;
            }
            self.run_tight(cp.dyn_insts());
            if self.stop.is_some() {
                break;
            }
            if self.dyn_insts == cp.dyn_insts()
                && states_converged(
                    &self.st,
                    cp.state(),
                    self.dc.touched_gpr,
                    self.dc.touched_simd,
                )
            {
                return RunResult {
                    stop: golden.stop,
                    output: golden.output.clone(),
                    cycles: self.cycles + (golden.cycles - cp.cycles()),
                    dyn_insts: golden.dyn_insts,
                };
            }
        }
        // Phase 3: never converged (or stopped mid-window) — run out
        // normally; `run_to_completion` re-checks latched stops and the
        // budget.
        self.run_to_completion(&[])
    }

    /// Advances fault-free to the `boundary` dynamic-instruction count
    /// through the tight dispatch loop, returning the stop reason if
    /// the program (or the step budget) ends first.
    ///
    /// Equivalent to stepping until `dyn_insts() >= boundary` or a
    /// stop, but without per-step dispatch overhead — campaign golden
    /// walks use this to place snapshots at interval boundaries.
    pub fn advance_to(&mut self, boundary: u64) -> Option<StopReason> {
        if self.stop.is_none() {
            self.run_tight(boundary.min(self.dc.cpu.step_limit()));
        }
        self.stop
    }

    /// Executes fault-free until `boundary` dynamic instructions (or a
    /// stop), dispatching fused groups whenever the whole group fits
    /// below the boundary.
    fn run_tight(&mut self, boundary: u64) {
        let dc = self.dc;
        let code = &dc.code;
        let fused = &dc.fused;
        let mut n = self.dyn_insts;
        let mut cycles = self.cycles;
        while n < boundary {
            let d = &code[self.st.pc];
            let ev = if d.fuse != NO_FUSE {
                let g = &fused[d.fuse as usize];
                if n + u64::from(g.len) <= boundary {
                    n += u64::from(g.len);
                    cycles += g.cost;
                    exec_fused(&g.op, &mut self.st)
                } else {
                    n += 1;
                    cycles += d.cost;
                    exec_dop(&d.op, &mut self.st)
                }
            } else {
                n += 1;
                cycles += d.cost;
                exec_dop(&d.op, &mut self.st)
            };
            if let StepEvent::Stop(stop) = ev {
                self.stop = Some(stop);
                break;
            }
        }
        self.dyn_insts = n;
        self.cycles = cycles;
    }

    fn result(&self, stop: StopReason) -> RunResult {
        RunResult {
            stop,
            output: self.st.output.clone(),
            cycles: self.cycles,
            dyn_insts: self.dyn_insts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Machine;
    use ferrum_asm::program::single_block_main;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::{Global, Module};
    use ferrum_mir::types::Ty;
    use ferrum_mir::inst::ICmpPred;

    /// A workload with a loop, a call, division, and memory traffic —
    /// one dynamic instance of most DOp arms.
    fn loopy_cpu() -> Cpu {
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![9, 18, 27, 36, 45, 54]));

        let mut f = FunctionBuilder::new("third", &[Ty::I64], Some(Ty::I64));
        let three = f.iconst(Ty::I64, 3);
        let q = f.sdiv(Ty::I64, f.arg(0), three);
        f.ret(Some(q));
        module.functions.push(f.finish());

        let mut b = FunctionBuilder::new("main", &[], None);
        let head = b.create_block("head");
        let body = b.create_block("body");
        let done = b.create_block("done");
        let base = b.global(g);
        let slot = b.alloca(Ty::I64);
        let zero = b.iconst(Ty::I64, 0);
        b.store(Ty::I64, zero, slot);
        b.jmp(head);
        b.switch_to(head);
        let i = b.load(Ty::I64, slot);
        let six = b.iconst(Ty::I64, 6);
        let c = b.icmp(ICmpPred::Slt, Ty::I64, i, six);
        b.br(c, body, done);
        b.switch_to(body);
        let p = b.gep(base, i);
        let v = b.load(Ty::I64, p);
        let t = b.call("third", vec![v], Some(Ty::I64)).unwrap();
        b.print(t);
        let one = b.iconst(Ty::I64, 1);
        let next = b.add(Ty::I64, i, one);
        b.store(Ty::I64, next, slot);
        b.jmp(head);
        b.switch_to(done);
        b.ret(None);
        module.functions.push(b.finish());

        let asm = ferrum_backend::compile(&module).unwrap();
        Cpu::load(&asm).unwrap()
    }

    /// The Fig. 6 dup/capture/batch-check idiom, hand-assembled so the
    /// fusion pass sees the exact MovqToXmm/Pinsrq/Vpxor+Vptest+Jcc
    /// shapes protected code emits.  `corrupt` plants a lane mismatch
    /// so the checker fires.
    fn check_idiom_cpu(corrupt: bool) -> Cpu {
        use ferrum_asm::flags::Cc;
        let x = ferrum_asm::reg::Xmm::new;
        let y = ferrum_asm::reg::Ymm::new;
        let q = |g| Operand::Reg(Reg::q(g));
        let lane1_src = if corrupt { q(Gpr::Rax) } else { q(Gpr::Rcx) };
        let p = single_block_main(vec![
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(7),
                dst: q(Gpr::Rax),
            },
            Inst::Mov {
                w: Width::W64,
                src: Operand::Imm(11),
                dst: q(Gpr::Rcx),
            },
            // dup pair → Dup2 candidate
            Inst::MovqToXmm { src: q(Gpr::Rax), dst: x(0) },
            Inst::MovqToXmm { src: q(Gpr::Rax), dst: x(1) },
            // capture pair → Pinsr2 candidate
            Inst::Pinsrq { lane: 1, src: q(Gpr::Rcx), dst: x(0) },
            Inst::Pinsrq { lane: 1, src: lane1_src, dst: x(1) },
            Inst::Vinserti128 { lane: 1, src: x(0), src2: y(0), dst: y(0) },
            Inst::Vinserti128 { lane: 1, src: x(1), src2: y(1), dst: y(1) },
            // checker triple → CheckY candidate
            Inst::Vpxor { a: y(1), b: y(0), dst: y(0) },
            Inst::Vptest { a: y(0), b: y(0) },
            Inst::Jcc { cc: Cc::Ne, target: "exit_function".into() },
        ]);
        Cpu::load(&p).unwrap()
    }

    fn assert_profiles_match(a: &Profile, b: &Profile) {
        assert_eq!(a.sites, b.sites);
        assert_eq!(a.prov_counts, b.prov_counts);
        assert_eq!(a.mech_counts, b.mech_counts);
        assert_eq!(a.pcs, b.pcs, "per-pc profiles must be byte-identical");
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn baked_costs_come_from_the_shared_class_table() {
        // Satellite invariant: the decoded engine's baked per-inst and
        // summed fused costs must be exactly what the interpreter's
        // CostModel::cost_tagged computes from the shared CostClass
        // table — a cost-model edit cannot desynchronise the engines.
        for cpu in [loopy_cpu(), check_idiom_cpu(true), check_idiom_cpu(false)] {
            let dc = DecodedCpu::new(&cpu);
            let model = cpu.cost_model();
            for (pc, li) in cpu.image().insts.iter().enumerate() {
                let class = crate::cost::CostClass::classify(&li.inst);
                assert_eq!(model.cost(&li.inst), model.of_class(class));
                assert_eq!(
                    dc.code[pc].cost,
                    model.cost_tagged(&li.inst, li.prov),
                    "pc {pc} baked cost diverged from the interpreter's"
                );
            }
            for (pc, d) in dc.code.iter().enumerate() {
                if d.fuse != NO_FUSE {
                    let g = &dc.fused[d.fuse as usize];
                    let sum: u64 = (pc..pc + usize::from(g.len)).map(|i| dc.code[i].cost).sum();
                    assert_eq!(g.cost, sum, "fused group at {pc} mis-sums its cost");
                }
            }
        }
    }

    #[test]
    fn per_pc_profiles_are_byte_identical_with_calls_and_checkers() {
        for cpu in [loopy_cpu(), check_idiom_cpu(true), check_idiom_cpu(false)] {
            let dc = DecodedCpu::new(&cpu);
            let a = cpu.profile();
            let b = dc.profile();
            assert_eq!(a.pcs, b.pcs);
            // Folded output (the user-facing rendering) is identical too.
            assert_eq!(a.pcs.folded(cpu.image()), b.pcs.folded(dc.image()));
        }
    }

    #[test]
    fn run_and_profile_match_interpreter() {
        let cpu = loopy_cpu();
        let dc = DecodedCpu::new(&cpu);
        assert_eq!(dc.run(None), cpu.run(None));
        assert_profiles_match(&dc.profile(), &cpu.profile());
    }

    #[test]
    fn every_site_faults_identically() {
        let cpu = loopy_cpu();
        let dc = DecodedCpu::new(&cpu);
        let prof = cpu.profile();
        assert!(!prof.sites.is_empty());
        for site in &prof.sites {
            for raw in [0u16, 7, 63, 255, 65_535] {
                let f = FaultSpec::new(site.dyn_index, raw);
                assert_eq!(
                    dc.run(Some(f)),
                    cpu.run(Some(f)),
                    "site {} raw {raw}",
                    site.dyn_index
                );
            }
        }
    }

    #[test]
    fn snapshots_interchange_with_interpreter_machine() {
        let cpu = loopy_cpu();
        let dc = DecodedCpu::new(&cpu);
        let golden = cpu.run(None);
        // Interpreter snapshot → decoded resume, decoded snapshot →
        // interpreter resume, at several prefix depths.
        for k in [0u32, 1, 5, 17] {
            let mut im = Machine::new(&cpu);
            let mut dm = DecodedMachine::new(&dc);
            for _ in 0..k {
                im.step();
                dm.step();
            }
            assert_eq!(dm.dyn_insts(), im.dyn_insts());
            assert_eq!(dm.cycles(), im.cycles());
            assert_eq!(dc.resume(&im.snapshot(), &[]), golden);
            let mut back = Machine::new(&cpu);
            back.restore(&dm.snapshot());
            assert_eq!(back.run_to_completion(&[]), golden);
        }
    }

    #[test]
    fn faulted_resume_matches_interpreter_resume() {
        let cpu = loopy_cpu();
        let dc = DecodedCpu::new(&cpu);
        let prof = cpu.profile();
        let mut m = Machine::new(&cpu);
        for _ in 0..4 {
            m.step();
        }
        let snap = m.snapshot();
        for site in prof.sites.iter().filter(|s| s.dyn_index >= 4).take(12) {
            let f = FaultSpec::new(site.dyn_index, 9);
            assert_eq!(dc.resume(&snap, &[f]), cpu.resume(&snap, &[f]));
        }
    }

    #[test]
    fn converging_runs_are_byte_identical_for_every_site_and_checkpoint_cadence() {
        // The golden-trace short-circuit must never change an outcome:
        // for every injectable site, a converging run (checkpoints at
        // several cadences, including degenerate none/every-step) must
        // equal the interpreter's plain faulted run — stop, output,
        // cycles, and dyn_insts.
        for cpu in [loopy_cpu(), check_idiom_cpu(true), check_idiom_cpu(false)] {
            let dc = DecodedCpu::new(&cpu);
            let golden = cpu.profile().result;
            for cadence in [1u64, 7, 64] {
                let mut checkpoints = Vec::new();
                let mut m = DecodedMachine::new(&dc);
                while m.stop_reason().is_none() {
                    if m.dyn_insts() > 0 && m.dyn_insts().is_multiple_of(cadence) {
                        checkpoints.push(m.snapshot());
                    }
                    m.step();
                }
                for site in &cpu.profile().sites {
                    for raw in [0u16, 9, 255] {
                        let f = FaultSpec::new(site.dyn_index, raw);
                        assert_eq!(
                            dc.run_converging(&[f], &checkpoints, &golden),
                            cpu.run(Some(f)),
                            "site {} raw {raw} cadence {cadence}",
                            site.dyn_index
                        );
                    }
                }
            }
            // No checkpoints at all degenerates to a plain run.
            for site in cpu.profile().sites.iter().take(8) {
                let f = FaultSpec::new(site.dyn_index, 3);
                assert_eq!(dc.run_converging(&[f], &[], &golden), cpu.run(Some(f)));
            }
        }
    }

    #[test]
    fn converging_resume_stitches_from_mid_run_snapshots() {
        // Resume from a mid-run snapshot with the fault ahead of it,
        // checkpoints covering the whole golden run: identical to the
        // interpreter's plain resume, and the tight step limit still
        // times out at exactly the same budget.
        let cpu = loopy_cpu();
        let dc = DecodedCpu::new(&cpu);
        let golden = cpu.profile().result;
        let mut checkpoints = Vec::new();
        let mut gm = DecodedMachine::new(&dc);
        while gm.stop_reason().is_none() {
            if gm.dyn_insts() > 0 && gm.dyn_insts().is_multiple_of(5) {
                checkpoints.push(gm.snapshot());
            }
            gm.step();
        }
        let mut m = Machine::new(&cpu);
        for _ in 0..4 {
            m.step();
        }
        let snap = m.snapshot();
        for site in cpu.profile().sites.iter().filter(|s| s.dyn_index >= 4) {
            let f = FaultSpec::new(site.dyn_index, 9);
            assert_eq!(
                dc.resume_converging(&snap, &[f], &checkpoints, &golden),
                cpu.resume(&snap, &[f]),
                "site {}",
                site.dyn_index
            );
        }
        // A step limit below the next checkpoint must still Timeout
        // identically (the short-circuit never outruns the budget).
        let tight = loopy_cpu().with_step_limit(12);
        let tdc = DecodedCpu::new(&tight);
        let tgolden = tight.profile().result;
        for site in tight.profile().sites.iter().filter(|s| s.dyn_index < 12) {
            let f = FaultSpec::new(site.dyn_index, 9);
            assert_eq!(
                tdc.run_converging(&[f], &checkpoints, &tgolden),
                tight.run(Some(f)),
                "site {}",
                site.dyn_index
            );
        }
    }

    #[test]
    fn step_limit_budget_matches_interpreter_after_restore() {
        // The decoded machine shares the interpreter's global budget
        // semantics: a snapshot carries its dyn_insts, so a resumed run
        // only gets the remaining allowance.
        let cpu = loopy_cpu().with_step_limit(10);
        let dc = DecodedCpu::new(&cpu);
        let mut dm = DecodedMachine::new(&dc);
        dm.step();
        dm.step();
        let snap = dm.snapshot();
        let mine = dc.resume(&snap, &[]);
        let theirs = cpu.resume(&snap, &[]);
        assert_eq!(mine, theirs);
        assert_eq!(mine.stop, StopReason::Timeout);
        assert_eq!(mine.dyn_insts, 10);
    }

    #[test]
    fn check_idiom_fuses_and_stays_byte_identical() {
        for corrupt in [false, true] {
            let cpu = check_idiom_cpu(corrupt);
            let dc = DecodedCpu::new(&cpu);
            // Dup2 + Pinsr2 + CheckY all present.
            assert!(dc.superinstructions() >= 3, "fusion did not fire");
            let golden = cpu.run(None);
            assert_eq!(
                golden.stop,
                if corrupt {
                    StopReason::Detected
                } else {
                    StopReason::MainReturned
                }
            );
            assert_eq!(dc.run(None), golden);
            assert_profiles_match(&dc.profile(), &cpu.profile());
            let prof = cpu.profile();
            for site in &prof.sites {
                for raw in [0u16, 100, 511] {
                    let f = FaultSpec::new(site.dyn_index, raw);
                    assert_eq!(dc.run(Some(f)), cpu.run(Some(f)));
                }
            }
        }
    }

    #[test]
    fn fused_groups_respect_fault_boundaries() {
        // A fault landing inside what would be a fused group must force
        // single-step dispatch of exactly that instruction; results
        // stay identical to the interpreter for every dynamic index,
        // including indices interior to fused groups.
        let cpu = check_idiom_cpu(false);
        let dc = DecodedCpu::new(&cpu);
        let golden = cpu.run(None);
        let total = golden.dyn_insts;
        for idx in 0..total {
            for raw in [3u16, 130] {
                let f = FaultSpec::new(idx, raw);
                assert_eq!(dc.run(Some(f)), cpu.run(Some(f)), "idx {idx} raw {raw}");
            }
        }
    }

    #[test]
    fn register_writes_stay_within_decoded_out_masks() {
        // The masked convergence compare is sound only if executing one
        // instruction never changes a register outside its decoded out
        // mask (flags aside).  Walk every dynamic instruction of
        // programs covering most DOp arms and check exactly that.
        for cpu in [loopy_cpu(), check_idiom_cpu(true), check_idiom_cpu(false)] {
            let dc = DecodedCpu::new(&cpu);
            let (tg, ts) = dc.touched_registers();
            let mut m = DecodedMachine::new(&dc);
            loop {
                let pc = m.state().pc;
                let masks = dc.masks_at(pc);
                let before = m.state().regs.clone();
                let ev = m.step();
                let after = &m.state().regs;
                for g in ferrum_asm::reg::ALL_GPRS {
                    if masks.out_gpr & (1 << g.index()) == 0 {
                        assert_eq!(
                            before.read64(g),
                            after.read64(g),
                            "pc {pc} wrote {g:?} outside its out mask"
                        );
                    }
                }
                for i in 0u8..16 {
                    if masks.out_simd & (1 << i) == 0 {
                        assert_eq!(
                            before.read_zmm(Zmm::new(i)),
                            after.read_zmm(Zmm::new(i)),
                            "pc {pc} wrote zmm{i} outside its out mask"
                        );
                    }
                }
                if let StepEvent::Stop(_) = ev {
                    break;
                }
            }
            // Program-level union covers every out mask and every fault
            // destination, so the masked compare never skips a register
            // a run could have modified.
            for pc in 0..cpu.image().insts.len() {
                let mk = dc.masks_at(pc);
                assert_eq!(mk.out_gpr & !tg, 0, "pc {pc} out-gpr outside union");
                assert_eq!(mk.out_simd & !ts, 0, "pc {pc} out-simd outside union");
            }
        }
    }

    #[test]
    fn lockstep_stepping_matches_interpreter_boundaries() {
        let cpu = loopy_cpu();
        let dc = DecodedCpu::new(&cpu);
        let mut im = Machine::new(&cpu);
        let mut dm = DecodedMachine::new(&dc);
        loop {
            let a = im.step();
            let b = dm.step();
            assert_eq!(a, b);
            assert_eq!(im.state().pc, dm.state().pc);
            assert_eq!(im.dyn_insts(), dm.dyn_insts());
            assert_eq!(im.cycles(), dm.cycles());
            if let StepEvent::Stop(_) = a {
                break;
            }
        }
    }
}
