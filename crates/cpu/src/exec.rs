//! Instruction semantics.

use ferrum_asm::flags::Flags;
use ferrum_asm::inst::{AluOp, DestClass, Inst, ShiftAmount, ShiftOp, UnaryOp};
use ferrum_asm::operand::{MemRef, Operand};
use ferrum_asm::reg::{Gpr, Reg, Width};

use crate::image::{Image, TargetRef};
use crate::machine::RegFile;
use crate::mem::Memory;
use crate::outcome::{CrashKind, StopReason};

/// Mutable execution state.
#[derive(Debug, Clone)]
pub struct State {
    /// Register file.
    pub regs: RegFile,
    /// Memory.
    pub mem: Memory,
    /// Index of the next instruction.
    pub pc: usize,
    /// Shadow return stack (return instruction indices).
    pub call_stack: Vec<usize>,
    /// Program output.
    pub output: Vec<i64>,
}

impl State {
    /// Fresh state for an image: `%rsp` at the stack top, everything else
    /// zero.
    pub fn new(image: &Image) -> State {
        let mut regs = RegFile::new();
        regs.write64(Gpr::Rsp, crate::mem::STACK_TOP);
        State {
            regs,
            mem: Memory::new(image.globals_image.clone()),
            pc: image.entry,
            call_stack: Vec::with_capacity(16),
            output: Vec::new(),
        }
    }

    /// Effective address of a memory operand in this state (symbols are
    /// already resolved to absolute displacements at image load, so the
    /// register walk is complete).  Exposed crate-wide so the
    /// differential stepper can predict store/load targets.
    pub(crate) fn ea(&self, m: &MemRef) -> u64 {
        let mut a = m.disp as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.regs.read64(b));
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.regs.read64(i).wrapping_mul(s.factor()));
        }
        a
    }

    fn read_op(&self, op: &Operand, w: Width) -> Result<u64, CrashKind> {
        match op {
            Operand::Reg(r) => Ok(self.regs.read(r.with_width(w))),
            Operand::Imm(v) => Ok((*v as u64) & w.mask()),
            Operand::Mem(m) => {
                let a = self.ea(m);
                self.mem
                    .load(a, w)
                    .map_err(|f| CrashKind::OutOfBounds(f.addr))
            }
        }
    }

    fn write_op(&mut self, op: &Operand, w: Width, v: u64) -> Result<(), CrashKind> {
        match op {
            Operand::Reg(r) => {
                self.regs.write(r.with_width(w), v);
                Ok(())
            }
            Operand::Imm(_) => unreachable!("immediate destination"),
            Operand::Mem(m) => {
                let a = self.ea(m);
                self.mem
                    .store(a, w, v)
                    .map_err(|f| CrashKind::OutOfBounds(f.addr))
            }
        }
    }
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Keep going.
    Continue,
    /// The run is over.
    Stop(StopReason),
}

/// Executes the instruction at `st.pc`, advancing `st.pc`.
pub fn step(image: &Image, st: &mut State) -> StepEvent {
    let li = &image.insts[st.pc];
    let next = st.pc + 1;
    macro_rules! crash {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(k) => return StepEvent::Stop(StopReason::Crash(k)),
            }
        };
    }
    match &li.inst {
        Inst::Nop => {}
        Inst::Mov { w, src, dst } => {
            let v = crash!(st.read_op(src, *w));
            crash!(st.write_op(dst, *w, v));
        }
        Inst::Movsx {
            src_w,
            dst_w,
            src,
            dst,
        } => {
            let v = crash!(st.read_op(src, *src_w));
            let ext = src_w.sext(v) as u64;
            st.regs.write(dst.with_width(*dst_w), ext & dst_w.mask());
        }
        Inst::Movzx {
            src_w,
            dst_w,
            src,
            dst,
        } => {
            let v = crash!(st.read_op(src, *src_w));
            st.regs.write(dst.with_width(*dst_w), v & src_w.mask());
        }
        Inst::Lea { mem, dst } => {
            let a = st.ea(mem);
            st.regs.write(dst.with_width(Width::W64), a);
        }
        Inst::Alu { op, w, src, dst } => {
            let b = crash!(st.read_op(src, *w));
            let a = crash!(st.read_op(dst, *w));
            let (r, flags) = match op {
                AluOp::Add => {
                    let r = a.wrapping_add(b) & w.mask();
                    (r, Flags::from_add(a, b, *w))
                }
                AluOp::Sub => {
                    let r = a.wrapping_sub(b) & w.mask();
                    (r, Flags::from_sub(a, b, *w))
                }
                AluOp::And => {
                    let r = a & b;
                    (r, Flags::from_logic(r, *w))
                }
                AluOp::Or => {
                    let r = a | b;
                    (r, Flags::from_logic(r, *w))
                }
                AluOp::Xor => {
                    let r = a ^ b;
                    (r, Flags::from_logic(r, *w))
                }
            };
            st.regs.flags = flags;
            crash!(st.write_op(dst, *w, r));
        }
        Inst::Imul { w, src, dst } => {
            let b = crash!(st.read_op(src, *w));
            let a = st.regs.read(dst.with_width(*w));
            let full = i128::from(w.sext(a)) * i128::from(w.sext(b));
            let r = (full as u64) & w.mask();
            let overflow = full != i128::from(w.sext(r));
            let mut flags = Flags::from_logic(r, *w);
            flags.cf = overflow;
            flags.of = overflow;
            st.regs.flags = flags;
            st.regs.write(dst.with_width(*w), r);
        }
        Inst::Unary { op, w, dst } => {
            let v = crash!(st.read_op(dst, *w));
            match op {
                UnaryOp::Neg => {
                    let r = 0u64.wrapping_sub(v) & w.mask();
                    st.regs.flags = Flags::from_sub(0, v, *w);
                    crash!(st.write_op(dst, *w, r));
                }
                UnaryOp::Not => {
                    // NOT does not affect flags (x86 semantics).
                    crash!(st.write_op(dst, *w, !v & w.mask()));
                }
            }
        }
        Inst::Shift { op, w, amount, dst } => {
            let amt_mask = if *w == Width::W64 { 63 } else { 31 };
            let amt = match amount {
                ShiftAmount::Imm(n) => u32::from(*n) & amt_mask,
                ShiftAmount::Cl => (st.regs.read(Reg::b(Gpr::Rcx)) as u32) & amt_mask,
            };
            let v = crash!(st.read_op(dst, *w));
            if amt != 0 {
                let bits = w.bits();
                let (r, cf) = match op {
                    ShiftOp::Shl => {
                        let r = v.wrapping_shl(amt) & w.mask();
                        let cf = amt <= bits && (v >> (bits - amt)) & 1 == 1;
                        (r, cf)
                    }
                    ShiftOp::Shr => {
                        let r = (v & w.mask()) >> amt.min(63);
                        let cf = (v >> (amt - 1)) & 1 == 1;
                        (r, cf)
                    }
                    ShiftOp::Sar => {
                        let s = w.sext(v);
                        let r = (s >> amt.min(63) as i64) as u64 & w.mask();
                        let cf = (v >> (amt - 1)) & 1 == 1;
                        (r, cf)
                    }
                };
                let mut flags = Flags::from_logic(r, *w);
                flags.cf = cf;
                st.regs.flags = flags;
                crash!(st.write_op(dst, *w, r));
            }
        }
        Inst::Cqo { w } => match w {
            Width::W64 => {
                let rax = st.regs.read64(Gpr::Rax) as i64;
                st.regs.write64(Gpr::Rdx, (rax >> 63) as u64);
            }
            _ => {
                let eax = st.regs.read(Reg::l(Gpr::Rax));
                let sign = (Width::W32.sext(eax) >> 31) as u64;
                st.regs.write(Reg::l(Gpr::Rdx), sign & Width::W32.mask());
            }
        },
        Inst::Idiv { w, src } => {
            let divisor = w.sext(crash!(st.read_op(src, *w)));
            if divisor == 0 {
                return StepEvent::Stop(StopReason::Crash(CrashKind::DivideError));
            }
            let (lo, hi) = (
                st.regs.read(Reg::gpr(Gpr::Rax, *w)),
                st.regs.read(Reg::gpr(Gpr::Rdx, *w)),
            );
            let dividend: i128 = match w {
                Width::W64 => ((i128::from(hi as i64)) << 64) | i128::from(lo),
                _ => {
                    let bits = w.bits();
                    ((i128::from(w.sext(hi))) << bits) | i128::from(lo)
                }
            };
            let quot = dividend / i128::from(divisor);
            let rem = dividend % i128::from(divisor);
            let fits = match w {
                Width::W64 => quot >= i128::from(i64::MIN) && quot <= i128::from(i64::MAX),
                _ => {
                    let half = 1i128 << (w.bits() - 1);
                    quot >= -half && quot < half
                }
            };
            if !fits {
                return StepEvent::Stop(StopReason::Crash(CrashKind::DivideError));
            }
            st.regs
                .write(Reg::gpr(Gpr::Rax, *w), quot as u64 & w.mask());
            st.regs.write(Reg::gpr(Gpr::Rdx, *w), rem as u64 & w.mask());
        }
        Inst::Cmp { w, src, dst } => {
            let b = crash!(st.read_op(src, *w));
            let a = crash!(st.read_op(dst, *w));
            st.regs.flags = Flags::from_sub(a, b, *w);
        }
        Inst::Test { w, src, dst } => {
            let b = crash!(st.read_op(src, *w));
            let a = crash!(st.read_op(dst, *w));
            st.regs.flags = Flags::from_logic(a & b, *w);
        }
        Inst::Setcc { cc, dst } => {
            let v = u64::from(cc.eval(st.regs.flags));
            crash!(st.write_op(dst, Width::W8, v));
        }
        Inst::Jmp { .. } => match li.target {
            TargetRef::Index(t) => {
                st.pc = t;
                return StepEvent::Continue;
            }
            TargetRef::Exit => return StepEvent::Stop(StopReason::Detected),
            _ => unreachable!("jmp target resolved at load"),
        },
        Inst::Jcc { cc, .. } => {
            if cc.eval(st.regs.flags) {
                match li.target {
                    TargetRef::Index(t) => {
                        st.pc = t;
                        return StepEvent::Continue;
                    }
                    TargetRef::Exit => return StepEvent::Stop(StopReason::Detected),
                    _ => unreachable!("jcc target resolved at load"),
                }
            }
        }
        Inst::Call { .. } => match li.target {
            TargetRef::Print => {
                let v = st.regs.read64(Gpr::Rdi) as i64;
                st.output.push(v);
            }
            TargetRef::Exit => return StepEvent::Stop(StopReason::Detected),
            TargetRef::Index(t) => {
                let rsp = st.regs.read64(Gpr::Rsp).wrapping_sub(8);
                if st.mem.store(rsp, Width::W64, next as u64).is_err() {
                    return StepEvent::Stop(StopReason::Crash(CrashKind::StackFault(rsp)));
                }
                st.regs.write64(Gpr::Rsp, rsp);
                st.call_stack.push(next);
                st.pc = t;
                return StepEvent::Continue;
            }
            TargetRef::None => unreachable!("call target resolved at load"),
        },
        Inst::Ret => match st.call_stack.pop() {
            None => return StepEvent::Stop(StopReason::MainReturned),
            Some(ret) => {
                let rsp = st.regs.read64(Gpr::Rsp);
                st.regs.write64(Gpr::Rsp, rsp.wrapping_add(8));
                st.pc = ret;
                return StepEvent::Continue;
            }
        },
        Inst::Push { src } => {
            let v = crash!(st.read_op(src, Width::W64));
            let rsp = st.regs.read64(Gpr::Rsp).wrapping_sub(8);
            if st.mem.store(rsp, Width::W64, v).is_err() {
                return StepEvent::Stop(StopReason::Crash(CrashKind::StackFault(rsp)));
            }
            st.regs.write64(Gpr::Rsp, rsp);
        }
        Inst::Pop { dst } => {
            let rsp = st.regs.read64(Gpr::Rsp);
            let v = match st.mem.load(rsp, Width::W64) {
                Ok(v) => v,
                Err(_) => return StepEvent::Stop(StopReason::Crash(CrashKind::StackFault(rsp))),
            };
            st.regs.write64(Gpr::Rsp, rsp.wrapping_add(8));
            crash!(st.write_op(dst, Width::W64, v));
        }
        Inst::MovqToXmm { src, dst } => {
            let v = crash!(st.read_op(src, Width::W64));
            st.regs.write_xmm_movq(*dst, v);
        }
        Inst::MovqFromXmm { src, dst } => {
            let v = st.regs.read_xmm_lane(*src, 0);
            st.regs.write(dst.with_width(Width::W64), v);
        }
        Inst::Pinsrq { lane, src, dst } => {
            let v = crash!(st.read_op(src, Width::W64));
            st.regs.write_xmm_lane(*dst, *lane, v);
        }
        Inst::Pextrq { lane, src, dst } => {
            let v = st.regs.read_xmm_lane(*src, *lane);
            st.regs.write(dst.with_width(Width::W64), v);
        }
        Inst::Vinserti128 {
            lane,
            src,
            src2,
            dst,
        } => {
            let low = st.regs.read_xmm(*src);
            let base = st.regs.read_ymm(*src2);
            let out = if *lane == 0 {
                [low[0], low[1], base[2], base[3]]
            } else {
                [base[0], base[1], low[0], low[1]]
            };
            st.regs.write_ymm(*dst, out);
        }
        Inst::Vpxor { a, b, dst } => {
            let x = st.regs.read_ymm(*a);
            let y = st.regs.read_ymm(*b);
            st.regs
                .write_ymm(*dst, [x[0] ^ y[0], x[1] ^ y[1], x[2] ^ y[2], x[3] ^ y[3]]);
        }
        Inst::Vptest { a, b } => {
            let x = st.regs.read_ymm(*a);
            let y = st.regs.read_ymm(*b);
            let and_zero = (0..4).all(|i| x[i] & y[i] == 0);
            let andn_zero = (0..4).all(|i| !x[i] & y[i] == 0);
            st.regs.flags = Flags {
                zf: and_zero,
                cf: andn_zero,
                sf: false,
                of: false,
                pf: false,
            };
        }
        Inst::Vpxor128 { a, b, dst } => {
            let x = st.regs.read_xmm(*a);
            let y = st.regs.read_xmm(*b);
            st.regs.write_xmm_vex(*dst, [x[0] ^ y[0], x[1] ^ y[1]]);
        }
        Inst::Vptest128 { a, b } => {
            let x = st.regs.read_xmm(*a);
            let y = st.regs.read_xmm(*b);
            let and_zero = (0..2).all(|i| x[i] & y[i] == 0);
            let andn_zero = (0..2).all(|i| !x[i] & y[i] == 0);
            st.regs.flags = Flags {
                zf: and_zero,
                cf: andn_zero,
                sf: false,
                of: false,
                pf: false,
            };
        }
        Inst::Vinserti64x4 {
            lane,
            src,
            src2,
            dst,
        } => {
            let low = st.regs.read_ymm(*src);
            let mut out = st.regs.read_zmm(*src2);
            let off = usize::from(*lane) * 4;
            out[off..off + 4].copy_from_slice(&low);
            st.regs.write_zmm(*dst, out);
        }
        Inst::Vpxor512 { a, b, dst } => {
            let x = st.regs.read_zmm(*a);
            let y = st.regs.read_zmm(*b);
            let mut out = [0u64; 8];
            for i in 0..8 {
                out[i] = x[i] ^ y[i];
            }
            st.regs.write_zmm(*dst, out);
        }
        Inst::Vptest512 { a, b } => {
            let x = st.regs.read_zmm(*a);
            let y = st.regs.read_zmm(*b);
            let and_zero = (0..8).all(|i| x[i] & y[i] == 0);
            let andn_zero = (0..8).all(|i| !x[i] & y[i] == 0);
            st.regs.flags = Flags {
                zf: and_zero,
                cf: andn_zero,
                sf: false,
                of: false,
                pf: false,
            };
        }
    }
    st.pc = next;
    StepEvent::Continue
}

/// Width (in bits) of the injectable destination of `inst`, or `None`
/// when the instruction is not an eligible fault site.
///
/// Frame registers (`%rsp`, `%rbp`) are excluded: faults there are
/// overwhelmingly crash-inducing and PIN-style samplers target data
/// destinations (see DESIGN.md).
pub fn eligible_dest_bits(inst: &Inst) -> Option<u32> {
    inst.injectable_bits()
}

/// Applies a write-back fault to the destination of `inst`.
pub fn apply_fault(inst: &Inst, raw_bit: u16, st: &mut State) {
    match inst.dest_class() {
        DestClass::Gpr(r) => {
            st.regs.flip_gpr_bit(r, u32::from(raw_bit) % r.width.bits());
        }
        DestClass::RaxRdxPair(w) => {
            let bits = w.bits();
            let sel = u32::from(raw_bit) % (2 * bits);
            let (g, bit) = if sel < bits {
                (Gpr::Rax, sel)
            } else {
                (Gpr::Rdx, sel - bits)
            };
            st.regs.flip_gpr_bit(Reg::gpr(g, w), bit);
        }
        DestClass::Rflags => {
            let bit = ferrum_asm::flags::FlagBit::ALL[usize::from(raw_bit) % 4];
            st.regs.flags.flip(bit);
        }
        DestClass::Xmm(x) => st.regs.flip_simd_bit(x.0, u32::from(raw_bit) % 128),
        DestClass::Ymm(y) => st.regs.flip_simd_bit(y.0, u32::from(raw_bit) % 256),
        DestClass::Zmm(z) => st.regs.flip_simd_bit(z.0, u32::from(raw_bit) % 512),
        DestClass::None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::program::single_block_main;

    fn run_insts(insts: Vec<Inst>) -> (State, StopReason) {
        let p = single_block_main(insts);
        let image = Image::load(&p).unwrap();
        let mut st = State::new(&image);
        for _ in 0..10_000 {
            match step(&image, &mut st) {
                StepEvent::Continue => {}
                StepEvent::Stop(r) => return (st, r),
            }
        }
        panic!("did not stop");
    }

    fn mov_imm(dst: Gpr, v: i64) -> Inst {
        Inst::Mov {
            w: Width::W64,
            src: Operand::Imm(v),
            dst: Operand::Reg(Reg::q(dst)),
        }
    }

    #[test]
    fn mov_and_alu() {
        let (st, stop) = run_insts(vec![
            mov_imm(Gpr::Rax, 40),
            mov_imm(Gpr::Rcx, 2),
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
        ]);
        assert_eq!(stop, StopReason::MainReturned);
        assert_eq!(st.regs.read64(Gpr::Rax), 42);
    }

    #[test]
    fn print_intrinsic_captures_rdi() {
        let (st, _) = run_insts(vec![
            mov_imm(Gpr::Rdi, -9),
            Inst::Call {
                target: "print_i64".into(),
            },
        ]);
        assert_eq!(st.output, vec![-9]);
    }

    #[test]
    fn jcc_taken_and_not_taken() {
        // cmp 1,1; je exit_function → detected
        let (_, stop) = run_insts(vec![
            mov_imm(Gpr::Rax, 1),
            Inst::Cmp {
                w: Width::W64,
                src: Operand::Imm(1),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Jcc {
                cc: ferrum_asm::flags::Cc::E,
                target: "exit_function".into(),
            },
        ]);
        assert_eq!(stop, StopReason::Detected);
        let (_, stop) = run_insts(vec![
            mov_imm(Gpr::Rax, 1),
            Inst::Cmp {
                w: Width::W64,
                src: Operand::Imm(2),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Jcc {
                cc: ferrum_asm::flags::Cc::E,
                target: "exit_function".into(),
            },
        ]);
        assert_eq!(stop, StopReason::MainReturned);
    }

    #[test]
    fn push_pop_round_trip() {
        let (st, _) = run_insts(vec![
            mov_imm(Gpr::R10, 1234),
            Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::R10)),
            },
            mov_imm(Gpr::R10, 0),
            Inst::Pop {
                dst: Operand::Reg(Reg::q(Gpr::R10)),
            },
        ]);
        assert_eq!(st.regs.read64(Gpr::R10), 1234);
        assert_eq!(st.regs.read64(Gpr::Rsp), crate::mem::STACK_TOP);
    }

    #[test]
    fn division_and_divide_error() {
        let (st, stop) = run_insts(vec![
            mov_imm(Gpr::Rax, -7),
            Inst::Cqo { w: Width::W64 },
            mov_imm(Gpr::Rcx, 2),
            Inst::Idiv {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
            },
        ]);
        assert_eq!(stop, StopReason::MainReturned);
        assert_eq!(st.regs.read64(Gpr::Rax) as i64, -3);
        assert_eq!(st.regs.read64(Gpr::Rdx) as i64, -1);

        let (_, stop) = run_insts(vec![
            mov_imm(Gpr::Rax, 1),
            Inst::Cqo { w: Width::W64 },
            mov_imm(Gpr::Rcx, 0),
            Inst::Idiv {
                w: Width::W64,
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
            },
        ]);
        assert_eq!(stop, StopReason::Crash(CrashKind::DivideError));
    }

    #[test]
    fn oob_access_crashes() {
        let (_, stop) = run_insts(vec![
            mov_imm(Gpr::Rax, 0x10),
            Inst::Mov {
                w: Width::W64,
                src: Operand::Mem(MemRef::base_disp(Gpr::Rax, 0)),
                dst: Operand::Reg(Reg::q(Gpr::Rcx)),
            },
        ]);
        assert!(matches!(
            stop,
            StopReason::Crash(CrashKind::OutOfBounds(0x10))
        ));
    }

    #[test]
    fn simd_batch_check_detects_mismatch() {
        // Build the Fig. 6 shape with an intentional mismatch in lane 3.
        let x = |n| ferrum_asm::reg::Xmm::new(n);
        let y = |n| ferrum_asm::reg::Ymm::new(n);
        let (_, stop) = run_insts(vec![
            mov_imm(Gpr::Rax, 1),
            mov_imm(Gpr::Rcx, 2),
            // dup accumulators xmm0/xmm2 and orig accumulators xmm1/xmm3
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(0),
            },
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(1),
            },
            Inst::Pinsrq {
                lane: 1,
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
                dst: x(0),
            },
            Inst::Pinsrq {
                lane: 1,
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
                dst: x(1),
            },
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(2),
            },
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(3),
            },
            Inst::Pinsrq {
                lane: 1,
                src: Operand::Reg(Reg::q(Gpr::Rcx)),
                dst: x(2),
            },
            // MISMATCH: lane 1 of xmm3 gets rax (1) instead of rcx (2).
            Inst::Pinsrq {
                lane: 1,
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(3),
            },
            Inst::Vinserti128 {
                lane: 1,
                src: x(2),
                src2: y(0),
                dst: y(0),
            },
            Inst::Vinserti128 {
                lane: 1,
                src: x(3),
                src2: y(1),
                dst: y(1),
            },
            Inst::Vpxor {
                a: y(1),
                b: y(0),
                dst: y(0),
            },
            Inst::Vptest { a: y(0), b: y(0) },
            Inst::Jcc {
                cc: ferrum_asm::flags::Cc::Ne,
                target: "exit_function".into(),
            },
        ]);
        assert_eq!(stop, StopReason::Detected);
    }

    #[test]
    fn simd_batch_check_passes_when_equal() {
        let x = |n| ferrum_asm::reg::Xmm::new(n);
        let y = |n| ferrum_asm::reg::Ymm::new(n);
        let (_, stop) = run_insts(vec![
            mov_imm(Gpr::Rax, 5),
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(0),
            },
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(1),
            },
            Inst::Pinsrq {
                lane: 1,
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(0),
            },
            Inst::Pinsrq {
                lane: 1,
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(1),
            },
            Inst::Vinserti128 {
                lane: 1,
                src: x(0),
                src2: y(0),
                dst: y(0),
            },
            Inst::Vinserti128 {
                lane: 1,
                src: x(1),
                src2: y(1),
                dst: y(1),
            },
            Inst::Vpxor {
                a: y(1),
                b: y(0),
                dst: y(0),
            },
            Inst::Vptest { a: y(0), b: y(0) },
            Inst::Jcc {
                cc: ferrum_asm::flags::Cc::Ne,
                target: "exit_function".into(),
            },
        ]);
        assert_eq!(stop, StopReason::MainReturned);
    }

    #[test]
    fn vptest128_flags() {
        let x = |n| ferrum_asm::reg::Xmm::new(n);
        let (_, stop) = run_insts(vec![
            mov_imm(Gpr::Rax, 3),
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(0),
            },
            Inst::MovqToXmm {
                src: Operand::Reg(Reg::q(Gpr::Rax)),
                dst: x(1),
            },
            Inst::Vpxor128 {
                a: x(1),
                b: x(0),
                dst: x(0),
            },
            Inst::Vptest128 { a: x(0), b: x(0) },
            Inst::Jcc {
                cc: ferrum_asm::flags::Cc::Ne,
                target: "exit_function".into(),
            },
        ]);
        assert_eq!(stop, StopReason::MainReturned);
    }

    #[test]
    fn zmm_batch_check_detects_and_passes() {
        use ferrum_asm::reg::{Xmm, Ymm, Zmm};
        let x = Xmm::new(0);
        let x2 = Xmm::new(2);
        let y0 = Ymm::new(0);
        let y1 = Ymm::new(1);
        let y4 = Ymm::new(4);
        let y5 = Ymm::new(5);
        let z0 = Zmm::new(0);
        let z1 = Zmm::new(1);
        // Equal 8-lane batch: dup side zmm0, orig side zmm1, all lanes 3.
        let fill = |dst: Xmm, v: i64| -> Vec<Inst> {
            vec![
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Imm(v),
                    dst: Operand::Reg(Reg::q(Gpr::Rax)),
                },
                Inst::MovqToXmm {
                    src: Operand::Reg(Reg::q(Gpr::Rax)),
                    dst,
                },
                Inst::Pinsrq {
                    lane: 1,
                    src: Operand::Reg(Reg::q(Gpr::Rax)),
                    dst,
                },
            ]
        };
        let mut insts = Vec::new();
        for (i, v) in [
            (0u8, 3i64),
            (1, 3),
            (2, 3),
            (3, 3),
            (4, 3),
            (5, 3),
            (6, 3),
            (7, 9),
        ] {
            insts.extend(fill(Xmm::new(i), v));
        }
        insts.extend([
            Inst::Vinserti128 {
                lane: 1,
                src: x2,
                src2: y0,
                dst: y0,
            },
            Inst::Vinserti128 {
                lane: 1,
                src: Xmm::new(3),
                src2: y1,
                dst: y1,
            },
            Inst::Vinserti128 {
                lane: 1,
                src: Xmm::new(6),
                src2: y4,
                dst: y4,
            },
            Inst::Vinserti128 {
                lane: 1,
                src: Xmm::new(7),
                src2: y5,
                dst: y5,
            },
            Inst::Vinserti64x4 {
                lane: 1,
                src: y4,
                src2: z0,
                dst: z0,
            },
            Inst::Vinserti64x4 {
                lane: 1,
                src: y5,
                src2: z1,
                dst: z1,
            },
            Inst::Vpxor512 {
                a: z1,
                b: z0,
                dst: z0,
            },
            Inst::Vptest512 { a: z0, b: z0 },
            Inst::Jcc {
                cc: ferrum_asm::flags::Cc::Ne,
                target: "exit_function".into(),
            },
        ]);
        // Lane from xmm7 (value 9) vs xmm6 (value 3) mismatch → detected.
        let (_, stop) = run_insts(insts.clone());
        assert_eq!(stop, StopReason::Detected);
        // Make them equal → passes.
        let fixed: Vec<Inst> = insts
            .into_iter()
            .map(|i| match i {
                Inst::Mov {
                    w,
                    src: Operand::Imm(9),
                    dst,
                } => Inst::Mov {
                    w,
                    src: Operand::Imm(3),
                    dst,
                },
                other => other,
            })
            .collect();
        let (_, stop) = run_insts(fixed);
        assert_eq!(stop, StopReason::MainReturned);
        let _ = x;
    }

    #[test]
    fn fault_application_flips_exactly_one_bit() {
        let p = single_block_main(vec![mov_imm(Gpr::Rax, 0)]);
        let image = Image::load(&p).unwrap();
        let mut st = State::new(&image);
        step(&image, &mut st);
        apply_fault(&image.insts[0].inst, 5, &mut st);
        assert_eq!(st.regs.read64(Gpr::Rax), 1 << 5);
    }

    #[test]
    fn fault_on_cmp_flips_a_flag() {
        let cmp = Inst::Cmp {
            w: Width::W64,
            src: Operand::Imm(0),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        };
        let p = single_block_main(vec![mov_imm(Gpr::Rax, 0), cmp.clone()]);
        let image = Image::load(&p).unwrap();
        let mut st = State::new(&image);
        step(&image, &mut st);
        step(&image, &mut st);
        assert!(st.regs.flags.zf);
        apply_fault(&cmp, 0, &mut st); // raw 0 → ZF
        assert!(!st.regs.flags.zf);
    }

    #[test]
    fn eligibility_rules() {
        assert_eq!(eligible_dest_bits(&mov_imm(Gpr::Rax, 0)), Some(64));
        // Frame-register destinations are not sites.
        assert_eq!(eligible_dest_bits(&mov_imm(Gpr::Rsp, 0)), None);
        assert_eq!(
            eligible_dest_bits(&Inst::Pop {
                dst: Operand::Reg(Reg::q(Gpr::Rbp))
            }),
            None
        );
        // cmp targets RFLAGS.
        let cmp = Inst::Cmp {
            w: Width::W32,
            src: Operand::Imm(0),
            dst: Operand::Reg(Reg::l(Gpr::Rax)),
        };
        assert_eq!(eligible_dest_bits(&cmp), Some(4));
        // Stores and branches are not sites.
        let store = Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rax)),
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
        };
        assert_eq!(eligible_dest_bits(&store), None);
        assert_eq!(eligible_dest_bits(&Inst::Ret), None);
        assert_eq!(
            eligible_dest_bits(&Inst::Idiv {
                w: Width::W32,
                src: Operand::Reg(Reg::l(Gpr::Rcx))
            }),
            Some(64)
        );
    }

    #[test]
    fn sub_register_write_semantics_in_exec() {
        let (st, _) = run_insts(vec![
            mov_imm(Gpr::Rax, -1),
            Inst::Mov {
                w: Width::W32,
                src: Operand::Imm(7),
                dst: Operand::Reg(Reg::l(Gpr::Rax)),
            },
        ]);
        assert_eq!(st.regs.read64(Gpr::Rax), 7); // 32-bit write zero-extends
    }

    #[test]
    fn movsx_movzx() {
        let (st, _) = run_insts(vec![
            mov_imm(Gpr::Rcx, 0xff),
            Inst::Movsx {
                src_w: Width::W8,
                dst_w: Width::W64,
                src: Operand::Reg(Reg::b(Gpr::Rcx)),
                dst: Reg::q(Gpr::Rax),
            },
            Inst::Movzx {
                src_w: Width::W8,
                dst_w: Width::W64,
                src: Operand::Reg(Reg::b(Gpr::Rcx)),
                dst: Reg::q(Gpr::Rdx),
            },
        ]);
        assert_eq!(st.regs.read64(Gpr::Rax) as i64, -1);
        assert_eq!(st.regs.read64(Gpr::Rdx), 0xff);
    }

    #[test]
    fn shift_by_zero_preserves_flags() {
        let (st, _) = run_insts(vec![
            mov_imm(Gpr::Rax, 1),
            Inst::Cmp {
                w: Width::W64,
                src: Operand::Imm(1),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
            Inst::Shift {
                op: ShiftOp::Shl,
                w: Width::W64,
                amount: ShiftAmount::Imm(0),
                dst: Operand::Reg(Reg::q(Gpr::Rax)),
            },
        ]);
        assert!(st.regs.flags.zf, "zero-count shift must not clobber flags");
    }
}
