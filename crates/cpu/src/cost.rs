//! The cycle cost model.
//!
//! The paper reports wall-clock runtime overheads on an Intel Xeon; our
//! substitute is a per-instruction-class cycle model.  Only *relative*
//! costs matter for reproducing Fig. 11's shape (which technique is
//! cheaper, by roughly what factor); the defaults below follow common
//! latency/throughput intuition for a modern out-of-order x86 core:
//! memory operations cost a few cycles, ALU operations one, branches pay
//! for redirection, division is slow, and SIMD moves/logicals are cheap.
//!
//! Costs are expressed in **quarter-cycles** so that the co-issue
//! discount for protection code (see
//! [`CostModel::protection_percent`]) retains sub-cycle resolution:
//! a one-cycle ALU op costs 4 units, and a discounted duplicate of it
//! costs 2 units (half a cycle), not a rounded-up full cycle.
//! Instructions executing on the vector units (`movq`/`pinsrq` into
//! XMM, `vinserti128`, `vpxor`, `vptest`) are charged [`CostModel::simd_move`]
//! regardless of operand kind: the paper's central premise (§III) is
//! that these units sit idle in integer code, so work moved onto them
//! does not compete with the protected computation.

use ferrum_asm::inst::Inst;
use ferrum_asm::operand::Operand;
use ferrum_asm::provenance::Provenance;

/// Per-class cycle costs.  All fields are public so experiments can
/// build ablated models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Register-to-register or immediate-to-register moves, `lea`,
    /// `setcc`, sign/zero-extension on registers.
    pub reg_move: u64,
    /// Memory load (any instruction with a memory source).
    pub mem_load: u64,
    /// Memory store (memory destination).
    pub mem_store: u64,
    /// Integer ALU on registers (add/sub/logic/shift/neg/not/cmp/test).
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide (plus `cqo`).
    pub div: u64,
    /// Unconditional jump.
    pub jmp: u64,
    /// Conditional jump.
    pub jcc: u64,
    /// Call and return.
    pub call: u64,
    /// Push/pop.
    pub push_pop: u64,
    /// GPR↔XMM moves, `pinsrq`/`pextrq`, `vinserti128`.
    pub simd_move: u64,
    /// `vpxor` (either width).
    pub simd_logic: u64,
    /// `vptest` (either width).
    pub simd_test: u64,
    /// `nop`.
    pub nop: u64,
    /// Percentage of the base cost charged for protection-tagged
    /// instructions (duplicates, captures, checkers).  Duplication code
    /// is data-independent of the protected computation, so on an
    /// out-of-order superscalar it largely co-issues in otherwise idle
    /// slots, and checker branches are never taken and perfectly
    /// predicted.  The default of 50% models this instruction-level
    /// parallelism; set to 100 for a strictly serial machine (the
    /// `repro_ablation` harness sweeps it).
    pub protection_percent: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            reg_move: 4,
            mem_load: 12,
            mem_store: 12,
            alu: 4,
            mul: 12,
            div: 96,
            jmp: 4,
            jcc: 8,
            call: 12,
            push_pop: 8,
            simd_move: 2,
            simd_logic: 2,
            simd_test: 4,
            nop: 4,
            protection_percent: 50,
        }
    }
}

/// The cost class of an instruction — one per [`CostModel`] field.
///
/// This is the **single source of truth** for per-class pricing: both
/// the interpreter (priced per step via [`CostModel::cost_tagged`]) and
/// the decoded engine (which bakes the same `cost_tagged` result into
/// each lowered instruction) bottom out in
/// [`CostClass::classify`] + [`CostModel::of_class`], so a cost-model
/// edit cannot desynchronise the engines — there is exactly one
/// instruction→class match and one class→cycles table in the codebase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Register/immediate moves, `lea`, `setcc`, extensions, `cqo`.
    RegMove,
    /// Memory load (any memory source).
    MemLoad,
    /// Memory store (memory destination).
    MemStore,
    /// Integer ALU on registers.
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide.
    Div,
    /// Unconditional jump.
    Jmp,
    /// Conditional jump.
    Jcc,
    /// Call and return.
    Call,
    /// Push/pop.
    PushPop,
    /// GPR↔SIMD moves and lane inserts/extracts.
    SimdMove,
    /// SIMD xor.
    SimdLogic,
    /// SIMD test.
    SimdTest,
    /// `nop`.
    Nop,
}

impl CostClass {
    /// Every class, in [`CostModel`] field order.
    pub const ALL: [CostClass; 14] = [
        CostClass::RegMove,
        CostClass::MemLoad,
        CostClass::MemStore,
        CostClass::Alu,
        CostClass::Mul,
        CostClass::Div,
        CostClass::Jmp,
        CostClass::Jcc,
        CostClass::Call,
        CostClass::PushPop,
        CostClass::SimdMove,
        CostClass::SimdLogic,
        CostClass::SimdTest,
        CostClass::Nop,
    ];

    /// Stable lowercase label (tables, JSON).
    pub fn label(self) -> &'static str {
        match self {
            CostClass::RegMove => "reg_move",
            CostClass::MemLoad => "mem_load",
            CostClass::MemStore => "mem_store",
            CostClass::Alu => "alu",
            CostClass::Mul => "mul",
            CostClass::Div => "div",
            CostClass::Jmp => "jmp",
            CostClass::Jcc => "jcc",
            CostClass::Call => "call",
            CostClass::PushPop => "push_pop",
            CostClass::SimdMove => "simd_move",
            CostClass::SimdLogic => "simd_logic",
            CostClass::SimdTest => "simd_test",
            CostClass::Nop => "nop",
        }
    }

    /// The cost class of `inst` — the only instruction→class match in
    /// the codebase.
    pub fn classify(inst: &Inst) -> CostClass {
        let mem_src = |op: &Operand| matches!(op, Operand::Mem(_));
        match inst {
            Inst::Mov { src, dst, .. } => {
                if mem_src(src) {
                    CostClass::MemLoad
                } else if mem_src(dst) {
                    CostClass::MemStore
                } else {
                    CostClass::RegMove
                }
            }
            Inst::Movsx { src, .. } | Inst::Movzx { src, .. } => {
                if mem_src(src) {
                    CostClass::MemLoad
                } else {
                    CostClass::RegMove
                }
            }
            Inst::Lea { .. } => CostClass::RegMove,
            Inst::Alu { src, dst, .. } => {
                if mem_src(src) {
                    CostClass::MemLoad
                } else if mem_src(dst) {
                    CostClass::MemStore
                } else {
                    CostClass::Alu
                }
            }
            Inst::Imul { .. } => CostClass::Mul,
            Inst::Unary { dst, .. } | Inst::Shift { dst, .. } => {
                if mem_src(dst) {
                    CostClass::MemStore
                } else {
                    CostClass::Alu
                }
            }
            Inst::Cqo { .. } => CostClass::RegMove,
            Inst::Idiv { .. } => CostClass::Div,
            Inst::Cmp { src, dst, .. } | Inst::Test { src, dst, .. } => {
                if mem_src(src) || mem_src(dst) {
                    CostClass::MemLoad
                } else {
                    CostClass::Alu
                }
            }
            Inst::Setcc { .. } => CostClass::RegMove,
            Inst::Jmp { .. } => CostClass::Jmp,
            Inst::Jcc { .. } => CostClass::Jcc,
            Inst::Call { .. } | Inst::Ret => CostClass::Call,
            Inst::Push { .. } | Inst::Pop { .. } => CostClass::PushPop,
            // Vector-port execution: charged simd_move even with a
            // memory source (see the module docs on under-utilisation).
            Inst::MovqToXmm { .. } | Inst::Pinsrq { .. } => CostClass::SimdMove,
            Inst::MovqFromXmm { .. }
            | Inst::Pextrq { .. }
            | Inst::Vinserti128 { .. }
            | Inst::Vinserti64x4 { .. } => CostClass::SimdMove,
            Inst::Vpxor { .. } | Inst::Vpxor128 { .. } | Inst::Vpxor512 { .. } => {
                CostClass::SimdLogic
            }
            Inst::Vptest { .. } | Inst::Vptest128 { .. } | Inst::Vptest512 { .. } => {
                CostClass::SimdTest
            }
            Inst::Nop => CostClass::Nop,
        }
    }
}

impl CostModel {
    /// Cycles charged for one execution of `inst` carrying provenance
    /// `prov`: the base class cost, discounted for protection code.
    pub fn cost_tagged(&self, inst: &Inst, prov: Provenance) -> u64 {
        let base = self.cost(inst);
        if prov.is_protection() {
            (base * self.protection_percent / 100).max(1)
        } else {
            base
        }
    }

    /// Cycles charged for executing `inst` once.
    pub fn cost(&self, inst: &Inst) -> u64 {
        self.of_class(CostClass::classify(inst))
    }

    /// The cycles this model charges for one cost class — the only
    /// class→cycles table in the codebase.
    pub fn of_class(&self, class: CostClass) -> u64 {
        match class {
            CostClass::RegMove => self.reg_move,
            CostClass::MemLoad => self.mem_load,
            CostClass::MemStore => self.mem_store,
            CostClass::Alu => self.alu,
            CostClass::Mul => self.mul,
            CostClass::Div => self.div,
            CostClass::Jmp => self.jmp,
            CostClass::Jcc => self.jcc,
            CostClass::Call => self.call,
            CostClass::PushPop => self.push_pop,
            CostClass::SimdMove => self.simd_move,
            CostClass::SimdLogic => self.simd_logic,
            CostClass::SimdTest => self.simd_test,
            CostClass::Nop => self.nop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::inst::AluOp;
    use ferrum_asm::operand::MemRef;
    use ferrum_asm::reg::{Gpr, Reg, Width, Xmm, Ymm};

    #[test]
    fn memory_operands_cost_more() {
        let m = CostModel::default();
        let rr = Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rax)),
            dst: Operand::Reg(Reg::q(Gpr::Rcx)),
        };
        let load = Inst::Mov {
            w: Width::W64,
            src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
            dst: Operand::Reg(Reg::q(Gpr::Rcx)),
        };
        let store = Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rcx)),
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
        };
        assert!(m.cost(&load) > m.cost(&rr));
        assert!(m.cost(&store) > m.cost(&rr));
    }

    #[test]
    fn division_is_expensive() {
        let m = CostModel::default();
        let div = Inst::Idiv {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rcx)),
        };
        let add = Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rax)),
            dst: Operand::Reg(Reg::q(Gpr::Rcx)),
        };
        assert!(m.cost(&div) > 10 * m.cost(&add));
    }

    #[test]
    fn simd_checker_ops_are_cheap() {
        let m = CostModel::default();
        assert_eq!(
            m.cost(&Inst::Vpxor {
                a: Ymm::new(0),
                b: Ymm::new(1),
                dst: Ymm::new(0)
            }),
            m.simd_logic
        );
        assert_eq!(
            m.cost(&Inst::Vptest {
                a: Ymm::new(0),
                b: Ymm::new(0)
            }),
            m.simd_test
        );
        assert_eq!(
            m.cost(&Inst::Pinsrq {
                lane: 1,
                src: Operand::Reg(Reg::q(Gpr::Rdi)),
                dst: Xmm::new(0)
            }),
            m.simd_move
        );
    }

    #[test]
    fn protection_discount_applies_only_to_protection_code() {
        use ferrum_asm::provenance::{Provenance, TechniqueTag};
        let m = CostModel::default();
        let load = Inst::Mov {
            w: Width::W64,
            src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
            dst: Operand::Reg(Reg::q(Gpr::R10)),
        };
        let full = m.cost_tagged(&load, Provenance::FromIr(0));
        let disc = m.cost_tagged(&load, Provenance::Protection(TechniqueTag::Ferrum, ferrum_asm::provenance::Mechanism::Dup));
        assert_eq!(full, m.mem_load);
        assert_eq!(disc, (m.mem_load * m.protection_percent / 100).max(1));
        assert!(disc < full);
        // Discounted cost never reaches zero.
        let nop = Inst::Nop;
        assert!(m.cost_tagged(&nop, Provenance::Protection(TechniqueTag::Ferrum, ferrum_asm::provenance::Mechanism::Dup)) >= 1);
    }

    #[test]
    fn every_instruction_has_nonzero_cost() {
        let m = CostModel::default();
        for inst in [
            Inst::Nop,
            Inst::Ret,
            Inst::Cqo { w: Width::W64 },
            Inst::Jmp { target: "x".into() },
            Inst::Push {
                src: Operand::Reg(Reg::q(Gpr::R10)),
            },
        ] {
            assert!(m.cost(&inst) > 0);
        }
    }
}
