//! Snapshot/restore execution: the mechanism behind prefix-sharing
//! fault-injection campaigns.
//!
//! A plain campaign re-executes the whole program from instruction 0
//! for every injected fault, even though every run is byte-identical to
//! the golden run up to the injection point.  [`Machine`] exposes the
//! simulator as a steppable object whose complete architectural state —
//! GPRs, SIMD registers, RFLAGS, memory, program counter, output
//! buffer, call stack, and the cycle/instruction counters — can be
//! captured with [`Machine::snapshot`] and reinstated with
//! [`Machine::restore`].  A campaign executor runs the golden prefix
//! once, snapshots it periodically, and starts each faulted run from
//! the nearest snapshot at-or-before its injection index (the
//! incremental-injection idea FastFlip applies to compositional
//! analysis; see `PAPERS.md`).
//!
//! Determinism contract: for any snapshot taken at instruction boundary
//! `k` during a fault-free run, resuming it with faults whose
//! `dyn_index >= k` produces a [`RunResult`] byte-identical to a full
//! run with the same faults.  `campaign.rs` in `ferrum-faultsim` pins
//! this with tests.

use crate::exec::{apply_fault, step, State, StepEvent};
use crate::fault::FaultSpec;
use crate::outcome::{RunResult, StopReason};
use crate::run::Cpu;

/// A complete architectural checkpoint taken at an instruction boundary.
#[derive(Debug, Clone)]
pub struct Snapshot {
    state: State,
    cycles: u64,
    dyn_insts: u64,
}

impl Snapshot {
    /// Assembles a snapshot from raw parts — how the decoded engine's
    /// machine produces [`Snapshot`]s interchangeable with the
    /// interpreter's (both execute over the same [`State`] type).
    pub(crate) fn from_parts(state: State, cycles: u64, dyn_insts: u64) -> Snapshot {
        Snapshot {
            state,
            cycles,
            dyn_insts,
        }
    }

    /// The captured architectural state.
    pub(crate) fn state(&self) -> &State {
        &self.state
    }

    /// Number of dynamic instructions executed before this snapshot —
    /// exactly the work a run resumed from it does not repeat.
    pub fn dyn_insts(&self) -> u64 {
        self.dyn_insts
    }

    /// Accumulated cycles at the snapshot point.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

/// A steppable simulation of one program execution.
///
/// Unlike [`Cpu::run`], which drives a run to completion internally,
/// `Machine` hands control back after every instruction, so callers can
/// capture snapshots, resume from them, and inject faults at precise
/// dynamic indices.  `Cpu::run_multi` itself is implemented on top of
/// this type, so both paths share one set of semantics.
#[derive(Debug, Clone)]
pub struct Machine<'a> {
    cpu: &'a Cpu,
    st: State,
    cycles: u64,
    dyn_insts: u64,
    stop: Option<StopReason>,
}

impl<'a> Machine<'a> {
    /// A machine at the program entry point (the reset state).
    pub fn new(cpu: &'a Cpu) -> Machine<'a> {
        Machine {
            cpu,
            st: State::new(cpu.image()),
            cycles: 0,
            dyn_insts: 0,
            stop: None,
        }
    }

    /// Dynamic instructions executed so far.
    pub fn dyn_insts(&self) -> u64 {
        self.dyn_insts
    }

    /// Cycles accumulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Why the run stopped, if it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop
    }

    /// The architectural state at the current instruction boundary.
    pub fn state(&self) -> &State {
        &self.st
    }

    /// Mutable architectural state — the escape hatch differential
    /// forensics uses to repair a faulty run's registers from the
    /// golden run mid-flight (kill-window bisection).
    pub fn state_mut(&mut self) -> &mut State {
        &mut self.st
    }

    /// Captures the complete architectural state at the current
    /// instruction boundary.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            state: self.st.clone(),
            cycles: self.cycles,
            dyn_insts: self.dyn_insts,
        }
    }

    /// Reinstates a snapshot (taken from any machine over the same
    /// [`Cpu`]), clearing any stop condition.
    pub fn restore(&mut self, snap: &Snapshot) {
        self.st = snap.state.clone();
        self.cycles = snap.cycles;
        self.dyn_insts = snap.dyn_insts;
        self.stop = None;
    }

    /// Executes one instruction, injecting any fault scheduled for the
    /// current dynamic index right after write-back.
    ///
    /// Returns `StepEvent::Continue` while the run can proceed; once a
    /// stop condition is reached (including step-limit exhaustion) the
    /// machine latches it and further calls return it unchanged.
    pub fn step_faulted(&mut self, faults: &[FaultSpec]) -> StepEvent {
        if let Some(stop) = self.stop {
            return StepEvent::Stop(stop);
        }
        if self.dyn_insts >= self.cpu.step_limit() {
            self.stop = Some(StopReason::Timeout);
            return StepEvent::Stop(StopReason::Timeout);
        }
        let pc = self.st.pc;
        let ev = step(self.cpu.image(), &mut self.st);
        let li = &self.cpu.image().insts[pc];
        self.cycles += self.cpu.cost_model().cost_tagged(&li.inst, li.prov);
        for f in faults {
            if f.dyn_index == self.dyn_insts {
                apply_fault(&li.inst, f.raw_bit, &mut self.st);
            }
        }
        self.dyn_insts += 1;
        if let StepEvent::Stop(stop) = ev {
            self.stop = Some(stop);
        }
        ev
    }

    /// Executes one fault-free instruction.
    pub fn step(&mut self) -> StepEvent {
        self.step_faulted(&[])
    }

    /// Runs until the program stops, injecting `faults` along the way.
    ///
    /// Faults whose `dyn_index` precedes the machine's current position
    /// are ignored — resuming from a snapshot past an injection point
    /// cannot re-apply it.
    pub fn run_to_completion(&mut self, faults: &[FaultSpec]) -> RunResult {
        loop {
            if let StepEvent::Stop(_) = self.step_faulted(faults) {
                return self.result();
            }
        }
    }

    /// The run result so far (meaningful once stopped).
    fn result(&self) -> RunResult {
        RunResult {
            stop: self.stop.expect("machine has stopped"),
            output: self.st.output.clone(),
            cycles: self.cycles,
            dyn_insts: self.dyn_insts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::{Global, Module};
    use ferrum_mir::types::Ty;

    fn sum_cpu() -> Cpu {
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![3, 5, 7, 11]));
        let mut b = FunctionBuilder::new("main", &[], None);
        let base = b.global(g);
        let mut acc = b.iconst(Ty::I64, 0);
        for i in 0..4 {
            let idx = b.iconst(Ty::I64, i);
            let p = b.gep(base, idx);
            let v = b.load(Ty::I64, p);
            acc = b.add(Ty::I64, acc, v);
        }
        b.print(acc);
        b.ret(None);
        module.functions.push(b.finish());
        let asm = ferrum_backend::compile(&module).unwrap();
        Cpu::load(&asm).unwrap()
    }

    #[test]
    fn stepping_to_completion_matches_run() {
        let cpu = sum_cpu();
        let golden = cpu.run(None);
        let mut m = Machine::new(&cpu);
        let r = m.run_to_completion(&[]);
        assert_eq!(r, golden);
        assert_eq!(m.stop_reason(), Some(golden.stop));
    }

    #[test]
    fn resume_from_any_boundary_is_exact() {
        let cpu = sum_cpu();
        let golden = cpu.run(None);
        // Snapshot at every boundary of the golden prefix, then resume
        // each fault-free: all must reproduce the golden result.
        let mut m = Machine::new(&cpu);
        let mut snaps = vec![m.snapshot()];
        while m.step() == StepEvent::Continue {
            snaps.push(m.snapshot());
        }
        for snap in &snaps {
            let mut r = Machine::new(&cpu);
            r.restore(snap);
            assert_eq!(r.run_to_completion(&[]), golden);
        }
    }

    #[test]
    fn faulted_resume_matches_full_faulted_run() {
        let cpu = sum_cpu();
        let prof = cpu.profile();
        let mut m = Machine::new(&cpu);
        let mut snaps = vec![m.snapshot()];
        while m.step() == StepEvent::Continue {
            snaps.push(m.snapshot());
        }
        for site in &prof.sites {
            for raw in [0u16, 5, 63] {
                let fault = FaultSpec::new(site.dyn_index, raw);
                let full = cpu.run(Some(fault));
                for snap in snaps.iter().filter(|s| s.dyn_insts() <= site.dyn_index) {
                    let mut r = Machine::new(&cpu);
                    r.restore(snap);
                    let resumed = r.run_to_completion(&[fault]);
                    assert_eq!(
                        resumed,
                        full,
                        "site {} from snapshot {}",
                        site.dyn_index,
                        snap.dyn_insts()
                    );
                }
            }
        }
    }

    #[test]
    fn snapshot_counters_are_exposed() {
        let cpu = sum_cpu();
        let mut m = Machine::new(&cpu);
        m.step();
        m.step();
        let snap = m.snapshot();
        assert_eq!(snap.dyn_insts(), 2);
        assert!(snap.cycles() > 0);
        assert_eq!(snap.cycles(), m.cycles());
    }

    #[test]
    fn stop_latches_and_restore_clears_it() {
        let cpu = sum_cpu();
        let mut m = Machine::new(&cpu);
        let start = m.snapshot();
        let r = m.run_to_completion(&[]);
        assert_eq!(m.step(), StepEvent::Stop(r.stop));
        m.restore(&start);
        assert_eq!(m.stop_reason(), None);
        assert_eq!(m.run_to_completion(&[]), r);
    }

    #[test]
    fn step_limit_timeout_applies_to_resumed_runs() {
        let cpu = sum_cpu().with_step_limit(4);
        let mut m = Machine::new(&cpu);
        m.step();
        m.step();
        let snap = m.snapshot();
        let mut r = Machine::new(&cpu);
        r.restore(&snap);
        let res = r.run_to_completion(&[]);
        assert_eq!(res.stop, StopReason::Timeout);
        // Global instruction budget: 2 executed before the snapshot,
        // so only 2 more run after it.
        assert_eq!(res.dyn_insts, 4);
    }
}
