//! Differential semantics tests: the simulator's ALU results must match
//! native Rust arithmetic at every width.
//!
//! The randomized sweeps run hermetically off `ferrum-rng`; the
//! original `proptest` strategies (with shrinking) are preserved behind
//! the off-by-default `proptest` feature per the hermetic-build policy.

use ferrum_asm::inst::{AluOp, Inst, ShiftAmount, ShiftOp};
use ferrum_asm::operand::Operand;
use ferrum_asm::program::single_block_main;
use ferrum_asm::reg::{Gpr, Reg, Width};
use ferrum_cpu::run::Cpu;

fn exec_binop(op: AluOp, w: Width, a: u64, b: u64) -> u64 {
    let set_a = Inst::Mov {
        w: Width::W64,
        src: Operand::Imm(a as i64),
        dst: Operand::Reg(Reg::q(Gpr::Rax)),
    };
    let set_b = Inst::Mov {
        w: Width::W64,
        src: Operand::Imm(b as i64),
        dst: Operand::Reg(Reg::q(Gpr::Rcx)),
    };
    let alu = Inst::Alu {
        op,
        w,
        src: Operand::Reg(Reg::gpr(Gpr::Rcx, w)),
        dst: Operand::Reg(Reg::gpr(Gpr::Rax, w)),
    };
    // Expose the result through print (rdi), full width.
    let out = Inst::Mov {
        w: Width::W64,
        src: Operand::Reg(Reg::q(Gpr::Rax)),
        dst: Operand::Reg(Reg::q(Gpr::Rdi)),
    };
    let call = Inst::Call {
        target: "print_i64".into(),
    };
    let p = single_block_main(vec![set_a, set_b, alu, out, call]);
    let r = Cpu::load(&p).unwrap().run(None);
    r.output[0] as u64
}

fn native(op: AluOp, w: Width, a: u64, b: u64) -> u64 {
    let (a, b) = (a & w.mask(), b & w.mask());
    let r = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
    } & w.mask();
    // Architectural register effect: 64-bit replaces, 32-bit
    // zero-extends, 8/16-bit merge into the old 64-bit value (which here
    // was `a` sign pattern from the full-width load).
    match w {
        Width::W64 | Width::W32 => r,
        _ => (a & !w.mask()) | r,
    }
}

fn check_alu_case(a: u64, b: u64, op: AluOp, w: Width) {
    // For narrow widths the destination's upper bits come from the
    // initial full-width value of rax, which is `a` itself.
    let expect = {
        let merged = native(op, w, a, b);
        match w {
            Width::W64 | Width::W32 => merged,
            _ => (a & !w.mask()) | (merged & w.mask()),
        }
    };
    assert_eq!(
        exec_binop(op, w, a, b),
        expect,
        "a={a:#x} b={b:#x} op={op:?} w={w}"
    );
}

fn check_shift_case(v: u64, amt: u8, w: Width) {
    let masked = u32::from(amt) & if w == Width::W64 { 63 } else { 31 };
    let set = Inst::Mov {
        w: Width::W64,
        src: Operand::Imm(v as i64),
        dst: Operand::Reg(Reg::q(Gpr::Rax)),
    };
    let sh = Inst::Shift {
        op: ShiftOp::Shl,
        w,
        amount: ShiftAmount::Imm(amt),
        dst: Operand::Reg(Reg::gpr(Gpr::Rax, w)),
    };
    let out = Inst::Mov {
        w: Width::W64,
        src: Operand::Reg(Reg::q(Gpr::Rax)),
        dst: Operand::Reg(Reg::q(Gpr::Rdi)),
    };
    let call = Inst::Call {
        target: "print_i64".into(),
    };
    let p = single_block_main(vec![set, sh, out, call]);
    let got = Cpu::load(&p).unwrap().run(None).output[0] as u64;
    let masked_v = v & w.mask();
    let expect = if masked == 0 {
        // zero-count shift leaves the register untouched (still the
        // full 64-bit value for W64, zero-extended original for W32
        // ... the register keeps its full value since no write).
        v
    } else {
        masked_v.wrapping_shl(masked) & w.mask()
    };
    assert_eq!(got, expect, "v={v:#x} amt={amt} w={w}");
}

#[test]
fn alu_matches_native_semantics_sweep() {
    let mut rng = ferrum_rng::Rng64::seed_from_u64(0x5EED_A1B2);
    // Boundary values plus a seeded random sweep at every width.
    let interesting = [0u64, 1, 0x7f, 0x80, 0xffff, u32::MAX as u64, u64::MAX];
    for op in [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor] {
        for w in Width::ALL {
            for &a in &interesting {
                for &b in &interesting {
                    check_alu_case(a, b, op, w);
                }
            }
        }
    }
    for _ in 0..200 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let op = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor]
            [rng.gen_range(0..5usize)];
        let w = Width::ALL[rng.gen_range(0..4usize)];
        check_alu_case(a, b, op, w);
    }
}

#[test]
fn shifts_match_native_sweep() {
    let mut rng = ferrum_rng::Rng64::seed_from_u64(0x5EED_C3D4);
    for w in [Width::W32, Width::W64] {
        for amt in [0u8, 1, 31, 32, 63] {
            check_shift_case(u64::MAX, amt, w);
            check_shift_case(1, amt, w);
        }
    }
    for _ in 0..200 {
        let v = rng.next_u64();
        let amt = rng.gen_range(0..64u64) as u8;
        let w = [Width::W32, Width::W64][rng.gen_range(0..2usize)];
        check_shift_case(v, amt, w);
    }
}

#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]
        #[test]
        fn alu_matches_native_semantics(
            a in any::<u64>(),
            b in any::<u64>(),
            op_pick in 0usize..5,
            w_pick in 0usize..4,
        ) {
            let op = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor][op_pick];
            let w = Width::ALL[w_pick];
            check_alu_case(a, b, op, w);
        }

        #[test]
        fn shifts_match_native(v in any::<u64>(), amt in 0u8..64, w_pick in 0usize..2) {
            check_shift_case(v, amt, [Width::W32, Width::W64][w_pick]);
        }
    }
}
