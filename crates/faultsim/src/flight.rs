//! Campaign flight recorder: live streaming telemetry, progress
//! snapshots, and a resume-grade event journal.
//!
//! A running fault-injection campaign used to be a black box between
//! process start and the final [`CampaignResult`].  This module makes
//! every campaign executor *observable while it runs* and *resumable
//! after a kill*, in three layers:
//!
//! 1. **Event stream** — executors emit structured [`CampaignEvent`]s
//!    through a process-global [`FlightRecorder`] (installed like a
//!    `ferrum-trace` sink: [`install`] / [`uninstall`], one relaxed
//!    atomic load when dormant).  The stream carries the campaign's
//!    full config fingerprint ([`CampaignFingerprint`]), shard
//!    scheduling and completion, per-worker heartbeats, and periodic
//!    [`ProgressSnapshot`]s with rolling-window injections/sec,
//!    running outcome tallies with Wilson confidence intervals
//!    ([`crate::stats::wilson_interval`]), prune/reuse rates, and an
//!    ETA.
//! 2. **Write-ahead journal** — the recorder partitions the sampled
//!    fault list into fixed index ranges and emits a
//!    [`ShardRecord`] the moment every fault in a range has been
//!    classified, carrying the seed, the site partition, the outcome
//!    tallies, and the per-fault records.  A journal truncated by a
//!    mid-campaign kill still ends on a complete shard boundary, which
//!    is exactly what [`resume_campaign_from_journal`] needs.
//! 3. **Resume** — [`resume_campaign_from_journal`] re-derives the
//!    deterministic fault list from the seed, replays the journaled
//!    shards without executing them (validating that every recorded
//!    fault matches the re-sampled one), executes only the remainder,
//!    and reassembles the records in sampling order.  The result is
//!    byte-identical (counts and records) to an uninterrupted run of
//!    the same seed; the replayed fraction is reported through
//!    [`CampaignStats::reused_sites`].
//!
//! Like tracing, flight recording is **observational by contract**:
//! the recorder never feeds information back into an executor, never
//! panics out of a probe, and installing or removing one cannot change
//! campaign outcomes (`tests/flight_recorder.rs` asserts this).  The
//! recorder tracks one campaign at a time — a new
//! campaign-started probe rebinds it.
//!
//! Serialization of the event stream as NDJSON lives in
//! `ferrum::flight` (the `ferrum::json` layer, see
//! docs/events-schema.md); the live TTY table lives in
//! `ferrum::report`; both are fronted by the `ferrum-campaign` CLI.
//!
//! [`CampaignStats::reused_sites`]: crate::campaign::CampaignStats::reused_sites

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::run::Profile;

use crate::campaign::{
    classify, detection_latency, finish_stats, sample_faults, CampaignConfig, CampaignResult,
    DetectionLatency, Outcome, WorkerStats,
};
use crate::engine::{Engine, EngineKind};
use crate::stats::wilson_interval;

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// Full config fingerprint of a campaign, carried by
/// [`CampaignEvent::Started`] and validated on resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignFingerprint {
    /// Workload label (empty when the caller did not set one).
    pub workload: String,
    /// Technique label (empty when the caller did not set one).
    pub technique: String,
    /// Executor that produced the stream: `"serial"`, `"parallel"`,
    /// `"snapshot"`, `"pruned"`, `"double"`, `"exhaustive"`,
    /// `"stratified"`, `"incremental"`, `"forensic"`, or `"resume"`.
    pub executor: String,
    /// Execution engine.
    pub engine: EngineKind,
    /// Sample budget of the campaign config.
    pub samples: usize,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Injectable dynamic sites in the profile.
    pub sites: usize,
    /// Dynamic instructions of the golden run (profile identity).
    pub golden_dyn_insts: u64,
    /// Program content hash (fold of the PR 7 per-function
    /// [`ferrum_asm::analysis::summary::function_hash`]); 0 when the
    /// caller did not provide one.
    pub program_hash: u64,
}

/// Running outcome counts, the streaming mirror of the five
/// [`CampaignResult`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTallies {
    /// Silent data corruptions.
    pub sdc: usize,
    /// Detections.
    pub detected: usize,
    /// Crashes.
    pub crash: usize,
    /// Timeouts.
    pub timeout: usize,
    /// Benign completions.
    pub benign: usize,
}

impl OutcomeTallies {
    /// Books one outcome.
    pub fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Sdc => self.sdc += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::Crash => self.crash += 1,
            Outcome::Timeout => self.timeout += 1,
            Outcome::Benign => self.benign += 1,
        }
    }

    /// Merges another tally in.
    pub fn merge(&mut self, other: &OutcomeTallies) {
        self.sdc += other.sdc;
        self.detected += other.detected;
        self.crash += other.crash;
        self.timeout += other.timeout;
        self.benign += other.benign;
    }

    /// Total outcomes booked.
    pub fn total(&self) -> usize {
        self.sdc + self.detected + self.crash + self.timeout + self.benign
    }

    /// The tallies of a finished campaign result.
    pub fn from_result(r: &CampaignResult) -> OutcomeTallies {
        OutcomeTallies {
            sdc: r.sdc,
            detected: r.detected,
            crash: r.crash,
            timeout: r.timeout,
            benign: r.benign,
        }
    }

    /// True when the tallies equal the result's outcome counters.
    pub fn matches(&self, r: &CampaignResult) -> bool {
        *self == OutcomeTallies::from_result(r)
    }
}

/// A periodic progress snapshot of the running campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Faults classified so far.
    pub done: usize,
    /// Total faults the campaign will classify.
    pub total: usize,
    /// Running outcome counts (sum to `done`).
    pub tallies: OutcomeTallies,
    /// 95% Wilson interval on the running SDC probability.
    pub sdc_ci: (f64, f64),
    /// Rolling-window injections/sec over the whole campaign (0.0
    /// while the window holds fewer than two completions).
    pub rate: f64,
    /// Rolling-window injections/sec per worker, indexed by worker.
    pub worker_rates: Vec<f64>,
    /// Estimated nanoseconds to completion; `None` while the rolling
    /// rate is zero.
    pub eta_nanos: Option<u64>,
    /// Faults booked from a static coverage verdict so far.
    pub pruned: usize,
    /// Faults replayed from a cache or journal so far.
    pub reused: usize,
    /// Nanoseconds since the campaign started.
    pub elapsed_nanos: u64,
}

/// One completed journal shard: a contiguous index range of the
/// sampled fault list with every outcome classified.  Carries enough
/// state — seed, site partition (the index range), tallies, records,
/// and the program content hash — for [`resume_campaign_from_journal`]
/// to skip it wholesale.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecord {
    /// Shard index (ranges are `shard * shard_size ..`).
    pub shard: usize,
    /// First sampling index covered.
    pub start: usize,
    /// Number of faults covered.
    pub len: usize,
    /// Campaign seed (journal self-validation).
    pub seed: u64,
    /// Program content hash from the fingerprint (0 when unset).
    pub program_hash: u64,
    /// Outcome counts over the shard (sum to `len`).
    pub tallies: OutcomeTallies,
    /// The shard's records, in sampling order.
    pub records: Vec<(FaultSpec, Outcome)>,
}

/// One harness execution stage, as timed by the campaign executors.
///
/// Stage probes are gated on an installed recorder: an un-instrumented
/// campaign never reads the clock for them.  Decode runs during engine
/// binding — *before* the executor emits its started event — so the
/// recorder credits pre-start stage observations to the next campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Decoding the loaded image into the flattened engine's arrays
    /// (engine binding, before the campaign's started event).
    Decode,
    /// The fault-free golden walk (profile or snapshot-prefix pass).
    GoldenRun,
    /// Capturing architectural snapshots on the golden walk.
    SnapshotCapture,
    /// Restoring a worker's machine from a snapshot.
    SnapshotRestore,
    /// Faulted executions run whole from the entry state.
    Injection,
    /// Faulted replays resumed from a snapshot (including the
    /// convergence stitch where the engine has one).
    Replay,
}

impl Stage {
    /// All stages, in reporting order.
    pub const ALL: [Stage; 6] = [
        Stage::Decode,
        Stage::GoldenRun,
        Stage::SnapshotCapture,
        Stage::SnapshotRestore,
        Stage::Injection,
        Stage::Replay,
    ];

    /// Stable text label (reports, NDJSON).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::GoldenRun => "golden-run",
            Stage::SnapshotCapture => "snapshot-capture",
            Stage::SnapshotRestore => "snapshot-restore",
            Stage::Injection => "injection",
            Stage::Replay => "replay",
        }
    }

    /// Parses a [`Stage::label`] back into the enum.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|st| st.label() == s)
    }

    fn index(self) -> usize {
        Stage::ALL
            .iter()
            .position(|&s| s == self)
            .expect("stage in ALL")
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured campaign event.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// Campaign began: full fingerprint plus the shard layout.
    Started {
        /// Config fingerprint.
        fingerprint: CampaignFingerprint,
        /// Total faults the campaign will classify.
        total: usize,
        /// Faults per journal shard.
        shard_size: usize,
        /// Number of shards scheduled.
        shards: usize,
    },
    /// A journal shard was scheduled (emitted for every shard at
    /// campaign start; completion order may differ under work
    /// stealing).
    ShardScheduled {
        /// Shard index.
        shard: usize,
        /// First sampling index covered.
        start: usize,
        /// Number of faults covered.
        len: usize,
    },
    /// Periodic per-worker liveness: cumulative work by one worker.
    Heartbeat {
        /// Worker index (0 for serial executors).
        worker: usize,
        /// Faults this worker has classified so far.
        injections: usize,
        /// Dynamic instructions this worker has executed so far.
        steps: u64,
    },
    /// Periodic whole-campaign progress.
    Progress(ProgressSnapshot),
    /// Every fault in a shard's range is classified — the write-ahead
    /// journal record.
    ShardCompleted(ShardRecord),
    /// A stratified/incremental per-function shard finished (carries
    /// the PR 7 content hash; `reused` marks cache replays).
    FunctionShardCompleted {
        /// Function name (the shard key).
        name: String,
        /// Function content hash.
        hash: u64,
        /// Dynamic sites owned by the function.
        sites: usize,
        /// Faults drawn for the function.
        draws: usize,
        /// True when the shard was replayed from a cache.
        reused: bool,
    },
    /// Cumulative wall-clock one worker spent in one execution stage,
    /// emitted once per active `(worker, stage)` pair just before the
    /// finished event.  Stage timings observed before the started
    /// event (decode happens during engine binding) are credited to
    /// worker 0 of the campaign that starts next.
    StageTiming {
        /// Worker index (0 for serial executors and pre-start stages).
        worker: usize,
        /// The execution stage.
        stage: Stage,
        /// Cumulative wall-clock nanoseconds spent in the stage.
        nanos: u64,
        /// Number of timed entries into the stage.
        count: u64,
    },
    /// Campaign ended; final tallies mirror the returned result.
    Finished {
        /// Final outcome counts.
        tallies: OutcomeTallies,
        /// Wall-clock duration.
        wall_nanos: u64,
        /// Overall injections/sec.
        injections_per_sec: f64,
        /// Total faults booked from static verdicts.
        pruned: usize,
        /// Total faults replayed from a cache or journal.
        reused: usize,
    },
}

/// A sequenced, timestamped event as delivered to a [`FlightSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Strictly increasing per campaign, starting at 0.
    pub seq: u64,
    /// Nanoseconds since the campaign's started event.
    pub nanos: u64,
    /// The event payload.
    pub event: CampaignEvent,
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receiver for flight events.  Implementations must be observational:
/// they may write files or update displays but must never feed
/// information back into the running campaign.
pub trait FlightSink: Send + Sync {
    /// Accepts one event.
    fn record_event(&self, ev: &FlightEvent);
}

/// In-memory sink: keeps every event, for tests, self-checks, and
/// simulated-kill journal truncation.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<FlightEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of the events recorded so far.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().map(|e| e.len()).unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FlightSink for MemorySink {
    fn record_event(&self, ev: &FlightEvent) {
        if let Ok(mut events) = self.events.lock() {
            events.push(ev.clone());
        }
    }
}

/// Fans one event stream out to several sinks (e.g. a TTY progress
/// table plus an NDJSON journal file).
pub struct TeeSink {
    sinks: Vec<Arc<dyn FlightSink>>,
}

impl TeeSink {
    /// Builds the tee.
    pub fn new(sinks: Vec<Arc<dyn FlightSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl FlightSink for TeeSink {
    fn record_event(&self, ev: &FlightEvent) {
        for s in &self.sinks {
            s.record_event(ev);
        }
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// Cadence policy for the recorder.  Zero means "derive from the
/// campaign's total" (the defaults scale from unit tests to
/// million-injection campaigns without reconfiguration).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlightPolicy {
    /// Faults per journal shard (0 = `total/16`, at least 1).
    pub shard_size: usize,
    /// Injections between progress snapshots (0 = `total/10`, at
    /// least 1).
    pub progress_every: usize,
    /// Per-worker injections between heartbeats (0 = follow
    /// `progress_every`).
    pub heartbeat_every: usize,
    /// Rolling-window length in completions for the rate estimate
    /// (0 = 64).
    pub window: usize,
}

/// Rolling rate estimator over sampled `(completion count, timestamp)`
/// pairs; rate is completions between the oldest and newest sample
/// over their time span.  The recorder samples the clock only every
/// `rate_stride`-th completion, so at paper-scale injection rates the
/// common probe path never reads the clock at all.  Fewer than two
/// samples, or a zero-width span, reports 0.0 rather than dividing by
/// zero.
#[derive(Debug, Default)]
struct RateWindow {
    samples: VecDeque<(u64, u64)>,
}

impl RateWindow {
    fn push(&mut self, count: u64, now: u64, cap: usize) {
        self.samples.push_back((count, now));
        while self.samples.len() > cap.max(2) {
            self.samples.pop_front();
        }
    }

    fn rate(&self) -> f64 {
        let (Some(&(c0, t0)), Some(&(c1, t1))) = (self.samples.front(), self.samples.back())
        else {
            return 0.0;
        };
        if self.samples.len() < 2 || t1 <= t0 {
            return 0.0;
        }
        (c1 - c0) as f64 / ((t1 - t0) as f64 / 1e9)
    }
}

#[derive(Debug)]
struct ShardState {
    start: usize,
    len: usize,
    remaining: usize,
    slots: Vec<Option<(FaultSpec, Outcome)>>,
}

#[derive(Debug, Default)]
struct WorkerState {
    injections: usize,
    steps: u64,
    window: RateWindow,
    since_heartbeat: usize,
}

/// Per-campaign recorder state, rebuilt by each campaign-started
/// probe.  The effective policy cadences (`progress_every`,
/// `heartbeat_every`, the rate-sampling stride) are resolved once
/// here so the per-injection probe does no policy arithmetic.
#[derive(Debug, Default)]
struct RecState {
    active: bool,
    fingerprint: Option<CampaignFingerprint>,
    total: usize,
    shard_size: usize,
    shards: Vec<ShardState>,
    tallies: OutcomeTallies,
    done: usize,
    pruned: usize,
    reused: usize,
    workers: Vec<WorkerState>,
    /// Cumulative `(nanos, count)` per stage, per worker (indexed by
    /// [`Stage::index`]).
    stage_times: Vec<[(u64, u64); Stage::ALL.len()]>,
    /// Stage observations made while no campaign is active — decode
    /// runs during engine binding, before the started event — drained
    /// into the next campaign's worker 0.
    pending_stages: Vec<(Stage, u64)>,
    global_window: RateWindow,
    since_progress: usize,
    seq: u64,
    /// Campaign epoch; event `nanos` are measured from here.
    t0: Option<Instant>,
    /// Sample the clock into the rate windows every Nth completion.
    rate_stride: usize,
    /// Samples kept per rate window (spans ~`policy.window` completions).
    window_cap: usize,
    progress_every: usize,
    heartbeat_every: usize,
}

/// The campaign flight recorder: receives executor probes, maintains
/// shard/worker/progress state, and emits [`FlightEvent`]s into its
/// sink.  Install process-globally with [`install`].
pub struct FlightRecorder {
    sink: Arc<dyn FlightSink>,
    policy: FlightPolicy,
    workload: String,
    technique: String,
    program_hash: u64,
    state: Mutex<RecState>,
}

impl FlightRecorder {
    /// A recorder delivering events to `sink` with the default policy.
    pub fn new(sink: Arc<dyn FlightSink>) -> FlightRecorder {
        FlightRecorder {
            sink,
            policy: FlightPolicy::default(),
            workload: String::new(),
            technique: String::new(),
            program_hash: 0,
            state: Mutex::new(RecState::default()),
        }
    }

    /// Overrides the cadence policy.
    #[must_use]
    pub fn with_policy(mut self, policy: FlightPolicy) -> FlightRecorder {
        self.policy = policy;
        self
    }

    /// Sets the workload/technique labels stamped into the
    /// fingerprint (executors cannot know them).
    #[must_use]
    pub fn with_labels(mut self, workload: &str, technique: &str) -> FlightRecorder {
        self.workload = workload.to_owned();
        self.technique = technique.to_owned();
        self
    }

    /// Sets the program content hash stamped into the fingerprint and
    /// every shard record (see
    /// [`program_signature`]).
    #[must_use]
    pub fn with_program_hash(mut self, hash: u64) -> FlightRecorder {
        self.program_hash = hash;
        self
    }

    fn elapsed(st: &RecState) -> u64 {
        st.t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
    }

    fn emit(&self, st: &mut RecState, nanos: u64, event: CampaignEvent) {
        let ev = FlightEvent {
            seq: st.seq,
            nanos,
            event,
        };
        st.seq += 1;
        self.sink.record_event(&ev);
    }

    fn on_started(
        &self,
        executor: &'static str,
        engine: EngineKind,
        cfg: CampaignConfig,
        profile: &Profile,
        total: usize,
    ) {
        let Ok(mut st) = self.state.lock() else {
            return;
        };
        let shard_size = match self.policy.shard_size {
            0 => (total / 16).max(1),
            s => s,
        };
        let window = if self.policy.window == 0 {
            64
        } else {
            self.policy.window
        };
        let progress_every = match self.policy.progress_every {
            0 => (total / 10).max(1),
            p => p,
        };
        let heartbeat_every = match self.policy.heartbeat_every {
            0 => progress_every,
            h => h,
        };
        // Keeping ~16 samples spanning `window` completions means the
        // clock is read on at most every `rate_stride`-th injection.
        let rate_stride = (window / 16).max(1);
        let window_cap = (window / rate_stride).max(2);
        let shards: Vec<ShardState> = (0..total)
            .step_by(shard_size)
            .map(|start| {
                let len = shard_size.min(total - start);
                ShardState {
                    start,
                    len,
                    remaining: len,
                    slots: vec![None; len],
                }
            })
            .collect();
        let fingerprint = CampaignFingerprint {
            workload: self.workload.clone(),
            technique: self.technique.clone(),
            executor: executor.to_owned(),
            engine,
            samples: cfg.samples,
            seed: cfg.seed,
            sites: profile.sites.len(),
            golden_dyn_insts: profile.result.dyn_insts,
            program_hash: self.program_hash,
        };
        let n_shards = shards.len();
        let pending = std::mem::take(&mut st.pending_stages);
        *st = RecState {
            active: true,
            fingerprint: Some(fingerprint.clone()),
            total,
            shard_size,
            shards,
            t0: Some(Instant::now()),
            rate_stride,
            window_cap,
            progress_every,
            heartbeat_every,
            ..RecState::default()
        };
        // Pre-start stage observations (decode during engine binding)
        // belong to this campaign's worker 0.
        for (stage, nanos) in pending {
            Self::book_stage(&mut st, 0, stage, nanos);
        }
        self.emit(
            &mut st,
            0,
            CampaignEvent::Started {
                fingerprint,
                total,
                shard_size,
                shards: n_shards,
            },
        );
        for i in 0..n_shards {
            let (start, len) = (st.shards[i].start, st.shards[i].len);
            self.emit(
                &mut st,
                0,
                CampaignEvent::ShardScheduled {
                    shard: i,
                    start,
                    len,
                },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_injection(
        &self,
        worker: usize,
        index: usize,
        fault: FaultSpec,
        outcome: Outcome,
        steps: u64,
        booking: Booking,
    ) {
        let Ok(mut st) = self.state.lock() else {
            return;
        };
        // Events from a campaign the recorder is not tracking (or an
        // out-of-range index) are dropped, never panicked on.
        if !st.active || index >= st.total {
            return;
        }
        // Reading the clock dominates the probe cost at paper-scale
        // injection rates, so it is lazy: a plain injection that hits
        // no sampling stride and emits no event never reads it.
        let t0 = st.t0;
        let mut now_cache: Option<u64> = None;
        let mut now =
            move || *now_cache.get_or_insert_with(|| {
                t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
            });
        st.done += 1;
        st.tallies.add(outcome);
        match booking {
            Booking::Executed => {}
            Booking::Pruned => st.pruned += 1,
            Booking::Reused => st.reused += 1,
        }
        if st.done % st.rate_stride == 0 {
            let (count, t, cap) = (st.done as u64, now(), st.window_cap);
            st.global_window.push(count, t, cap);
        }
        if st.workers.len() <= worker {
            st.workers.resize_with(worker + 1, WorkerState::default);
        }
        {
            let w = &mut st.workers[worker];
            w.injections += 1;
            w.steps += steps;
            w.since_heartbeat += 1;
        }
        if st.workers[worker].injections % st.rate_stride == 0 {
            let (count, t, cap) = (
                st.workers[worker].injections as u64,
                now(),
                st.window_cap,
            );
            st.workers[worker].window.push(count, t, cap);
        }
        if st.workers[worker].since_heartbeat >= st.heartbeat_every {
            st.workers[worker].since_heartbeat = 0;
            let (injections, wsteps) = (st.workers[worker].injections, st.workers[worker].steps);
            let t = now();
            self.emit(
                &mut st,
                t,
                CampaignEvent::Heartbeat {
                    worker,
                    injections,
                    steps: wsteps,
                },
            );
        }

        // Book into the shard and journal it when it drains.
        let si = index / st.shard_size;
        let slot = index - st.shards[si].start;
        if st.shards[si].slots[slot].is_none() {
            st.shards[si].slots[slot] = Some((fault, outcome));
            st.shards[si].remaining -= 1;
            if st.shards[si].remaining == 0 {
                let sh = &st.shards[si];
                let records: Vec<(FaultSpec, Outcome)> =
                    sh.slots.iter().map(|s| s.expect("shard drained")).collect();
                let mut tallies = OutcomeTallies::default();
                for &(_, o) in &records {
                    tallies.add(o);
                }
                let rec = ShardRecord {
                    shard: si,
                    start: sh.start,
                    len: sh.len,
                    seed: st.fingerprint.as_ref().map_or(0, |f| f.seed),
                    program_hash: self.program_hash,
                    tallies,
                    records,
                };
                let t = now();
                self.emit(&mut st, t, CampaignEvent::ShardCompleted(rec));
            }
        }

        st.since_progress += 1;
        if st.since_progress >= st.progress_every {
            st.since_progress = 0;
            let t = now();
            let snap = Self::snapshot_locked(&st, t);
            self.emit(&mut st, t, CampaignEvent::Progress(snap));
        }
    }

    fn snapshot_locked(st: &RecState, now: u64) -> ProgressSnapshot {
        let rate = st.global_window.rate();
        let remaining = st.total.saturating_sub(st.done);
        let eta_nanos = if rate > 0.0 {
            Some((remaining as f64 / rate * 1e9) as u64)
        } else {
            None
        };
        ProgressSnapshot {
            done: st.done,
            total: st.total,
            tallies: st.tallies,
            sdc_ci: wilson_interval(st.tallies.sdc, st.done),
            rate,
            worker_rates: st.workers.iter().map(|w| w.window.rate()).collect(),
            eta_nanos,
            pruned: st.pruned,
            reused: st.reused,
            elapsed_nanos: now,
        }
    }

    fn book_stage(st: &mut RecState, worker: usize, stage: Stage, nanos: u64) {
        if st.stage_times.len() <= worker {
            st.stage_times
                .resize(worker + 1, [(0, 0); Stage::ALL.len()]);
        }
        let slot = &mut st.stage_times[worker][stage.index()];
        slot.0 += nanos;
        slot.1 += 1;
    }

    fn on_stage(&self, worker: usize, stage: Stage, nanos: u64) {
        let Ok(mut st) = self.state.lock() else {
            return;
        };
        if st.active {
            Self::book_stage(&mut st, worker, stage, nanos);
        } else if st.pending_stages.len() < 1024 {
            // Buffered for the next campaign (bounded so stray probes
            // with no campaign following cannot grow without limit).
            st.pending_stages.push((stage, nanos));
        }
    }

    fn on_function_shard(&self, name: &str, hash: u64, sites: usize, draws: usize, reused: bool) {
        let Ok(mut st) = self.state.lock() else {
            return;
        };
        if !st.active {
            return;
        }
        let now = Self::elapsed(&st);
        self.emit(
            &mut st,
            now,
            CampaignEvent::FunctionShardCompleted {
                name: name.to_owned(),
                hash,
                sites,
                draws,
                reused,
            },
        );
    }

    fn on_finished(&self, result: &CampaignResult) {
        let Ok(mut st) = self.state.lock() else {
            return;
        };
        if !st.active {
            return;
        }
        let now = Self::elapsed(&st);
        // Stage timings drain first: one event per active
        // (worker, stage) pair, in worker then Stage::ALL order.
        let stage_times = std::mem::take(&mut st.stage_times);
        for (worker, stages) in stage_times.into_iter().enumerate() {
            for stage in Stage::ALL {
                let (nanos, count) = stages[stage.index()];
                if count > 0 {
                    self.emit(
                        &mut st,
                        now,
                        CampaignEvent::StageTiming {
                            worker,
                            stage,
                            nanos,
                            count,
                        },
                    );
                }
            }
        }
        // Always end on a fresh snapshot so consumers can equate the
        // final snapshot with the campaign stats (even for zero-sample
        // campaigns that never crossed a progress boundary).
        let snap = Self::snapshot_locked(&st, now);
        self.emit(&mut st, now, CampaignEvent::Progress(snap));
        self.emit(
            &mut st,
            now,
            CampaignEvent::Finished {
                tallies: OutcomeTallies::from_result(result),
                wall_nanos: result.stats.wall_nanos as u64,
                injections_per_sec: result.stats.injections_per_sec,
                pruned: result.stats.pruned_sites,
                reused: result.stats.reused_sites,
            },
        );
        st.active = false;
    }
}

/// How a fault's outcome was obtained, for prune/reuse telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Booking {
    /// The faulted run executed.
    Executed,
    /// Booked from a static coverage verdict.
    Pruned,
    /// Replayed from an incremental cache or a resume journal.
    Reused,
}

// ---------------------------------------------------------------------------
// Process-global install (the ferrum-trace sink pattern)
// ---------------------------------------------------------------------------

/// Install generation: 0 means no recorder; every [`install`] bumps
/// it to a fresh nonzero value so per-thread caches know to refresh.
static INSTALLED: AtomicUsize = AtomicUsize::new(0);
static NEXT_GEN: AtomicUsize = AtomicUsize::new(1);
static RECORDER: RwLock<Option<Arc<FlightRecorder>>> = RwLock::new(None);

thread_local! {
    /// Per-thread recorder cache keyed by install generation: the hot
    /// probe path costs one atomic load plus a thread-local compare,
    /// not a process-wide `RwLock` read per injection.
    static CACHED: std::cell::RefCell<(usize, Option<Arc<FlightRecorder>>)> =
        const { std::cell::RefCell::new((0, None)) };
}

/// Installs the process-global recorder.  Executors feed it until
/// [`uninstall`].
pub fn install(rec: Arc<FlightRecorder>) {
    if let Ok(mut slot) = RECORDER.write() {
        *slot = Some(rec);
        INSTALLED.store(NEXT_GEN.fetch_add(1, Ordering::Relaxed), Ordering::Release);
    }
}

/// Removes the process-global recorder (probes go dormant: one
/// atomic load each).  Threads that cached the recorder release
/// their reference the next time a recorder is installed.
pub fn uninstall() {
    INSTALLED.store(0, Ordering::Release);
    if let Ok(mut slot) = RECORDER.write() {
        *slot = None;
    }
}

/// True when a recorder is currently installed.
#[must_use]
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Acquire) != 0
}

fn with_recorder(f: impl FnOnce(&FlightRecorder)) {
    let gen = INSTALLED.load(Ordering::Acquire);
    if gen == 0 {
        return;
    }
    CACHED.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.0 != gen {
            *cache = (gen, RECORDER.read().ok().and_then(|s| s.as_ref().cloned()));
        }
        // Probes never re-enter, so holding the borrow across `f` is
        // safe and avoids a per-injection `Arc` refcount bump.
        if let Some(rec) = cache.1.as_ref() {
            f(rec);
        }
    });
}

/// Probe: a campaign executor is starting.  `total` is the number of
/// faults it will classify (not always `cfg.samples`: exhaustive
/// sweeps enumerate sites).
pub(crate) fn campaign_started(
    executor: &'static str,
    engine: EngineKind,
    cfg: CampaignConfig,
    profile: &Profile,
    total: usize,
) {
    with_recorder(|r| r.on_started(executor, engine, cfg, profile, total));
}

/// Probe: fault `index` (sampling order) classified as `outcome` by
/// `worker`, having executed `steps` dynamic instructions.
pub(crate) fn injection(
    worker: usize,
    index: usize,
    fault: FaultSpec,
    outcome: Outcome,
    steps: u64,
    booking: Booking,
) {
    with_recorder(|r| r.on_injection(worker, index, fault, outcome, steps, booking));
}

/// Probe: a stratified/incremental per-function shard finished.
pub(crate) fn function_shard(name: &str, hash: u64, sites: usize, draws: usize, reused: bool) {
    with_recorder(|r| r.on_function_shard(name, hash, sites, draws, reused));
}

/// Probe: `worker` spent `nanos` wall-clock in `stage` once.
pub(crate) fn stage_time(worker: usize, stage: Stage, nanos: u64) {
    with_recorder(|r| r.on_stage(worker, stage, nanos));
}

/// Wall-clock guard for stage timing.  Reads the clock only when a
/// recorder is installed, so campaigns running without one never pay
/// for stage timestamps.
#[derive(Debug)]
pub(crate) struct StageClock(Option<Instant>);

impl StageClock {
    /// Starts timing (a no-op without an installed recorder).
    pub(crate) fn start() -> StageClock {
        StageClock(enabled().then(Instant::now))
    }

    /// Stops timing and books the elapsed wall-clock into `stage` for
    /// `worker`.
    pub(crate) fn stop(self, worker: usize, stage: Stage) {
        if let Some(t) = self.0 {
            stage_time(worker, stage, t.elapsed().as_nanos() as u64);
        }
    }
}

/// Probe: the executor finished; `result` is what it returns.
pub(crate) fn campaign_finished(result: &CampaignResult) {
    with_recorder(|r| r.on_finished(result));
}

// ---------------------------------------------------------------------------
// Journal reconstruction and resume
// ---------------------------------------------------------------------------

/// Content hash over a whole program: a rotation-fold of the PR 7
/// per-function [`function_hash`] values, stamped into fingerprints
/// and shard records so a journal cannot silently resume against an
/// edited program.
///
/// [`function_hash`]: ferrum_asm::analysis::summary::function_hash
pub fn program_signature(p: &ferrum_asm::AsmProgram) -> u64 {
    let mut h = 0xFE44_u64;
    for f in &p.functions {
        h = h
            .rotate_left(9)
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(ferrum_asm::analysis::summary::function_hash(f));
    }
    h
}

/// What survives of a campaign in a (possibly truncated) event
/// stream: the fingerprint plus every complete shard.  Build one with
/// [`JournalSnapshot::from_events`] and hand it to
/// [`resume_campaign_from_journal`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalSnapshot {
    /// The campaign's fingerprint from its started event.
    pub fingerprint: CampaignFingerprint,
    /// Total faults the original campaign scheduled.
    pub total: usize,
    /// Faults per shard.
    pub shard_size: usize,
    /// Completed shards, sorted by shard index (kill order does not
    /// matter).
    pub shards: Vec<ShardRecord>,
    /// True when the stream carries the finished event (nothing to
    /// resume).
    pub finished: bool,
}

impl Default for CampaignFingerprint {
    fn default() -> CampaignFingerprint {
        CampaignFingerprint {
            workload: String::new(),
            technique: String::new(),
            executor: String::new(),
            engine: EngineKind::Interpreter,
            samples: 0,
            seed: 0,
            sites: 0,
            golden_dyn_insts: 0,
            program_hash: 0,
        }
    }
}

impl JournalSnapshot {
    /// Reconstructs the journal from an event stream (e.g. a parsed
    /// NDJSON file, possibly truncated by a kill).  Returns `None`
    /// when the stream has no campaign-started event.  Duplicate
    /// shard records (a resume re-journaling completed shards) keep
    /// the first occurrence.
    pub fn from_events(events: &[FlightEvent]) -> Option<JournalSnapshot> {
        let mut journal: Option<JournalSnapshot> = None;
        for ev in events {
            match (&ev.event, &mut journal) {
                (
                    CampaignEvent::Started {
                        fingerprint,
                        total,
                        shard_size,
                        ..
                    },
                    j,
                ) => {
                    // A later campaign in the same stream supersedes
                    // the earlier one.
                    *j = Some(JournalSnapshot {
                        fingerprint: fingerprint.clone(),
                        total: *total,
                        shard_size: *shard_size,
                        shards: Vec::new(),
                        finished: false,
                    });
                }
                (CampaignEvent::ShardCompleted(rec), Some(j))
                    if !j.shards.iter().any(|s| s.shard == rec.shard) =>
                {
                    j.shards.push(rec.clone());
                }
                (CampaignEvent::Finished { .. }, Some(j)) => j.finished = true,
                _ => {}
            }
        }
        if let Some(j) = &mut journal {
            j.shards.sort_by_key(|s| s.shard);
        }
        journal
    }

    /// Faults covered by completed shards.
    pub fn completed(&self) -> usize {
        self.shards.iter().map(|s| s.len).sum()
    }
}

/// Executors whose journals replay against the shared
/// [`sample_faults`] list.  Stratified/incremental campaigns resume
/// through their own [`CampaignCache`]; double/exhaustive sweeps do
/// not sample.
///
/// [`CampaignCache`]: crate::compose::CampaignCache
const RESUMABLE: &[&str] = &["serial", "parallel", "snapshot", "pruned", "forensic", "resume"];

/// Resumes a killed campaign from its write-ahead journal: replays
/// every completed shard without executing, injects only the
/// remainder, and returns a [`CampaignResult`] byte-identical (counts
/// and records) to an uninterrupted run of the same seed.  The
/// replayed fraction is reported in `stats.reused_sites`; flight
/// events are emitted under the `"resume"` executor label.
///
/// # Errors
///
/// Rejects a journal whose fingerprint does not match the given
/// config and profile (seed, samples, site census, golden run, or —
/// when both sides carry one — program hash), whose executor does not
/// sample from the shared fault list, or whose shard records disagree
/// with the re-sampled faults.
pub fn resume_campaign_from_journal(
    engine: Engine<'_>,
    profile: &Profile,
    cfg: CampaignConfig,
    journal: &JournalSnapshot,
) -> Result<CampaignResult, String> {
    let _span = ferrum_trace::span("campaign.resume");
    let fp = &journal.fingerprint;
    if !RESUMABLE.contains(&fp.executor.as_str()) {
        return Err(format!(
            "journal from `{}` executor does not replay against the sampled fault list",
            fp.executor
        ));
    }
    if fp.seed != cfg.seed || fp.samples != cfg.samples {
        return Err(format!(
            "journal fingerprint (seed {:#x}, {} samples) does not match config (seed {:#x}, {} samples)",
            fp.seed, fp.samples, cfg.seed, cfg.samples
        ));
    }
    if journal.total != cfg.samples {
        return Err(format!(
            "journal total {} does not match the {}-sample config",
            journal.total, cfg.samples
        ));
    }
    if fp.sites != profile.sites.len() || fp.golden_dyn_insts != profile.result.dyn_insts {
        return Err(format!(
            "journal profile ({} sites, {} golden instructions) does not match this program ({} sites, {})",
            fp.sites,
            fp.golden_dyn_insts,
            profile.sites.len(),
            profile.result.dyn_insts
        ));
    }

    let t0 = Instant::now();
    let mut result = CampaignResult::default();
    campaign_started("resume", engine.kind(), cfg, profile, cfg.samples);
    if cfg.samples == 0 {
        finish_stats(&mut result, t0, 1, engine.kind());
        campaign_finished(&result);
        return Ok(result);
    }
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let golden = &profile.result.output;

    // Completed-shard lookup: sampling index -> journaled record.
    let mut journaled: Vec<Option<(FaultSpec, Outcome)>> = vec![None; cfg.samples];
    for shard in &journal.shards {
        if shard.seed != cfg.seed {
            return Err(format!("shard {} carries foreign seed {:#x}", shard.shard, shard.seed));
        }
        if shard.program_hash != 0 && fp.program_hash != 0 && shard.program_hash != fp.program_hash
        {
            return Err(format!("shard {} carries a foreign program hash", shard.shard));
        }
        if shard.records.len() != shard.len
            || shard.start.checked_add(shard.len).is_none_or(|end| end > cfg.samples)
        {
            return Err(format!("shard {} is malformed", shard.shard));
        }
        for (k, &(fault, outcome)) in shard.records.iter().enumerate() {
            journaled[shard.start + k] = Some((fault, outcome));
        }
    }

    let mut latencies = Vec::new();
    for (i, fault) in sample_faults(profile, cfg).into_iter().enumerate() {
        match journaled[i] {
            Some((jf, outcome)) => {
                if jf != fault {
                    return Err(format!(
                        "journaled fault at index {i} does not match the seed's sample — wrong program or corrupt journal"
                    ));
                }
                result.stats.reused_sites += 1;
                injection(0, i, fault, outcome, 0, Booking::Reused);
                result.record(fault, outcome);
            }
            None => {
                let run = engine.run(Some(fault));
                result.stats.steps_executed += run.dyn_insts;
                let o = classify(run.stop, &run.output, golden);
                if o == Outcome::Detected {
                    latencies.push(detection_latency(run.dyn_insts, fault.dyn_index));
                }
                injection(0, i, fault, o, run.dyn_insts, Booking::Executed);
                result.record(fault, o);
            }
        }
    }
    result.stats.per_worker = vec![WorkerStats {
        injections: result.total(),
        steps_executed: result.stats.steps_executed,
    }];
    result.stats.latency = DetectionLatency::from_samples(latencies);
    finish_stats(&mut result, t0, 1, engine.kind());
    ferrum_trace::counter("campaign.injections", result.total() as u64);
    ferrum_trace::counter("campaign.resumed", result.stats.reused_sites as u64);
    campaign_finished(&result);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_cpu::outcome::{RunResult, StopReason};

    fn empty_profile() -> Profile {
        Profile {
            sites: Vec::new(),
            prov_counts: Default::default(),
            mech_counts: Default::default(),
            pcs: Default::default(),
            result: RunResult {
                stop: StopReason::MainReturned,
                output: Vec::new(),
                cycles: 0,
                dyn_insts: 0,
            },
        }
    }

    fn fp(samples: usize, seed: u64) -> CampaignFingerprint {
        CampaignFingerprint {
            executor: "serial".to_owned(),
            samples,
            seed,
            ..CampaignFingerprint::default()
        }
    }

    #[test]
    fn rate_window_degenerates_to_zero_not_nan() {
        // Satellite: empty-window rolling rates must not divide by
        // zero — empty, single-entry, and zero-span windows all
        // report 0.0.
        let mut w = RateWindow::default();
        assert_eq!(w.rate(), 0.0, "empty window");
        w.push(1, 100, 8);
        assert_eq!(w.rate(), 0.0, "single sample");
        w.push(2, 100, 8);
        assert_eq!(w.rate(), 0.0, "zero time span");
        w.push(3, 100 + 1_000_000_000, 8);
        assert!((w.rate() - 2.0).abs() < 1e-9, "2 completions over 1s");
    }

    #[test]
    fn rate_window_is_bounded() {
        let mut w = RateWindow::default();
        for i in 0..100 {
            w.push(i, i * 1_000, 8);
        }
        assert_eq!(w.samples.len(), 8);
    }

    #[test]
    fn tallies_track_and_match_results() {
        let mut t = OutcomeTallies::default();
        for o in Outcome::ALL {
            t.add(o);
        }
        assert_eq!(t.total(), 5);
        let mut r = CampaignResult::default();
        for o in Outcome::ALL {
            r.record(FaultSpec::new(0, 0), o);
        }
        assert!(t.matches(&r));
        t.add(Outcome::Sdc);
        assert!(!t.matches(&r));
    }

    #[test]
    fn recorder_assembles_shards_and_snapshots() {
        // Drive the recorder directly (no global install): 10 faults,
        // shard size 4 -> shards of 4, 4, 2; progress every 5.
        let sink = Arc::new(MemorySink::new());
        let rec = FlightRecorder::new(sink.clone()).with_policy(FlightPolicy {
            shard_size: 4,
            progress_every: 5,
            heartbeat_every: 100,
            window: 8,
        });
        let profile = empty_profile();
        let cfg = CampaignConfig { samples: 10, seed: 7 };
        rec.on_started("serial", EngineKind::Interpreter, cfg, &profile, 10);
        // Complete out of order, as a work-stealing executor would.
        for i in [9usize, 3, 1, 0, 2, 8, 4, 5, 6, 7] {
            rec.on_injection(
                0,
                i,
                FaultSpec::new(i as u64, 0),
                Outcome::Benign,
                10,
                Booking::Executed,
            );
        }
        let mut done = CampaignResult::default();
        for i in 0..10u64 {
            done.record(FaultSpec::new(i, 0), Outcome::Benign);
        }
        rec.on_finished(&done);

        let events = sink.events();
        // Sequencing is strictly increasing from 0.
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
        }
        let started: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.event {
                CampaignEvent::Started { total, shards, shard_size, .. } => {
                    Some((*total, *shards, *shard_size))
                }
                _ => None,
            })
            .collect();
        assert_eq!(started, vec![(10, 3, 4)]);
        let scheduled = events
            .iter()
            .filter(|e| matches!(e.event, CampaignEvent::ShardScheduled { .. }))
            .count();
        assert_eq!(scheduled, 3);
        let shards: Vec<&ShardRecord> = events
            .iter()
            .filter_map(|e| match &e.event {
                CampaignEvent::ShardCompleted(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(shards.len(), 3);
        // Shard records are in sampling order regardless of completion
        // order, and tallies sum to the shard length.
        let mut all: Vec<u64> = Vec::new();
        for s in &shards {
            assert_eq!(s.records.len(), s.len);
            assert_eq!(s.tallies.total(), s.len);
            assert_eq!(s.seed, 7);
            all.extend(s.records.iter().map(|(f, _)| f.dyn_index));
        }
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<u64>>());
        // Progress snapshots: done is monotone; the finish snapshot
        // covers the whole campaign.
        let snaps: Vec<&ProgressSnapshot> = events
            .iter()
            .filter_map(|e| match &e.event {
                CampaignEvent::Progress(p) => Some(p),
                _ => None,
            })
            .collect();
        assert!(!snaps.is_empty());
        assert!(snaps.windows(2).all(|w| w[0].done <= w[1].done));
        let last = snaps.last().unwrap();
        assert_eq!((last.done, last.total), (10, 10));
        assert_eq!(last.tallies.benign, 10);
        assert_eq!(last.sdc_ci, wilson_interval(0, 10));
        assert!(matches!(
            events.last().unwrap().event,
            CampaignEvent::Finished { .. }
        ));
    }

    #[test]
    fn recorder_survives_zero_sample_campaigns() {
        // Satellite: degenerate telemetry — a zero-sample campaign
        // still produces a consistent started/progress/finished
        // stream with no division by zero.
        let sink = Arc::new(MemorySink::new());
        let rec = FlightRecorder::new(sink.clone());
        let profile = empty_profile();
        let cfg = CampaignConfig { samples: 0, seed: 1 };
        rec.on_started("serial", EngineKind::Interpreter, cfg, &profile, 0);
        rec.on_finished(&CampaignResult::default());
        let events = sink.events();
        assert!(matches!(events[0].event, CampaignEvent::Started { total: 0, .. }));
        let snap = events
            .iter()
            .find_map(|e| match &e.event {
                CampaignEvent::Progress(p) => Some(p),
                _ => None,
            })
            .expect("finish snapshot");
        assert_eq!((snap.done, snap.total), (0, 0));
        assert_eq!(snap.rate, 0.0);
        assert_eq!(snap.eta_nanos, None);
        assert_eq!(snap.sdc_ci, (0.0, 1.0), "Wilson degenerate interval");
        assert!(matches!(events.last().unwrap().event, CampaignEvent::Finished { .. }));
    }

    #[test]
    fn recorder_drops_foreign_events_gracefully() {
        // An injection for an index past the tracked total (a
        // concurrent foreign campaign) is dropped, not panicked on.
        let sink = Arc::new(MemorySink::new());
        let rec = FlightRecorder::new(sink.clone());
        let profile = empty_profile();
        rec.on_started(
            "serial",
            EngineKind::Interpreter,
            CampaignConfig { samples: 2, seed: 1 },
            &profile,
            2,
        );
        rec.on_injection(0, 99, FaultSpec::new(0, 0), Outcome::Benign, 0, Booking::Executed);
        // And before any campaign is bound, probes are inert.
        rec.on_finished(&CampaignResult::default());
        rec.on_injection(0, 0, FaultSpec::new(0, 0), Outcome::Benign, 0, Booking::Executed);
        let baseline = sink.len();
        rec.on_finished(&CampaignResult::default());
        assert_eq!(sink.len(), baseline, "finished without active campaign is inert");
    }

    #[test]
    fn journal_reconstruction_keeps_first_shard_and_sorts() {
        let shard = |i: usize| {
            CampaignEvent::ShardCompleted(ShardRecord {
                shard: i,
                start: i * 2,
                len: 2,
                seed: 5,
                program_hash: 0,
                tallies: OutcomeTallies::default(),
                records: vec![
                    (FaultSpec::new(i as u64 * 2, 0), Outcome::Benign),
                    (FaultSpec::new(i as u64 * 2 + 1, 0), Outcome::Benign),
                ],
            })
        };
        let wrap = |seq: u64, event: CampaignEvent| FlightEvent { seq, nanos: 0, event };
        let events = vec![
            wrap(
                0,
                CampaignEvent::Started {
                    fingerprint: fp(6, 5),
                    total: 6,
                    shard_size: 2,
                    shards: 3,
                },
            ),
            wrap(1, shard(2)),
            wrap(2, shard(0)),
            wrap(3, shard(2)),
        ];
        let j = JournalSnapshot::from_events(&events).expect("journal");
        assert_eq!(j.total, 6);
        assert_eq!(j.shards.iter().map(|s| s.shard).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(j.completed(), 4);
        assert!(!j.finished);
        assert!(JournalSnapshot::from_events(&[wrap(0, shard(0))]).is_none(), "no started event");
    }

    #[test]
    fn stage_labels_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.label()), Some(s));
        }
        assert_eq!(Stage::parse("warp-drive"), None);
        let mut labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Stage::ALL.len());
    }

    #[test]
    fn stage_timings_aggregate_and_drain_before_finished() {
        let sink = Arc::new(MemorySink::new());
        let rec = FlightRecorder::new(sink.clone());
        // Decode runs during engine binding, before the started event:
        // it must be credited to the campaign that starts next.
        rec.on_stage(0, Stage::Decode, 500);
        let cfg = CampaignConfig { samples: 4, seed: 1 };
        rec.on_started("snapshot", EngineKind::Decoded, cfg, &empty_profile(), 4);
        rec.on_stage(0, Stage::GoldenRun, 1000);
        rec.on_stage(1, Stage::Replay, 300);
        rec.on_stage(1, Stage::Replay, 200);
        let mut done = CampaignResult::default();
        for i in 0..4u64 {
            rec.on_injection(
                (i % 2) as usize,
                i as usize,
                FaultSpec::new(i, 0),
                Outcome::Benign,
                10,
                Booking::Executed,
            );
            done.record(FaultSpec::new(i, 0), Outcome::Benign);
        }
        rec.on_finished(&done);

        let events = sink.events();
        let stages: Vec<(usize, Stage, u64, u64)> = events
            .iter()
            .filter_map(|e| match e.event {
                CampaignEvent::StageTiming {
                    worker,
                    stage,
                    nanos,
                    count,
                } => Some((worker, stage, nanos, count)),
                _ => None,
            })
            .collect();
        // Same-worker same-stage observations aggregate; emission is
        // worker-major in Stage::ALL order.
        assert_eq!(
            stages,
            vec![
                (0, Stage::Decode, 500, 1),
                (0, Stage::GoldenRun, 1000, 1),
                (1, Stage::Replay, 500, 2),
            ]
        );
        // The drain sits between the last injection-driven event and
        // the closing progress + finished pair.
        let first_stage = events
            .iter()
            .position(|e| matches!(e.event, CampaignEvent::StageTiming { .. }))
            .expect("stage events present");
        assert!(matches!(
            events[first_stage + 3].event,
            CampaignEvent::Progress(_)
        ));
        assert!(matches!(
            events[first_stage + 4].event,
            CampaignEvent::Finished { .. }
        ));
        // A second campaign starts clean: no stale stage state.
        rec.on_started("serial", EngineKind::Interpreter, cfg, &empty_profile(), 4);
        rec.on_finished(&CampaignResult::default());
        let second: Vec<FlightEvent> = sink.events().split_off(events.len());
        assert!(
            !second
                .iter()
                .any(|e| matches!(e.event, CampaignEvent::StageTiming { .. })),
            "no stage probes fired in the second campaign"
        );
    }

    #[test]
    fn global_install_toggles() {
        // Keep this test free of campaigns: other tests in this
        // binary run concurrently and must not observe the recorder.
        assert!(!enabled());
        let rec = Arc::new(FlightRecorder::new(Arc::new(MemorySink::new())));
        install(rec);
        assert!(enabled());
        uninstall();
        assert!(!enabled());
    }

    #[test]
    fn program_signature_tracks_function_edits() {
        let text = "\
.globl main
main:
    movq $5, %rax
    ret
";
        let a = ferrum_asm::parser::parse_program(text).unwrap();
        let mut b = a.clone();
        b.functions[0]
            .blocks[0]
            .insts
            .insert(0, ferrum_asm::AsmInst::synthetic(ferrum_asm::Inst::Nop));
        assert_ne!(program_signature(&a), program_signature(&b));
        assert_eq!(program_signature(&a), program_signature(&a.clone()));
    }
}
