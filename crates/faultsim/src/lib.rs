//! # ferrum-faultsim — assembly-level fault-injection campaigns
//!
//! Implements the paper's evaluation methodology (§IV-A2): sample a
//! dynamically executed instruction uniformly from the injectable
//! sites, flip one random bit in its destination register (or RFLAGS
//! for `cmp`/`test`), one fault per program execution, and classify the
//! outcome:
//!
//! * **SDC** — the program completed but printed the wrong output,
//! * **Detected** — a checker transferred control to `exit_function`,
//! * **Crash** — a hardware-style exception (segfault, divide error),
//! * **Timeout** — the fault sent the program into a non-terminating
//!   path,
//! * **Benign** — the program completed with the correct output.
//!
//! [`campaign`] runs sampled campaigns (the paper uses 1000 faults per
//! benchmark) and exhaustive sweeps (used by the soundness tests that
//! prove the 100%-coverage claim on small kernels).  [`stats`] computes
//! SDC probability and the paper's SDC-coverage metric with
//! binomial confidence intervals, and [`rootcause`] attributes SDCs to
//! the provenance of the faulted instruction, reproducing the paper's
//! root-cause analysis of IR-level EDDI's coverage loss (§IV-B1).

pub mod campaign;
pub mod compose;
pub mod crossval;
pub mod engine;
pub mod flight;
pub mod forensics;
pub mod rootcause;
pub mod stats;

pub use campaign::{
    exhaustive_campaign, exhaustive_campaign_on, run_campaign, run_campaign_on,
    run_campaign_parallel, run_campaign_parallel_on, run_campaign_pruned, run_campaign_pruned_on,
    run_campaign_snapshot, run_campaign_snapshot_on, run_double_campaign, run_double_campaign_on,
    CampaignConfig, CampaignResult, CampaignStats, Outcome, SnapshotPolicy,
};
pub use compose::{
    compose, run_campaign_incremental, run_campaign_incremental_on, run_campaign_stratified,
    run_campaign_stratified_on, CampaignCache, ComposedFunction, ComposedMap, ComposedSite,
    FunctionShard, ShardDraw,
};
pub use engine::{Engine, EngineKind, EngineMachine};
pub use flight::{
    program_signature, resume_campaign_from_journal, CampaignEvent, CampaignFingerprint,
    FlightEvent, FlightPolicy, FlightRecorder, FlightSink, JournalSnapshot, MemorySink,
    OutcomeTallies, ProgressSnapshot, ShardRecord, TeeSink,
};
pub use forensics::{
    explain_unknown_sites, forensic_replay, forensic_replay_on, run_campaign_forensic,
    run_campaign_forensic_on, CheckerEscape, Divergence, EscapeReason, ForensicConfig,
    ForensicRecord, ForensicsReport, KillWindow, TaintSample, TaintTimeline,
    UnknownSiteExplanation,
};
pub use rootcause::{attribute_sdcs, breakdown_by_kind, KindBreakdown, RootCauseReport};
pub use stats::{min_median_max, percentile_nearest_rank, sdc_coverage, wilson_interval};
