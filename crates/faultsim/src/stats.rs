//! SDC-coverage statistics.

/// The paper's SDC-coverage metric (§IV-A3):
/// `(SDC_raw − SDC_prot) / SDC_raw`.
///
/// Returns 1.0 when the unprotected program has no SDCs at all (nothing
/// to cover), and clamps below at 0.0 (a protection that *increases*
/// SDC probability would otherwise report negative coverage; the clamp
/// matches how such results are reported in practice).
pub fn sdc_coverage(sdc_raw: f64, sdc_prot: f64) -> f64 {
    if sdc_raw <= 0.0 {
        return 1.0;
    }
    ((sdc_raw - sdc_prot) / sdc_raw).clamp(0.0, 1.0)
}

/// 95% Wilson score interval for a binomial proportion — the standard
/// way to put error bars on fault-injection estimates.
pub fn wilson_interval(successes: usize, trials: usize) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = 1.96f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let margin = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    ((centre - margin).max(0.0), (centre + margin).min(1.0))
}

/// Runtime performance overhead (§IV-A3):
/// `(runtime_prot − runtime_raw) / runtime_raw`.
pub fn runtime_overhead(raw: u64, prot: u64) -> f64 {
    (prot as f64 - raw as f64) / raw as f64
}

/// Nearest-rank percentile over a **sorted** slice: the smallest
/// element with at least `p`% of the data at or below it
/// (`rank = ⌈p/100 · n⌉`, clamped to the valid range).  `None` on an
/// empty slice.
///
/// This is the single percentile definition shared by
/// detection-latency reporting, forensic kill-window summaries, and
/// flight-recorder progress snapshots — keeping the three from
/// drifting apart.
pub fn percentile_nearest_rank<T: Copy>(sorted: &[T], p: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

/// `(min, median, max)` of a sample, or `None` when empty.  The median
/// is the nearest-rank 50th percentile (lower middle for even sizes),
/// matching [`percentile_nearest_rank`].
pub fn min_median_max<T: Copy + Ord>(mut v: Vec<T>) -> Option<(T, T, T)> {
    if v.is_empty() {
        return None;
    }
    v.sort_unstable();
    Some((v[0], v[v.len().div_ceil(2) - 1], v[v.len() - 1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_formula() {
        assert!((sdc_coverage(0.2, 0.0) - 1.0).abs() < 1e-12);
        assert!((sdc_coverage(0.2, 0.1) - 0.5).abs() < 1e-12);
        assert!((sdc_coverage(0.2, 0.2)).abs() < 1e-12);
        // Degenerate cases.
        assert_eq!(sdc_coverage(0.0, 0.0), 1.0);
        assert_eq!(sdc_coverage(0.1, 0.3), 0.0); // clamped
    }

    #[test]
    fn wilson_basic_properties() {
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        // Extremes stay in [0, 1].
        let (lo, hi) = wilson_interval(0, 100);
        assert!(lo >= 0.0 && hi > 0.0 && hi < 0.1);
        let (lo, hi) = wilson_interval(100, 100);
        assert!(lo > 0.9 && hi <= 1.0);
        // Degenerate.
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
    }

    #[test]
    fn interval_narrows_with_samples() {
        let (lo1, hi1) = wilson_interval(10, 100);
        let (lo2, hi2) = wilson_interval(100, 1000);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn overhead_formula() {
        assert!((runtime_overhead(100, 162) - 0.62).abs() < 1e-12);
        assert!((runtime_overhead(100, 100)).abs() < 1e-12);
        assert!(runtime_overhead(100, 90) < 0.0);
    }
}
