//! Differential-replay SDC forensics: explain every escaped fault.
//!
//! The campaign layer answers *how many* faults became silent data
//! corruptions; this module answers the per-incident question the
//! paper's aggregate tables cannot: **where** did the corruption first
//! diverge architecturally, **how** did it fan out over time, and
//! **which** checker executed afterwards yet failed to fire — and why.
//!
//! For each selected fault sample, [`forensic_replay`] re-runs the
//! golden and the faulted execution in lock-step from the injection
//! boundary (sharing the golden prefix via
//! [`ferrum_cpu::snapshot::Machine`] snapshots, the same determinism
//! contract the snapshot campaign engine relies on) and emits a
//! [`ForensicRecord`]:
//!
//! * the first architectural divergence (register / SIMD lane / flags /
//!   memory byte, with dynamic index, pc, and provenance of the
//!   injected instruction),
//! * a dynamic taint walk — the *live* corruption set (differing GPRs,
//!   SIMD lanes, flags, and memory bytes) sampled over time, its peak,
//!   the cumulative propagation depth, and either the
//!   time-to-quiescence (corruption died out) or time-to-output
//!   (corruption reached a `print`),
//! * every protection checker executed after the injection with a
//!   classified [`EscapeReason`],
//! * a bisected minimal kill-window: the largest lock-step distance at
//!   which repairing the faulty run's registers from the golden run
//!   still restores the golden output.
//!
//! [`run_campaign_forensic`] wraps the reference serial executor: its
//! [`CampaignResult`] is outcome-identical to [`run_campaign`] for the
//! same seed (forensic replay is observational only), and the records
//! aggregate into a [`ForensicsReport`] with escape-reason and
//! per-mechanism histograms.  [`explain_unknown_sites`] cross-links the
//! records to a static [`CoverageMap`], giving every
//! statically-`Unknown` site that produced an SDC a measured
//! explanation.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

use ferrum_asm::analysis::coverage::{CoverageMap, StaticVerdict};
use ferrum_asm::provenance::{Mechanism, Provenance};
use ferrum_cpu::differential::{
    diff_regs, first_divergence, load_ranges, store_ranges, DiffLoc, MemDivergence, RegDiff,
};
use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::outcome::StopReason;
use ferrum_cpu::image::Image;
use ferrum_cpu::run::{Cpu, Profile};
use ferrum_cpu::snapshot::Snapshot;

use crate::campaign::{
    classify, detection_latency, finish_stats, sample_faults, CampaignConfig, CampaignResult,
    DetectionLatency, Outcome, WorkerStats,
};
use crate::engine::{Engine, EngineMachine};
use crate::flight;

/// Why a checker that executed after the injection failed to fire — or,
/// at record level, why the whole protection scheme let the fault
/// escape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EscapeReason {
    /// The checker's inputs overlapped the live corruption, yet it
    /// passed: the duplicate (or accumulator) was corrupted
    /// consistently with the original, so the comparison saw equality.
    DupAlsoCorrupted,
    /// No architectural divergence was live when the checker ran — the
    /// corruption had already been masked (overwritten or cancelled)
    /// before any check could see it.
    MaskedBeforeCheck,
    /// A SIMD batch flush ran while corruption was live but its
    /// accumulator inputs were clean: the damaged pair was flushed in
    /// an earlier batch (or never captured into this accumulator).
    BatchFlushedEarly,
    /// A deferred-flag recheck ran while corruption was live but its
    /// captured condition bytes were clean: the corrupted flags were
    /// overwritten before the deferred capture reached them.
    DeferredFlagOverwritten,
    /// A scalar check (or requisition red-zone check) ran while
    /// corruption was live but none of its inputs carried the taint —
    /// the corruption propagated around the checked values.
    CheckerBlind,
    /// No protection checker executed at all between the injection and
    /// the end of the run.
    CheckerNotReached,
    /// The corruption escaped to program output before the first
    /// taint-carrying checker executed — the store/print window closed
    /// first.
    StoreEscapedWindow,
    /// Control flow diverged from the golden run before this checker;
    /// past that point per-input taint attribution is no longer
    /// meaningful (the checker belongs to a different path).
    ControlFlowDiverged,
}

impl EscapeReason {
    /// All reasons, in report order.
    pub const ALL: [EscapeReason; 8] = [
        EscapeReason::DupAlsoCorrupted,
        EscapeReason::MaskedBeforeCheck,
        EscapeReason::BatchFlushedEarly,
        EscapeReason::DeferredFlagOverwritten,
        EscapeReason::CheckerBlind,
        EscapeReason::CheckerNotReached,
        EscapeReason::StoreEscapedWindow,
        EscapeReason::ControlFlowDiverged,
    ];

    /// Stable text label (reports and JSON keys).
    pub fn label(self) -> &'static str {
        match self {
            EscapeReason::DupAlsoCorrupted => "dup-also-corrupted",
            EscapeReason::MaskedBeforeCheck => "masked-before-check",
            EscapeReason::BatchFlushedEarly => "batch-flushed-early",
            EscapeReason::DeferredFlagOverwritten => "deferred-flag-overwritten",
            EscapeReason::CheckerBlind => "checker-blind",
            EscapeReason::CheckerNotReached => "checker-not-reached",
            EscapeReason::StoreEscapedWindow => "store-escaped-window",
            EscapeReason::ControlFlowDiverged => "control-flow-diverged",
        }
    }
}

impl fmt::Display for EscapeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One protection checker that executed after the injection, with the
/// classified reason it did not fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckerEscape {
    /// Dynamic index at which the checker executed (in the faulty run).
    pub dyn_index: u64,
    /// Static instruction index of the checker's flag-writing compare.
    pub pc: usize,
    /// The protection mechanism the checker belongs to.
    pub mechanism: Mechanism,
    /// Why it failed to fire.
    pub reason: EscapeReason,
    /// Whether any of the checker's inputs carried live corruption when
    /// it ran.
    pub inputs_tainted: bool,
}

/// The first architectural divergence between golden and faulty runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Dynamic index of the injected instruction.
    pub dyn_index: u64,
    /// Static instruction index of the injected instruction.
    pub pc: usize,
    /// Provenance of the injected instruction.
    pub prov: Provenance,
    /// Where the states first differ.
    pub loc: DiffLoc,
}

/// The live corruption set at one instruction boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintSample {
    /// Dynamic index of the boundary (faulty run).
    pub dyn_index: u64,
    /// Divergent general-purpose registers.
    pub gprs: usize,
    /// Divergent 64-bit SIMD lanes.
    pub simd_lanes: usize,
    /// Whether RFLAGS diverge.
    pub flags: bool,
    /// Divergent memory bytes.
    pub mem_bytes: usize,
    /// Distinct locations ever tainted up to this boundary (monotone).
    pub cumulative: usize,
}

impl TaintSample {
    /// Total live tainted locations at this boundary.
    pub fn live(&self) -> usize {
        self.gprs + self.simd_lanes + usize::from(self.flags) + self.mem_bytes
    }
}

/// The corruption fan-out over time for one faulted run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintTimeline {
    /// Strided boundary samples (bounded; covers the whole walk).
    pub samples: Vec<TaintSample>,
    /// Peak live corruption observed at any boundary.
    pub peak_live: usize,
    /// Distinct architectural locations ever tainted.
    pub propagation_depth: usize,
    /// Boundary at which the live corruption set emptied while the
    /// output was still golden (the fault died out), if it did.
    pub quiescence: Option<u64>,
    /// Boundary at which program output first diverged, if it did.
    pub time_to_output: Option<u64>,
}

/// The bisected minimal kill-window: the span of dynamic instructions
/// `[start, end]` within which restoring the faulty run's register
/// file from the golden run still yields the golden output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillWindow {
    /// Injection boundary (start of the window).
    pub start: u64,
    /// Last boundary at which a register repair still kills the fault.
    pub end: u64,
    /// True if not even an immediate repair restores the golden output.
    pub escaped: bool,
}

impl KillWindow {
    /// Whether the window contains the given dynamic index.
    pub fn contains(&self, dyn_index: u64) -> bool {
        self.start <= dyn_index && dyn_index <= self.end
    }

    /// Window length in dynamic instructions.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the window has zero length.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Full differential-replay explanation of one fault sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForensicRecord {
    /// The injected fault.
    pub fault: FaultSpec,
    /// Its campaign outcome.
    pub outcome: Outcome,
    /// Static instruction index of the injected instruction.
    pub site_pc: usize,
    /// First architectural divergence (always present: a bit flip
    /// always produces one).
    pub divergence: Option<Divergence>,
    /// Corruption fan-out over the faulty run.
    pub taint: TaintTimeline,
    /// Checkers executed after the injection, each with its escape
    /// classification.
    pub checkers: Vec<CheckerEscape>,
    /// Record-level escape reason (deterministic priority over the
    /// per-checker classifications).
    pub primary_reason: Option<EscapeReason>,
    /// Bisected minimal kill-window (absent when bisection is off).
    pub kill_window: Option<KillWindow>,
}

/// What to analyze and how hard to work at it.
#[derive(Debug, Clone)]
pub struct ForensicConfig {
    /// Outcomes that trigger a replay (default: SDC only).
    pub outcomes: Vec<Outcome>,
    /// Cap on fully analyzed records per campaign.
    pub max_records: usize,
    /// Budget for the lock-step walk (and the post-divergence checker
    /// enumeration), in dynamic instructions.
    pub max_lockstep_steps: u64,
    /// Cap on retained taint-timeline samples per record.
    pub max_taint_samples: usize,
    /// Whether to bisect kill-windows (log₂ extra replays per record).
    pub bisect: bool,
}

impl Default for ForensicConfig {
    fn default() -> ForensicConfig {
        ForensicConfig {
            outcomes: vec![Outcome::Sdc],
            max_records: 64,
            max_lockstep_steps: 200_000,
            max_taint_samples: 64,
            bisect: true,
        }
    }
}

/// Aggregated forensics for one campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForensicsReport {
    /// Fully analyzed records (at most `max_records`).
    pub records: Vec<ForensicRecord>,
    /// Campaign outcomes that matched the configured filter (analyzed
    /// or not — the excess past `max_records` is counted, not dropped
    /// silently).
    pub matching_total: usize,
    /// Primary escape reasons over the analyzed records.
    pub reason_histogram: Vec<(EscapeReason, usize)>,
    /// Post-injection checker escapes per mechanism, over all analyzed
    /// records.
    pub mechanism_escapes: Vec<(Mechanism, usize)>,
}

impl ForensicsReport {
    /// Number of fully analyzed records.
    pub fn analyzed(&self) -> usize {
        self.records.len()
    }

    /// Records whose first divergence was located.
    pub fn located(&self) -> usize {
        self.records.iter().filter(|r| r.divergence.is_some()).count()
    }

    /// Records with a classified primary escape reason.
    pub fn classified(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.primary_reason.is_some())
            .count()
    }

    /// Per-record propagation depths (distinct locations ever tainted).
    pub fn propagation_depths(&self) -> Vec<usize> {
        self.records
            .iter()
            .map(|r| r.taint.propagation_depth)
            .collect()
    }

    /// Injection→output latencies for records whose corruption reached
    /// the output.
    pub fn output_latencies(&self) -> Vec<u64> {
        self.records
            .iter()
            .filter_map(|r| {
                r.taint
                    .time_to_output
                    .map(|t| t.saturating_sub(r.fault.dyn_index))
            })
            .collect()
    }

    /// `(min, median, max)` of the propagation depths, if any records
    /// were analyzed.
    pub fn depth_summary(&self) -> Option<(usize, usize, usize)> {
        summary(self.propagation_depths())
    }

    /// `(min, median, max)` of the injection→output latencies, if any
    /// corruption reached the output.
    pub fn latency_summary(&self) -> Option<(u64, u64, u64)> {
        summary(self.output_latencies())
    }

    /// Recomputes the aggregate histograms from the records.
    pub fn finish(&mut self) {
        self.reason_histogram = EscapeReason::ALL
            .into_iter()
            .map(|reason| {
                let n = self
                    .records
                    .iter()
                    .filter(|r| r.primary_reason == Some(reason))
                    .count();
                (reason, n)
            })
            .filter(|&(_, n)| n > 0)
            .collect();
        self.mechanism_escapes = Mechanism::ALL
            .into_iter()
            .map(|mech| {
                let n = self
                    .records
                    .iter()
                    .flat_map(|r| &r.checkers)
                    .filter(|c| c.mechanism == mech)
                    .count();
                (mech, n)
            })
            .filter(|&(_, n)| n > 0)
            .collect();
    }
}

fn summary<T: Copy + Ord>(v: Vec<T>) -> Option<(T, T, T)> {
    // Shared nearest-rank definition — keeps forensic medians,
    // detection-latency percentiles, and flight-recorder snapshots on
    // one percentile convention.
    crate::stats::min_median_max(v)
}

/// A statically-`Unknown` coverage site whose sampled fault produced an
/// SDC, paired with the measured explanation from its forensic record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownSiteExplanation {
    /// Static instruction index of the site.
    pub pc: usize,
    /// Dynamic index of the injected instruction.
    pub dyn_index: u64,
    /// The sampled raw bit.
    pub raw_bit: u16,
    /// Mechanism of the injected instruction, when it was protection
    /// code.
    pub mechanism: Option<Mechanism>,
    /// The measured escape reason.
    pub reason: Option<EscapeReason>,
}

/// Cross-links forensic records to a static [`CoverageMap`]: every
/// analyzed SDC whose site the map left `Unknown` gets its measured
/// explanation, turning the map's "analysis lost exactness here"
/// verdicts into diagnosed escapes.
pub fn explain_unknown_sites(
    profile: &Profile,
    map: &CoverageMap,
    report: &ForensicsReport,
) -> Vec<UnknownSiteExplanation> {
    report
        .records
        .iter()
        .filter(|r| r.outcome == Outcome::Sdc)
        .filter_map(|r| {
            let i = profile
                .sites
                .binary_search_by_key(&r.fault.dyn_index, |s| s.dyn_index)
                .ok()?;
            let site = profile.sites[i];
            match map.verdict_at(site.pc, r.fault.raw_bit) {
                Some(StaticVerdict::Unknown) => Some(UnknownSiteExplanation {
                    pc: site.pc,
                    dyn_index: site.dyn_index,
                    raw_bit: r.fault.raw_bit,
                    mechanism: site.prov.mechanism(),
                    reason: r.primary_reason,
                }),
                _ => None,
            }
        })
        .collect()
}

/// Bounded strided sampler: keeps at most `max` samples spread over the
/// whole walk by doubling the stride whenever the buffer fills.
struct TimelineSampler {
    samples: Vec<TaintSample>,
    stride: u64,
    seen: u64,
    max: usize,
}

impl TimelineSampler {
    fn new(max: usize) -> TimelineSampler {
        TimelineSampler {
            samples: Vec::new(),
            stride: 1,
            seen: 0,
            max: max.max(2),
        }
    }

    fn push(&mut self, s: TaintSample) {
        if self.seen.is_multiple_of(self.stride) {
            if self.samples.len() == self.max {
                let mut i = 0;
                self.samples.retain(|_| {
                    i += 1;
                    i % 2 == 1
                });
                self.stride *= 2;
            }
            if self.seen.is_multiple_of(self.stride) {
                self.samples.push(s);
            }
        }
        self.seen += 1;
    }
}

fn accumulate_taint(ever: &mut BTreeSet<u64>, live: &RegDiff, mem: &MemDivergence) {
    // Disjoint key spaces: GPR index, 100+SIMD lane, 300 for flags,
    // and memory addresses offset past the register keys.
    for g in &live.gprs {
        ever.insert(g.index() as u64);
    }
    for &(reg, lane) in &live.simd_lanes {
        ever.insert(100 + u64::from(reg) * 8 + u64::from(lane));
    }
    if live.flags {
        ever.insert(300);
    }
    for addr in mem.iter() {
        ever.insert((1u64 << 32) | addr);
    }
}

/// Whether the checker at the faulty state's pc reads any location of
/// the live corruption set.
fn checker_inputs_tainted(
    image: &Image,
    faulty: &EngineMachine<'_>,
    live: &RegDiff,
    mem: &MemDivergence,
) -> bool {
    let li = &image.insts[faulty.state().pc];
    if li
        .inst
        .gprs_read()
        .iter()
        .any(|g| live.gprs.contains(g))
    {
        return true;
    }
    let simd = li.inst.simd_read();
    if live.simd_lanes.iter().any(|(reg, _)| simd.contains(reg)) {
        return true;
    }
    if li.inst.reads_flags() && live.flags {
        return true;
    }
    mem.overlaps(&load_ranges(image, faulty.state()))
}

fn classify_checker(mechanism: Mechanism, taint_live: bool, inputs_tainted: bool) -> EscapeReason {
    if !taint_live {
        EscapeReason::MaskedBeforeCheck
    } else if inputs_tainted {
        EscapeReason::DupAlsoCorrupted
    } else {
        match mechanism {
            Mechanism::BatchFlush => EscapeReason::BatchFlushedEarly,
            Mechanism::FlagRecheck => EscapeReason::DeferredFlagOverwritten,
            _ => EscapeReason::CheckerBlind,
        }
    }
}

/// Record-level escape reason, chosen deterministically: no checker at
/// all → `CheckerNotReached`; output escaped before the first
/// taint-carrying checker → `StoreEscapedWindow`; otherwise the *last*
/// checker that ran while corruption was live names the failure; if
/// every checker ran taint-free the fault was `MaskedBeforeCheck`.
fn primary_reason(
    checkers: &[CheckerEscape],
    time_to_output: Option<u64>,
) -> Option<EscapeReason> {
    if checkers.is_empty() {
        return Some(EscapeReason::CheckerNotReached);
    }
    let live: Vec<&CheckerEscape> = checkers
        .iter()
        .filter(|c| c.reason != EscapeReason::MaskedBeforeCheck)
        .collect();
    match (time_to_output, live.first()) {
        (Some(t), Some(c)) if t < c.dyn_index => Some(EscapeReason::StoreEscapedWindow),
        (Some(_), None) => Some(EscapeReason::StoreEscapedWindow),
        (_, Some(_)) => live.last().map(|c| c.reason),
        (None, None) => Some(EscapeReason::MaskedBeforeCheck),
    }
}

/// One kill-window probe: lock-step `t` boundaries past the injection,
/// then repair the faulty run's complete register file from the golden
/// run and let it finish.  True when that still restores the golden
/// output.
fn kill_probe(
    engine: Engine<'_>,
    fault: FaultSpec,
    snap: &Snapshot,
    golden_output: &[i64],
    t: u64,
) -> bool {
    let mut g = engine.machine();
    g.restore(snap);
    let mut f = g.clone();
    f.step_faulted(&[fault]);
    g.step();
    let mut k = 0u64;
    while k < t
        && g.stop_reason().is_none()
        && f.stop_reason().is_none()
        && g.state().pc == f.state().pc
    {
        g.step();
        f.step();
        k += 1;
    }
    if f.stop_reason().is_none() {
        f.state_mut().regs = g.state().regs.clone();
    }
    let r = f.run_to_completion(&[]);
    r.stop == StopReason::MainReturned && r.output == golden_output
}

/// Binary-searches the largest repair distance that still kills the
/// fault (monotone by construction: memory/output damage only grows).
fn bisect_kill_window(
    engine: Engine<'_>,
    fault: FaultSpec,
    snap: &Snapshot,
    golden_output: &[i64],
    t_max: u64,
) -> KillWindow {
    let start = fault.dyn_index;
    if !kill_probe(engine, fault, snap, golden_output, 0) {
        return KillWindow {
            start,
            end: start,
            escaped: true,
        };
    }
    if kill_probe(engine, fault, snap, golden_output, t_max) {
        return KillWindow {
            start,
            end: start + 1 + t_max,
            escaped: false,
        };
    }
    let (mut lo, mut hi) = (0u64, t_max);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if kill_probe(engine, fault, snap, golden_output, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    KillWindow {
        start,
        end: start + 1 + lo,
        escaped: false,
    }
}

/// Differentially replays one fault sample and explains it.
///
/// # Panics
///
/// Panics if `fault.dyn_index` lies beyond the golden run (faults
/// drawn from `profile.sites` never do).
pub fn forensic_replay(
    cpu: &Cpu,
    profile: &Profile,
    fault: FaultSpec,
    outcome: Outcome,
    fcfg: &ForensicConfig,
) -> ForensicRecord {
    forensic_replay_on(Engine::Interpreter(cpu), profile, fault, outcome, fcfg)
}

/// As [`forensic_replay`], on an explicit [`Engine`].  The decoded
/// machine's `step_faulted` always executes exactly one instruction
/// (never a fused group), so the lock-step walk observes the same
/// boundaries on either engine and records are identical.
///
/// # Panics
///
/// Panics if `fault.dyn_index` lies beyond the golden run (faults
/// drawn from `profile.sites` never do).
pub fn forensic_replay_on(
    engine: Engine<'_>,
    profile: &Profile,
    fault: FaultSpec,
    outcome: Outcome,
    fcfg: &ForensicConfig,
) -> ForensicRecord {
    let _span = ferrum_trace::span("forensics.replay");
    let image = engine.image();

    // Golden prefix up to the injection boundary.
    let mut golden = engine.machine();
    while golden.dyn_insts() < fault.dyn_index {
        assert!(
            golden.step() == ferrum_cpu::exec::StepEvent::Continue,
            "fault index {} beyond golden run",
            fault.dyn_index
        );
    }
    let inject_snap = golden.snapshot();
    let inject_pc = golden.state().pc;
    let inject_prov = image.insts[inject_pc].prov;

    // The faulted step, against the golden step.
    let mut faulty = golden.clone();
    faulty.step_faulted(&[fault]);
    golden.step();

    let mut mem = MemDivergence::new();
    let mut live = diff_regs(golden.state(), faulty.state());
    let divergence =
        first_divergence(golden.state(), faulty.state(), &mem).map(|loc| Divergence {
            dyn_index: fault.dyn_index,
            pc: inject_pc,
            prov: inject_prov,
            loc,
        });

    let mut ever = BTreeSet::new();
    let mut sampler = TimelineSampler::new(fcfg.max_taint_samples);
    let mut checkers: Vec<CheckerEscape> = Vec::new();
    let mut peak_live = 0usize;
    let mut quiescence = None;
    let mut time_to_output = None;
    let mut control_diverged = false;

    accumulate_taint(&mut ever, &live, &mem);
    let boundary_sample = |live: &RegDiff,
                           mem: &MemDivergence,
                           dyn_index: u64,
                           ever: &BTreeSet<u64>,
                           sampler: &mut TimelineSampler,
                           peak: &mut usize| {
        let s = TaintSample {
            dyn_index,
            gprs: live.gprs.len(),
            simd_lanes: live.simd_lanes.len(),
            flags: live.flags,
            mem_bytes: mem.len(),
            cumulative: ever.len(),
        };
        *peak = (*peak).max(s.live());
        sampler.push(s);
    };
    boundary_sample(
        &live,
        &mem,
        faulty.dyn_insts(),
        &ever,
        &mut sampler,
        &mut peak_live,
    );

    // Lock-step walk while both runs agree on control flow.
    let mut steps = 0u64;
    loop {
        if golden.stop_reason().is_some() || faulty.stop_reason().is_some() {
            break;
        }
        if golden.state().pc != faulty.state().pc {
            control_diverged = true;
            break;
        }
        if steps >= fcfg.max_lockstep_steps {
            break;
        }
        if live.is_empty() && mem.is_empty() && time_to_output.is_none() {
            // Fully reconverged before any output damage: the rest of
            // the run is identical to golden by induction.
            quiescence = Some(faulty.dyn_insts());
            break;
        }

        let li = &image.insts[faulty.state().pc];
        if let Some(mechanism) = li.prov.mechanism().filter(|m| m.is_checker()) {
            if li.inst.writes_flags() {
                let taint_live = !live.is_empty() || !mem.is_empty();
                let inputs_tainted = checker_inputs_tainted(image, &faulty, &live, &mem);
                checkers.push(CheckerEscape {
                    dyn_index: faulty.dyn_insts(),
                    pc: faulty.state().pc,
                    mechanism,
                    reason: classify_checker(mechanism, taint_live, inputs_tainted),
                    inputs_tainted,
                });
            }
        }

        // Predict store targets in both states (effective addresses may
        // have diverged), step, then re-compare exactly those bytes.
        let mut ranges = store_ranges(image, golden.state());
        ranges.extend(store_ranges(image, faulty.state()));
        golden.step();
        faulty.step();
        steps += 1;
        mem.update(&golden.state().mem, &faulty.state().mem, &ranges);
        live = diff_regs(golden.state(), faulty.state());
        if time_to_output.is_none() && golden.state().output != faulty.state().output {
            time_to_output = Some(faulty.dyn_insts());
        }
        accumulate_taint(&mut ever, &live, &mem);
        boundary_sample(
            &live,
            &mem,
            faulty.dyn_insts(),
            &ever,
            &mut sampler,
            &mut peak_live,
        );
    }

    // Past a control-flow divergence (or past the golden run's end) the
    // faulty run walks alone; checkers it still executes belong to a
    // different path and are classified as such.
    if faulty.stop_reason().is_none() && (control_diverged || golden.stop_reason().is_some()) {
        let mut extra = 0u64;
        while faulty.stop_reason().is_none() && extra < fcfg.max_lockstep_steps {
            let li = &image.insts[faulty.state().pc];
            if let Some(mechanism) = li.prov.mechanism().filter(|m| m.is_checker()) {
                if li.inst.writes_flags() {
                    checkers.push(CheckerEscape {
                        dyn_index: faulty.dyn_insts(),
                        pc: faulty.state().pc,
                        mechanism,
                        reason: EscapeReason::ControlFlowDiverged,
                        inputs_tainted: true,
                    });
                }
            }
            faulty.step();
            extra += 1;
        }
    }

    let kill_window = fcfg.bisect.then(|| {
        bisect_kill_window(engine, fault, &inject_snap, &profile.result.output, steps)
    });
    let primary = primary_reason(&checkers, time_to_output);

    ForensicRecord {
        fault,
        outcome,
        site_pc: inject_pc,
        divergence,
        taint: TaintTimeline {
            samples: sampler.samples,
            peak_live,
            propagation_depth: ever.len(),
            quiescence,
            time_to_output,
        },
        checkers,
        primary_reason: primary,
        kill_window,
    }
}

/// Runs the reference serial campaign while forensically replaying
/// every sample whose outcome matches `fcfg.outcomes` (up to
/// `fcfg.max_records`).
///
/// The returned [`CampaignResult`] is outcome-identical to
/// [`crate::campaign::run_campaign`] for the same seed: replay is
/// purely observational, driven by the same pre-sampled fault list.
///
/// # Panics
///
/// Panics if the profile has no injectable sites (with `samples > 0`).
pub fn run_campaign_forensic(
    cpu: &Cpu,
    profile: &Profile,
    cfg: CampaignConfig,
    fcfg: &ForensicConfig,
) -> (CampaignResult, ForensicsReport) {
    run_campaign_forensic_on(Engine::Interpreter(cpu), profile, cfg, fcfg)
}

/// As [`run_campaign_forensic`], on an explicit [`Engine`].
///
/// # Panics
///
/// Panics if the profile has no injectable sites (with `samples > 0`).
pub fn run_campaign_forensic_on(
    engine: Engine<'_>,
    profile: &Profile,
    cfg: CampaignConfig,
    fcfg: &ForensicConfig,
) -> (CampaignResult, ForensicsReport) {
    let _span = ferrum_trace::span("campaign.forensic");
    let t0 = Instant::now();
    let mut result = CampaignResult::default();
    let mut report = ForensicsReport::default();
    flight::campaign_started("forensic", engine.kind(), cfg, profile, cfg.samples);
    if cfg.samples == 0 {
        finish_stats(&mut result, t0, 1, engine.kind());
        flight::campaign_finished(&result);
        return (result, report);
    }
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let golden = &profile.result.output;
    let mut latencies = Vec::new();
    for (i, fault) in sample_faults(profile, cfg).into_iter().enumerate() {
        let run = engine.run(Some(fault));
        result.stats.steps_executed += run.dyn_insts;
        let o = classify(run.stop, &run.output, golden);
        if o == Outcome::Detected {
            latencies.push(detection_latency(run.dyn_insts, fault.dyn_index));
        }
        if fcfg.outcomes.contains(&o) {
            report.matching_total += 1;
            if report.records.len() < fcfg.max_records {
                report
                    .records
                    .push(forensic_replay_on(engine, profile, fault, o, fcfg));
            }
        }
        flight::injection(0, i, fault, o, run.dyn_insts, flight::Booking::Executed);
        result.record(fault, o);
    }
    result.stats.per_worker = vec![WorkerStats {
        injections: result.total(),
        steps_executed: result.stats.steps_executed,
    }];
    result.stats.latency = DetectionLatency::from_samples(latencies);
    finish_stats(&mut result, t0, 1, engine.kind());
    ferrum_trace::counter("campaign.injections", result.total() as u64);
    ferrum_trace::counter("forensics.replays", report.records.len() as u64);
    flight::campaign_finished(&result);
    report.finish();
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::{Global, Module};
    use ferrum_mir::types::Ty;

    fn sum_module() -> Module {
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![1, 2, 3, 4]));
        let mut b = FunctionBuilder::new("main", &[], None);
        let base = b.global(g);
        let mut acc = b.iconst(Ty::I64, 0);
        for i in 0..4 {
            let idx = b.iconst(Ty::I64, i);
            let p = b.gep(base, idx);
            let v = b.load(Ty::I64, p);
            acc = b.add(Ty::I64, acc, v);
        }
        b.print(acc);
        b.ret(None);
        module.functions.push(b.finish());
        module
    }

    fn unprotected_cpu() -> Cpu {
        let asm = ferrum_backend::compile(&sum_module()).unwrap();
        Cpu::load(&asm).unwrap()
    }

    fn protected_cpu() -> Cpu {
        let asm = ferrum_eddi::ferrum::Ferrum::new()
            .protect_module(&sum_module())
            .unwrap();
        Cpu::load(&asm).unwrap()
    }

    fn analyze_all(cpu: &Cpu, samples: usize, seed: u64) -> (CampaignResult, ForensicsReport) {
        let profile = cpu.profile();
        let cfg = CampaignConfig { samples, seed };
        let fcfg = ForensicConfig {
            outcomes: Outcome::ALL.to_vec(),
            max_records: usize::MAX,
            ..ForensicConfig::default()
        };
        run_campaign_forensic(cpu, &profile, cfg, &fcfg)
    }

    #[test]
    fn forensic_campaign_is_outcome_identical_to_serial() {
        for cpu in [unprotected_cpu(), protected_cpu()] {
            let profile = cpu.profile();
            let cfg = CampaignConfig {
                samples: 160,
                seed: 41,
            };
            let serial = run_campaign(&cpu, &profile, cfg);
            let (forensic, report) = run_campaign_forensic(
                &cpu,
                &profile,
                cfg,
                &ForensicConfig::default(),
            );
            assert_eq!(forensic, serial);
            assert_eq!(report.matching_total, serial.sdc);
        }
    }

    #[test]
    fn every_record_locates_the_divergence_at_the_injected_site() {
        let cpu = unprotected_cpu();
        let (result, report) = analyze_all(&cpu, 200, 7);
        assert_eq!(report.analyzed(), result.total());
        for r in &report.records {
            let d = r.divergence.expect("bit flip always diverges");
            assert_eq!(d.dyn_index, r.fault.dyn_index);
            assert_eq!(d.pc, r.site_pc);
        }
        assert_eq!(report.located(), report.analyzed());
        assert_eq!(report.classified(), report.analyzed());
    }

    #[test]
    fn unprotected_sdcs_have_no_checkers_to_blame() {
        let cpu = unprotected_cpu();
        let (_, report) = analyze_all(&cpu, 200, 7);
        for r in report.records.iter().filter(|r| r.outcome == Outcome::Sdc) {
            assert!(r.checkers.is_empty(), "no protection code exists");
            assert_eq!(r.primary_reason, Some(EscapeReason::CheckerNotReached));
            assert!(
                r.taint.time_to_output.is_some(),
                "an SDC's corruption reaches the output"
            );
        }
    }

    #[test]
    fn protected_run_records_checker_escapes_and_detections_quiesce_analysis() {
        let cpu = protected_cpu();
        let (result, report) = analyze_all(&cpu, 300, 13);
        assert!(result.detected > 0, "FERRUM detects faults on this kernel");
        // Detected outcomes: the faulty run stops at the checker; the
        // post-injection checker list is allowed to be empty (the one
        // that fired is not an escape), and benign ones must quiesce
        // or run out clean.
        for r in &report.records {
            assert!(r.divergence.is_some());
            assert!(r.primary_reason.is_some());
            if let Some(kw) = r.kill_window {
                assert!(kw.contains(r.fault.dyn_index));
                assert!(!kw.escaped, "register repair at t=0 always kills");
            }
            if r.outcome == Outcome::Benign {
                assert!(
                    r.taint.time_to_output.is_none(),
                    "benign runs never corrupt output"
                );
            }
        }
        // Taint cumulative counts are monotone within each record.
        for r in &report.records {
            for w in r.taint.samples.windows(2) {
                assert!(w[0].cumulative <= w[1].cumulative);
                assert!(w[0].dyn_index < w[1].dyn_index);
            }
            assert!(r.taint.propagation_depth >= 1, "the flip itself taints");
        }
    }

    #[test]
    fn kill_window_for_an_sdc_ends_before_the_output_escape() {
        let cpu = unprotected_cpu();
        let (_, report) = analyze_all(&cpu, 300, 99);
        let sdc: Vec<&ForensicRecord> = report
            .records
            .iter()
            .filter(|r| r.outcome == Outcome::Sdc)
            .collect();
        assert!(!sdc.is_empty(), "unprotected kernel produces SDCs");
        for r in &sdc {
            let kw = r.kill_window.expect("bisection on by default");
            assert!(!kw.escaped);
            // Once the corrupted value is printed, no register repair
            // can restore the output: the window ends at or before it.
            let out = r.taint.time_to_output.expect("SDC reaches output");
            assert!(kw.end <= out, "window {kw:?} vs output at {out}");
        }
    }

    #[test]
    fn report_histograms_cover_all_records() {
        let cpu = protected_cpu();
        let (_, report) = analyze_all(&cpu, 300, 5);
        let total: usize = report.reason_histogram.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, report.classified());
        assert!(report.depth_summary().is_some());
        let (min, med, max) = report.depth_summary().unwrap();
        assert!(min <= med && med <= max);
    }

    #[test]
    fn zero_sample_forensics_is_empty() {
        let cpu = unprotected_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig { samples: 0, seed: 1 };
        let (result, report) =
            run_campaign_forensic(&cpu, &profile, cfg, &ForensicConfig::default());
        assert_eq!(result.total(), 0);
        assert_eq!(report.analyzed(), 0);
        assert_eq!(report.matching_total, 0);
    }

    #[test]
    fn timeline_sampler_stays_bounded_and_ordered() {
        let mut s = TimelineSampler::new(8);
        for i in 0..1000u64 {
            s.push(TaintSample {
                dyn_index: i,
                gprs: 1,
                simd_lanes: 0,
                flags: false,
                mem_bytes: 0,
                cumulative: i as usize + 1,
            });
        }
        assert!(s.samples.len() <= 8);
        assert!(s.samples.windows(2).all(|w| w[0].dyn_index < w[1].dyn_index));
        // Coverage spans the walk, not just its head.
        assert!(s.samples.last().unwrap().dyn_index >= 500);
    }
}
