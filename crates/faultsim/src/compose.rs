//! FastFlip-style composition and incremental campaigns.
//!
//! The monolithic campaign re-injects the whole program after any
//! edit.  FastFlip (PAPERS.md) observes that per-section injection
//! results *compose*: a section's contribution to whole-program
//! vulnerability is its set of escaping faults mapped through the
//! consuming context, so editing one section only requires
//! re-injecting that section.  This module applies the idea to
//! FERRUM's per-function layer twice over:
//!
//! 1. **Verdict composition** ([`compose`]): the per-function escape
//!    footprints of [`SummaryMap`] are mapped through caller-side
//!    byte liveness at every call site.  An `Unknown` unit whose
//!    footprint is empty (every path converges before leaving the
//!    function), or whose escape is register-only and dead in every
//!    caller, is lifted to whole-program `Masked` — the composed
//!    analogue of the coverage map's intra-function deadness rule.
//!    Sound verdicts are never weakened and `Detected`/`Vulnerable`
//!    are adopted verbatim, so the composed map prunes at least as
//!    much as the local one and never contradicts a dynamic outcome
//!    the local map would not have contradicted.
//!
//! 2. **Incremental campaigns** ([`run_campaign_incremental`]): the
//!    stratified executor ([`run_campaign_stratified`]) samples each
//!    function's sites with a per-function RNG stream keyed by the
//!    function *name* and caches the draws and outcomes per function
//!    content hash ([`function_hash`]).  After an edit, only
//!    functions whose hash (or dynamic-site count) changed are
//!    re-injected; untouched functions replay their cached shard.
//!    The merged [`CampaignResult`] is **record-identical** to a full
//!    stratified re-run of the edited program for the same seed —
//!    the per-function streams make an edit to one function unable
//!    to perturb another function's draws.
//!
//! # Soundness
//!
//! The caller-side lift inherits the same interprocedural convention
//! as the coverage analysis's liveness (callers do not rely on
//! registers across calls beyond the modelled argument/return/
//! callee-saved sets); `tests/compose_crossval.rs` validates both
//! layers dynamically against monolithic campaigns across the whole
//! workload catalog.

use std::collections::BTreeMap;
use std::time::Instant;

use ferrum_asm::analysis::cfg::Cfg;
use ferrum_asm::analysis::coverage::{CoverageMap, StaticVerdict, VerdictCounts};
use ferrum_asm::analysis::liveness::{ByteSet, Liveness};
use ferrum_asm::analysis::summary::{function_hash, SummaryMap};
use ferrum_asm::{AsmProgram, Inst, EXIT_FUNCTION, PRINT_I64};
use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::run::{Cpu, Profile};
use ferrum_rng::Rng64;

use crate::campaign::{
    classify, detection_latency, finish_stats, CampaignConfig, CampaignResult, DetectionLatency,
    Outcome, WorkerStats,
};
use crate::engine::Engine;
use crate::flight::{self, Booking};

/// The program's entry function: its final register state is
/// architecturally unobservable (the harness compares only the output
/// stream), so register-only escapes out of it are always dead.
const ENTRY: &str = "main";

/// Composed (whole-program) verdicts for one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposedSite {
    /// Flat program counter of the instruction.
    pub pc: usize,
    /// Injectable destination width in bits.
    pub bits: u32,
    /// One composed verdict per destination byte, indexed like
    /// `SiteCoverage::verdicts`.
    pub verdicts: Vec<StaticVerdict>,
}

impl ComposedSite {
    /// The composed verdict governing a fault at `raw_bit`, mirroring
    /// `SiteCoverage::verdict_for`.
    pub fn verdict_for(&self, raw_bit: u16) -> StaticVerdict {
        if self.verdicts.len() == 1 {
            return self.verdicts[0];
        }
        let bit = u32::from(raw_bit) % self.bits;
        self.verdicts[(bit / 8) as usize]
    }
}

/// Composition result for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposedFunction {
    /// Function name.
    pub name: String,
    /// Local (intra-function) verdict rollup, from the coverage map.
    pub local: VerdictCounts,
    /// Composed verdict rollup after the caller-side lift.
    pub composed: VerdictCounts,
    /// Units lifted `Unknown` → `Masked` by composition.
    pub lifted: usize,
    /// Call sites of this function found across the program.
    pub call_sites: usize,
    /// Per-site composed verdicts, in program order.
    pub sites: Vec<ComposedSite>,
}

/// The whole-program composed verdict map.
#[derive(Debug, Clone, Default)]
pub struct ComposedMap {
    /// Per-function composition results, in program order.
    pub functions: Vec<ComposedFunction>,
    /// Flat pc → (function index, site index).
    index: BTreeMap<usize, (u32, u32)>,
}

impl ComposedMap {
    /// The composed site at flat pc `pc`, if injectable.
    pub fn site(&self, pc: usize) -> Option<&ComposedSite> {
        let &(fi, si) = self.index.get(&pc)?;
        Some(&self.functions[fi as usize].sites[si as usize])
    }

    /// The composed verdict governing a fault at `(pc, raw_bit)`.
    pub fn verdict_at(&self, pc: usize, raw_bit: u16) -> Option<StaticVerdict> {
        self.site(pc).map(|s| s.verdict_for(raw_bit))
    }

    /// Local verdict rollup over the whole program.
    pub fn local_rollup(&self) -> VerdictCounts {
        let mut c = VerdictCounts::default();
        for f in &self.functions {
            c.merge(&f.local);
        }
        c
    }

    /// Composed verdict rollup over the whole program.
    pub fn composed_rollup(&self) -> VerdictCounts {
        let mut c = VerdictCounts::default();
        for f in &self.functions {
            c.merge(&f.composed);
        }
        c
    }

    /// Total units lifted by composition.
    pub fn lifted(&self) -> usize {
        self.functions.iter().map(|f| f.lifted).sum()
    }
}

/// Byte liveness after each call site of every function, keyed by
/// callee name.  The entry function gets no implicit context: its
/// final register state is unobservable.
fn call_site_contexts(p: &AsmProgram) -> BTreeMap<&str, Vec<ByteSet>> {
    let mut ctx: BTreeMap<&str, Vec<ByteSet>> = BTreeMap::new();
    for f in &p.functions {
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut after: Option<Vec<ByteSet>> = None;
            for (i, ai) in b.insts.iter().enumerate() {
                let Inst::Call { target } = &ai.inst else {
                    continue;
                };
                if target == EXIT_FUNCTION || target == PRINT_I64 {
                    continue;
                }
                let after = after.get_or_insert_with(|| lv.live_after_each(f, bi));
                ctx.entry(target.as_str()).or_default().push(after[i]);
            }
        }
    }
    ctx
}

/// Composes per-function summaries into whole-program verdicts.
///
/// `coverage` and `summary` must both describe `p`.  For every unit:
///
/// * sound and advisory verdicts (`Masked`, `Detected`, `Vulnerable`)
///   are adopted verbatim;
/// * an `Unknown` unit with an **empty escape footprint** and no
///   detecting path is lifted to `Masked`: every path inside the
///   function converges back to the golden state;
/// * an `Unknown` unit with a **register-only** footprint and no
///   detecting path is lifted to `Masked` when the escaping bytes are
///   dead at *every* call site of the function (and implicitly at the
///   entry function's final return, which nothing observes);
/// * everything else stays `Unknown`.
pub fn compose(p: &AsmProgram, coverage: &CoverageMap, summary: &SummaryMap) -> ComposedMap {
    let contexts = call_site_contexts(p);
    let mut map = ComposedMap::default();
    for (fc, fs) in coverage.functions.iter().zip(&summary.functions) {
        debug_assert_eq!(fc.name, fs.name);
        let empty = Vec::new();
        let callers = contexts.get(fs.name.as_str()).unwrap_or(&empty);
        // A register escape out of the entry function is unobservable;
        // out of any other function it must be dead in every caller.
        // (An uncalled non-entry function never executes, so the lift
        // is vacuous there.)
        let dead_everywhere = |gpr: ByteSet| {
            (fs.name != ENTRY || callers.is_empty())
                && callers.iter().all(|&la| la & gpr == 0)
        };
        let mut composed = VerdictCounts::default();
        let mut lifted = 0usize;
        let mut sites = Vec::with_capacity(fs.sites.len());
        for (sc, ss) in fc.sites.iter().zip(&fs.sites) {
            debug_assert_eq!(sc.pc, ss.pc);
            let verdicts: Vec<StaticVerdict> = sc
                .verdicts
                .iter()
                .zip(&ss.units)
                .map(|(&v, u)| {
                    let liftable = v == StaticVerdict::Unknown
                        && !u.may_detect
                        && (u.escape.is_empty()
                            || (u.escape.register_only() && dead_everywhere(u.escape.gpr)));
                    if liftable {
                        lifted += 1;
                        StaticVerdict::Masked
                    } else {
                        v
                    }
                })
                .collect();
            for &v in &verdicts {
                composed.add(v);
            }
            sites.push(ComposedSite {
                pc: sc.pc,
                bits: sc.bits,
                verdicts,
            });
        }
        let fi = map.functions.len() as u32;
        for (si, s) in sites.iter().enumerate() {
            map.index.insert(s.pc, (fi, si as u32));
        }
        map.functions.push(ComposedFunction {
            name: fs.name.clone(),
            local: fc.rollup,
            composed,
            lifted,
            call_sites: callers.len(),
            sites,
        });
    }
    map
}

// ---------------------------------------------------------------------------
// Incremental campaigns
// ---------------------------------------------------------------------------

/// One cached draw of a function's campaign shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDraw {
    /// Index into the function's own dynamic-site list (sites owned by
    /// the function, in dynamic order).
    pub local_site: u32,
    /// Raw bit drawn below the site's width.
    pub raw_bit: u16,
    /// Classified outcome of the injection.
    pub outcome: Outcome,
}

/// The cached campaign shard of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionShard {
    /// Function name (the shard key).
    pub name: String,
    /// Content hash of the function at injection time
    /// ([`function_hash`]).
    pub hash: u64,
    /// Dynamic sites owned by the function at injection time.  An
    /// edit elsewhere that changes this function's dynamic behaviour
    /// (e.g. a changed loop bound in a caller) invalidates the shard
    /// even though the hash still matches.
    pub sites: usize,
    /// The function's sampled faults and their outcomes, in draw
    /// order.
    pub draws: Vec<ShardDraw>,
}

/// Cached per-function campaign shards, the reuse substrate of
/// [`run_campaign_incremental`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignCache {
    /// Seed the shards were drawn with.
    pub seed: u64,
    /// Global sample budget the quotas were derived from.
    pub samples: usize,
    /// Per-function shards, in program order.
    pub shards: Vec<FunctionShard>,
}

/// FNV-1a over a function name: the per-function RNG stream key.
/// Deliberately *not* the content hash — an edit must invalidate the
/// shard, not shift the function's draw sequence.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The dynamic sites of `profile` partitioned per function of `p`, in
/// program order, with each function's content hash.  Sites are
/// attributed through the flat-pc ranges of the loaded image (same
/// function order as the program).
struct Partition {
    /// `(name, hash, indices into profile.sites)` per function.
    functions: Vec<(String, u64, Vec<usize>)>,
}

fn partition_sites(p: &AsmProgram, profile: &Profile) -> Partition {
    // Flat pc ranges, mirroring the image load order.
    let mut ranges = Vec::with_capacity(p.functions.len());
    let mut pc = 0usize;
    for f in &p.functions {
        let start = pc;
        pc += f.blocks.iter().map(|b| b.insts.len()).sum::<usize>();
        ranges.push((f.name.clone(), function_hash(f), start, pc));
    }
    let mut functions: Vec<(String, u64, Vec<usize>)> = ranges
        .iter()
        .map(|(n, h, _, _)| (n.clone(), *h, Vec::new()))
        .collect();
    for (i, s) in profile.sites.iter().enumerate() {
        // Ranges are sorted by start; find the owning function.
        let fi = ranges.partition_point(|&(_, _, start, _)| start <= s.pc) - 1;
        debug_assert!(s.pc < ranges[fi].3);
        functions[fi].2.push(i);
    }
    Partition { functions }
}

/// Per-function sample quota: proportional to the function's share of
/// dynamic sites, at least 1 for any function with sites.  The total
/// therefore tracks (but may slightly exceed) `samples`.
fn quota(samples: usize, function_sites: usize, total_sites: usize) -> usize {
    if function_sites == 0 || samples == 0 {
        return 0;
    }
    (samples * function_sites / total_sites).max(1)
}

/// Draws a function's fault list with its own seeded RNG stream.
fn draw_shard(seed: u64, n: usize, site_indices: &[usize], profile: &Profile) -> Vec<(usize, u16)> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..site_indices.len());
            let site = profile.sites[site_indices[k]];
            (k, rng.gen_below(u64::from(site.bits)) as u16)
        })
        .collect()
}

/// Runs a stratified campaign: each function's dynamic sites are
/// sampled by an independent per-function RNG stream (keyed by the
/// function name), with quotas proportional to site counts.  Returns
/// the result plus the [`CampaignCache`] that
/// [`run_campaign_incremental`] reuses.
///
/// The stratified result is *not* record-identical to [`run_campaign`]
/// (the sampling scheme differs) but is drawn from the same per-site
/// uniform fault model and is itself fully reproducible per seed.
///
/// # Panics
///
/// Panics if the profile has no injectable sites (with `samples > 0`).
///
/// [`run_campaign`]: crate::campaign::run_campaign
pub fn run_campaign_stratified(
    cpu: &Cpu,
    profile: &Profile,
    cfg: CampaignConfig,
    program: &AsmProgram,
) -> (CampaignResult, CampaignCache) {
    run_campaign_stratified_on(Engine::Interpreter(cpu), profile, cfg, program)
}

/// As [`run_campaign_stratified`], on an explicit [`Engine`].
pub fn run_campaign_stratified_on(
    engine: Engine<'_>,
    profile: &Profile,
    cfg: CampaignConfig,
    program: &AsmProgram,
) -> (CampaignResult, CampaignCache) {
    run_incremental_on(engine, profile, cfg, program, None)
}

/// Re-runs a stratified campaign after an edit, replaying cached
/// shards for every function whose content hash and dynamic-site
/// count are unchanged and re-injecting only the rest.  The merged
/// result is record-identical to [`run_campaign_stratified`] on the
/// edited program with the same config; the replayed fraction is
/// reported in [`CampaignStats::reused_sites`] /
/// [`CampaignStats::reuse_rate`].
///
/// A cache drawn with a different seed or sample budget is ignored
/// wholesale (everything re-injects).
///
/// # Panics
///
/// Panics if the profile has no injectable sites (with `samples > 0`).
///
/// [`CampaignStats::reused_sites`]: crate::campaign::CampaignStats::reused_sites
/// [`CampaignStats::reuse_rate`]: crate::campaign::CampaignStats::reuse_rate
pub fn run_campaign_incremental(
    cpu: &Cpu,
    profile: &Profile,
    cfg: CampaignConfig,
    program: &AsmProgram,
    cache: &CampaignCache,
) -> (CampaignResult, CampaignCache) {
    run_campaign_incremental_on(Engine::Interpreter(cpu), profile, cfg, program, cache)
}

/// As [`run_campaign_incremental`], on an explicit [`Engine`].
pub fn run_campaign_incremental_on(
    engine: Engine<'_>,
    profile: &Profile,
    cfg: CampaignConfig,
    program: &AsmProgram,
    cache: &CampaignCache,
) -> (CampaignResult, CampaignCache) {
    run_incremental_on(engine, profile, cfg, program, Some(cache))
}

fn run_incremental_on(
    engine: Engine<'_>,
    profile: &Profile,
    cfg: CampaignConfig,
    program: &AsmProgram,
    cache: Option<&CampaignCache>,
) -> (CampaignResult, CampaignCache) {
    let _span = ferrum_trace::span("campaign.incremental");
    let t0 = Instant::now();
    let mut result = CampaignResult::default();
    let mut new_cache = CampaignCache {
        seed: cfg.seed,
        samples: cfg.samples,
        shards: Vec::new(),
    };
    let executor = if cache.is_some() { "incremental" } else { "stratified" };
    if cfg.samples == 0 {
        flight::campaign_started(executor, engine.kind(), cfg, profile, 0);
        finish_stats(&mut result, t0, 1, engine.kind());
        flight::campaign_finished(&result);
        return (result, new_cache);
    }
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let cache = cache.filter(|c| c.seed == cfg.seed && c.samples == cfg.samples);
    let part = partition_sites(program, profile);
    let total_sites = profile.sites.len();
    // Quotas are proportional-with-floor, so the true total can exceed
    // cfg.samples; the recorder needs the real figure for shard layout
    // and progress denominators.
    let total: usize = part
        .functions
        .iter()
        .map(|(_, _, s)| quota(cfg.samples, s.len(), total_sites))
        .sum();
    flight::campaign_started(executor, engine.kind(), cfg, profile, total);
    let golden = &profile.result.output;
    let mut latencies = Vec::new();
    let mut index = 0usize;
    for (name, hash, site_indices) in &part.functions {
        let n = quota(cfg.samples, site_indices.len(), total_sites);
        let cached = cache.and_then(|c| {
            c.shards.iter().find(|s| {
                &s.name == name
                    && s.hash == *hash
                    && s.sites == site_indices.len()
                    && s.draws.len() == n
            })
        });
        let draws: Vec<ShardDraw> = match cached {
            Some(shard) => {
                // Unchanged function: replay the cached outcomes at
                // the (possibly shifted) new dynamic indices.
                result.stats.reused_sites += shard.draws.len();
                for d in &shard.draws {
                    let dyn_index = profile.sites[site_indices[d.local_site as usize]].dyn_index;
                    let fault = FaultSpec::new(dyn_index, d.raw_bit);
                    flight::injection(0, index, fault, d.outcome, 0, Booking::Reused);
                    index += 1;
                    result.record(fault, d.outcome);
                }
                shard.draws.clone()
            }
            None => draw_shard(cfg.seed ^ name_seed(name), n, site_indices, profile)
                .into_iter()
                .map(|(k, raw_bit)| {
                    let fault =
                        FaultSpec::new(profile.sites[site_indices[k]].dyn_index, raw_bit);
                    let run = engine.run(Some(fault));
                    result.stats.steps_executed += run.dyn_insts;
                    let o = classify(run.stop, &run.output, golden);
                    if o == Outcome::Detected {
                        latencies.push(detection_latency(run.dyn_insts, fault.dyn_index));
                    }
                    flight::injection(0, index, fault, o, run.dyn_insts, Booking::Executed);
                    index += 1;
                    result.record(fault, o);
                    ShardDraw {
                        local_site: k as u32,
                        raw_bit,
                        outcome: o,
                    }
                })
                .collect(),
        };
        flight::function_shard(name, *hash, site_indices.len(), draws.len(), cached.is_some());
        new_cache.shards.push(FunctionShard {
            name: name.clone(),
            hash: *hash,
            sites: site_indices.len(),
            draws,
        });
    }
    // `injections` counts everything the campaign booked — replayed
    // shards included — matching every other executor (and the
    // campaign-schema invariant that per-worker injections sum to
    // `stats.injections`).  The executed-only figure is recoverable as
    // `injections - reused_sites`.
    result.stats.per_worker = vec![WorkerStats {
        injections: result.total(),
        steps_executed: result.stats.steps_executed,
    }];
    result.stats.latency = DetectionLatency::from_samples(latencies);
    finish_stats(&mut result, t0, 1, engine.kind());
    ferrum_trace::counter("campaign.injections", result.total() as u64);
    ferrum_trace::counter("campaign.reused", result.stats.reused_sites as u64);
    flight::campaign_finished(&result);
    (result, new_cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::{Global, Module};
    use ferrum_mir::types::Ty;
    use ferrum_mir::value::Value;

    /// main() calls helper(i) over a table and prints the sum; helper
    /// doubles its argument.  `scratch`'s return value is discarded by
    /// main, so a fault escaping `scratch` through %rax is dead in its
    /// only caller — the canonical caller-side-liftable escape.
    fn workload_module() -> Module {
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![3, 1, 4, 1]));
        let mut h = FunctionBuilder::new("helper", &[Ty::I64], Some(Ty::I64));
        let two = Value::const_int(Ty::I64, 2);
        let d = h.mul(Ty::I64, Value::Arg(0), two);
        h.ret(Some(d));
        module.functions.push(h.finish());
        let mut s = FunctionBuilder::new("scratch", &[Ty::I64], Some(Ty::I64));
        let three = Value::const_int(Ty::I64, 3);
        let t = s.mul(Ty::I64, Value::Arg(0), three);
        s.ret(Some(t));
        module.functions.push(s.finish());
        let mut b = FunctionBuilder::new("main", &[], None);
        let base = b.global(g);
        let mut acc = b.iconst(Ty::I64, 0);
        for i in 0..4 {
            let idx = b.iconst(Ty::I64, i);
            let p = b.gep(base, idx);
            let v = b.load(Ty::I64, p);
            let d = b.call("helper", vec![v], Some(Ty::I64)).unwrap();
            acc = b.add(Ty::I64, acc, d);
        }
        // Void-style call: the result in %rax is never spilled, so the
        // escape out of `scratch` is dead at this (only) call site.
        b.call("scratch", vec![acc], None);
        b.print(acc);
        b.ret(None);
        module.functions.push(b.finish());
        module
    }

    fn compiled() -> (AsmProgram, Cpu) {
        let asm = ferrum_backend::compile(&workload_module()).unwrap();
        let cpu = Cpu::load(&asm).unwrap();
        (asm, cpu)
    }

    fn protected() -> (AsmProgram, Cpu) {
        let asm = ferrum_eddi::ferrum::Ferrum::new()
            .protect_module(&workload_module())
            .unwrap();
        let cpu = Cpu::load(&asm).unwrap();
        (asm, cpu)
    }

    fn cfg(samples: usize, seed: u64) -> CampaignConfig {
        CampaignConfig { samples, seed }
    }

    #[test]
    fn composed_map_never_weakens_local_verdicts() {
        let (asm, _) = protected();
        let coverage = CoverageMap::analyze(&asm);
        let summary = SummaryMap::build(&asm, &coverage);
        let composed = compose(&asm, &coverage, &summary);
        for (cf, lf) in composed.functions.iter().zip(&coverage.functions) {
            for (cs, ls) in cf.sites.iter().zip(&lf.sites) {
                for (&cv, &lv) in cs.verdicts.iter().zip(&ls.verdicts) {
                    if lv != StaticVerdict::Unknown {
                        assert_eq!(cv, lv, "composition must adopt decided verdicts");
                    } else {
                        assert!(
                            cv == StaticVerdict::Unknown || cv == StaticVerdict::Masked,
                            "Unknown may only lift to Masked, got {cv:?}"
                        );
                    }
                }
            }
        }
        assert_eq!(
            composed.local_rollup().total(),
            composed.composed_rollup().total()
        );
    }

    #[test]
    fn composition_lifts_register_escapes_dead_at_callers() {
        // Both helpers leave their result in %rax across a block
        // boundary, so the local analysis says Unknown (its scan stops
        // at the boundary) and the summary records a register-only
        // %rax escape.  `discarded`'s %rax is clobbered by the next
        // call before anything reads it -> lift to Masked; `used`'s
        // %rax feeds the print -> stays Unknown.  main's own %rax
        // escape at its final ret has no caller to observe it -> lift.
        let text = "\
.globl discarded
discarded:
    movq %rdi, %rax
    jmp discarded_end
discarded_end:
    ret
.globl used
used:
    movq %rdi, %rax
    jmp used_end
used_end:
    ret
.globl main
main:
    movq $5, %rdi
    call discarded
    movq $6, %rdi
    call used
    movq %rax, %rdi
    call print_i64
    movq $7, %rax
    jmp main_end
main_end:
    ret
";
        let asm = ferrum_asm::parser::parse_program(text).unwrap();
        let composed = compose(&asm, &CoverageMap::analyze(&asm), &SummaryMap::analyze(&asm));
        let by_name = |n: &str| composed.functions.iter().find(|f| f.name == n).unwrap();

        let discarded = by_name("discarded");
        assert_eq!(discarded.local.unknown, 8, "locally undecidable");
        assert_eq!(discarded.lifted, 8, "dead-at-caller escape lifts");
        assert_eq!(discarded.composed.unknown, 0);

        let used = by_name("used");
        assert_eq!(used.local.unknown, 8);
        assert_eq!(used.lifted, 0, "escape read by the caller must not lift");
        assert_eq!(used.composed.unknown, 8);

        let main = by_name("main");
        assert_eq!(main.lifted, 8, "entry-function register escape lifts");
        assert_eq!(composed.lifted(), 16);
        let whole = composed.composed_rollup();
        let local = composed.local_rollup();
        assert_eq!(whole.masked, local.masked + 16);
    }

    #[test]
    fn composition_lifts_empty_footprint_without_callers() {
        // A tainted SIMD register overwritten in the next block:
        // coverage has no SIMD liveness so it stays Unknown, the
        // summary proves the empty footprint, and the lift needs no
        // caller context at all.
        use ferrum_asm::program::{AsmBlock, AsmFunction, AsmInst};
        use ferrum_asm::reg::{Gpr, Reg, Xmm};
        use ferrum_asm::Operand;
        let mut b0 = AsmBlock::new("entry");
        b0.insts.push(AsmInst::synthetic(Inst::MovqToXmm {
            src: Operand::Reg(Reg::q(Gpr::Rcx)),
            dst: Xmm::new(0),
        }));
        let mut b1 = AsmBlock::new("tail");
        b1.insts.push(AsmInst::synthetic(Inst::MovqToXmm {
            src: Operand::Reg(Reg::q(Gpr::Rdx)),
            dst: Xmm::new(0),
        }));
        b1.insts.push(AsmInst::synthetic(Inst::Ret));
        let mut f = AsmFunction::new("main");
        f.blocks.push(b0);
        f.blocks.push(b1);
        let mut p = AsmProgram::new();
        p.functions.push(f);
        let composed = compose(&p, &CoverageMap::analyze(&p), &SummaryMap::analyze(&p));
        let site = composed.site(0).expect("xmm site");
        assert!(composed.lifted() >= 16, "all 16 lane bytes lift");
        assert!(site.verdicts.iter().all(|&v| v == StaticVerdict::Masked));
    }

    #[test]
    fn helper_is_called_and_contexts_found() {
        let (asm, _) = compiled();
        let ctx = call_site_contexts(&asm);
        let helper = ctx.get("helper").expect("helper has call sites");
        assert_eq!(helper.len(), 4, "four call sites in main");
    }

    #[test]
    fn stratified_campaign_is_reproducible_and_covers_both_functions() {
        let (asm, cpu) = compiled();
        let profile = cpu.profile();
        let (a, cache_a) = run_campaign_stratified(&cpu, &profile, cfg(200, 11), &asm);
        let (b, cache_b) = run_campaign_stratified(&cpu, &profile, cfg(200, 11), &asm);
        assert_eq!(a, b);
        assert_eq!(cache_a, cache_b);
        // Quota floors undershoot by at most one sample per function.
        let slack = cache_a.shards.len();
        assert!(a.total() + slack >= 200 && a.total() <= 200 + slack);
        // Every function with sites drew samples.
        assert!(cache_a.shards.iter().all(|s| s.sites == 0 || !s.draws.is_empty()));
        assert_eq!(cache_a.shards.len(), 3);
        assert!(a.sdc > 0, "unprotected program shows SDCs");
    }

    #[test]
    fn incremental_with_unchanged_program_reuses_everything() {
        let (asm, cpu) = compiled();
        let profile = cpu.profile();
        let (full, cache) = run_campaign_stratified(&cpu, &profile, cfg(150, 3), &asm);
        let (inc, cache2) = run_campaign_incremental(&cpu, &profile, cfg(150, 3), &asm, &cache);
        assert_eq!(full, inc, "replayed result must be record-identical");
        assert_eq!(cache, cache2);
        assert_eq!(inc.stats.reused_sites, inc.total());
        assert!((inc.stats.reuse_rate() - 1.0).abs() < 1e-12);
        assert_eq!(inc.stats.steps_executed, 0, "nothing executed");
    }

    #[test]
    fn incremental_after_single_function_edit_reinjects_only_that_function() {
        let (asm, cpu) = compiled();
        let profile = cpu.profile();
        let (_, cache) = run_campaign_stratified(&cpu, &profile, cfg(150, 9), &asm);

        // Edit `helper` only: append a no-op-equivalent instruction
        // (a `nop` has no injectable destination and no architectural
        // effect, so `main`'s dynamic behaviour and site census are
        // unchanged while helper's hash changes).
        let mut edited = asm.clone();
        let hi = edited
            .functions
            .iter()
            .position(|f| f.name == "helper")
            .unwrap();
        edited.functions[hi].blocks[0]
            .insts
            .insert(0, ferrum_asm::AsmInst::synthetic(Inst::Nop));
        let cpu2 = Cpu::load(&edited).unwrap();
        let profile2 = cpu2.profile();

        let (full, _) = run_campaign_stratified(&cpu2, &profile2, cfg(150, 9), &edited);
        let (inc, cache2) =
            run_campaign_incremental(&cpu2, &profile2, cfg(150, 9), &edited, &cache);
        assert_eq!(full, inc, "incremental ≡ full stratified re-run");

        // Only helper re-injected; every other shard replayed.
        let replayed: usize = cache
            .shards
            .iter()
            .filter(|s| s.name != "helper")
            .map(|s| s.draws.len())
            .sum();
        assert_eq!(inc.stats.reused_sites, replayed);
        assert!(inc.stats.reused_sites > 0);
        assert!(inc.stats.reuse_rate() > 0.0 && inc.stats.reuse_rate() < 1.0);
        let helper_shard = cache2.shards.iter().find(|s| s.name == "helper").unwrap();
        assert_ne!(
            helper_shard.hash,
            cache.shards.iter().find(|s| s.name == "helper").unwrap().hash
        );
    }

    #[test]
    fn cache_with_wrong_seed_is_ignored() {
        let (asm, cpu) = compiled();
        let profile = cpu.profile();
        let (_, cache) = run_campaign_stratified(&cpu, &profile, cfg(100, 1), &asm);
        let (inc, _) = run_campaign_incremental(&cpu, &profile, cfg(100, 2), &asm, &cache);
        assert_eq!(inc.stats.reused_sites, 0, "seed mismatch voids the cache");
        let (full, _) = run_campaign_stratified(&cpu, &profile, cfg(100, 2), &asm);
        assert_eq!(full, inc);
    }

    #[test]
    fn composed_verdicts_sound_against_exhaustive_outcomes() {
        // Dynamic cross-check on the protected two-function program:
        // every sampled fault outcome must agree with the composed
        // verdict (Masked → Benign, Detected → Detected).
        let (asm, cpu) = protected();
        let profile = cpu.profile();
        let composed = compose(&asm, &CoverageMap::analyze(&asm), &SummaryMap::analyze(&asm));
        let res = crate::campaign::run_campaign(&cpu, &profile, cfg(400, 77));
        for &(fault, outcome) in &res.records {
            let i = profile
                .sites
                .binary_search_by_key(&fault.dyn_index, |s| s.dyn_index)
                .unwrap();
            let Some(v) = composed.verdict_at(profile.sites[i].pc, fault.raw_bit) else {
                continue;
            };
            match v {
                StaticVerdict::Masked => assert_eq!(
                    outcome,
                    Outcome::Benign,
                    "composed Masked contradicted at pc {} bit {}",
                    profile.sites[i].pc,
                    fault.raw_bit
                ),
                StaticVerdict::Detected => assert_eq!(
                    outcome,
                    Outcome::Detected,
                    "composed Detected contradicted at pc {} bit {}",
                    profile.sites[i].pc,
                    fault.raw_bit
                ),
                _ => {}
            }
        }
    }
}
