//! Execution-engine selection for campaign executors.
//!
//! Every campaign executor is parameterized over an [`Engine`]: either
//! the reference interpreter ([`Cpu`]) or the decode-once flattened
//! engine ([`DecodedCpu`], `ferrum_cpu::decoded`).  Both expose the
//! same surface — `run`, `run_multi`, `resume`, `profile`, and a
//! steppable machine with interchangeable [`Snapshot`]s — and are
//! byte-identical per seed, so an executor's outcome counts, records,
//! and latency distribution never depend on the engine; only
//! throughput does.  `EngineKind` is the serializable selector CLI
//! flags and campaign reports carry.

use ferrum_cpu::decoded::{DecodedCpu, DecodedMachine};
use ferrum_cpu::exec::{State, StepEvent};
use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::image::Image;
use ferrum_cpu::outcome::{RunResult, StopReason};
use ferrum_cpu::run::{Cpu, Profile};
use ferrum_cpu::snapshot::{Machine, Snapshot};

use crate::flight;

/// Which execution engine a campaign runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The reference interpreter (`ferrum_cpu::exec::step`).
    #[default]
    Interpreter,
    /// The decode-once flattened engine (`ferrum_cpu::decoded`).
    Decoded,
}

impl EngineKind {
    /// All engine kinds.
    pub const ALL: [EngineKind; 2] = [EngineKind::Interpreter, EngineKind::Decoded];

    /// Label for reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Interpreter => "interpreter",
            EngineKind::Decoded => "decoded",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "interpreter" => Some(EngineKind::Interpreter),
            "decoded" => Some(EngineKind::Decoded),
            _ => None,
        }
    }

    /// Binds this kind to a loaded `cpu` and runs `f` with the
    /// resulting [`Engine`].  The scoped shape exists because the
    /// decoded program borrows from a [`DecodedCpu`] that has to live
    /// somewhere — here, on this frame — while `Engine` itself stays a
    /// cheap `Copy` borrow.
    pub fn with_cpu<R>(self, cpu: &Cpu, f: impl FnOnce(Engine<'_>) -> R) -> R {
        match self {
            EngineKind::Interpreter => f(Engine::Interpreter(cpu)),
            EngineKind::Decoded => {
                let clock = flight::StageClock::start();
                let decoded = DecodedCpu::new(cpu);
                clock.stop(0, flight::Stage::Decode);
                f(Engine::Decoded(&decoded))
            }
        }
    }
}

/// A borrowed execution engine: the interpreter or the decoded engine
/// over the same loaded image.
#[derive(Debug, Clone, Copy)]
pub enum Engine<'a> {
    /// Reference interpreter.
    Interpreter(&'a Cpu),
    /// Decode-once flattened engine.
    Decoded(&'a DecodedCpu),
}

impl<'a> Engine<'a> {
    /// Which engine this is.
    pub fn kind(&self) -> EngineKind {
        match self {
            Engine::Interpreter(_) => EngineKind::Interpreter,
            Engine::Decoded(_) => EngineKind::Decoded,
        }
    }

    /// The loaded image both engines execute.
    pub fn image(&self) -> &'a Image {
        match self {
            Engine::Interpreter(c) => c.image(),
            Engine::Decoded(d) => d.image(),
        }
    }

    /// The active step limit.
    pub fn step_limit(&self) -> u64 {
        match self {
            Engine::Interpreter(c) => c.step_limit(),
            Engine::Decoded(d) => d.step_limit(),
        }
    }

    /// Runs the program, optionally injecting one fault.
    pub fn run(&self, fault: Option<FaultSpec>) -> RunResult {
        match self {
            Engine::Interpreter(c) => c.run(fault),
            Engine::Decoded(d) => d.run(fault),
        }
    }

    /// Runs the program injecting every fault in `faults`.
    pub fn run_multi(&self, faults: &[FaultSpec]) -> RunResult {
        match self {
            Engine::Interpreter(c) => c.run_multi(faults),
            Engine::Decoded(d) => d.run_multi(faults),
        }
    }

    /// Resumes from a snapshot (snapshots interchange between engines).
    pub fn resume(&self, snap: &Snapshot, faults: &[FaultSpec]) -> RunResult {
        match self {
            Engine::Interpreter(c) => c.resume(snap, faults),
            Engine::Decoded(d) => d.resume(snap, faults),
        }
    }

    /// [`Engine::resume`] with the golden-trace convergence
    /// short-circuit where the engine has one: the decoded engine
    /// compares the post-fault run against the fault-free
    /// `checkpoints` and stitches the remainder from `golden` on an
    /// exact state match; the interpreter — the measured baseline —
    /// ignores the golden data and resumes plainly.  Outcomes are
    /// byte-identical either way: the short-circuit fires only on full
    /// architectural-state equality.
    pub fn resume_converging(
        &self,
        snap: &Snapshot,
        faults: &[FaultSpec],
        checkpoints: &[Snapshot],
        golden: &RunResult,
    ) -> RunResult {
        match self {
            Engine::Interpreter(c) => c.resume(snap, faults),
            Engine::Decoded(d) => d.resume_converging(snap, faults, checkpoints, golden),
        }
    }

    /// [`Engine::run_multi`] with the convergence short-circuit of
    /// [`Engine::resume_converging`].
    pub fn run_converging(
        &self,
        faults: &[FaultSpec],
        checkpoints: &[Snapshot],
        golden: &RunResult,
    ) -> RunResult {
        match self {
            Engine::Interpreter(c) => c.run_multi(faults),
            Engine::Decoded(d) => d.run_converging(faults, checkpoints, golden),
        }
    }

    /// Profiles the fault-free run (byte-identical across engines).
    pub fn profile(&self) -> Profile {
        let clock = flight::StageClock::start();
        let p = match self {
            Engine::Interpreter(c) => c.profile(),
            Engine::Decoded(d) => d.profile(),
        };
        clock.stop(0, flight::Stage::GoldenRun);
        p
    }

    /// A steppable machine at the program entry point.
    pub fn machine(&self) -> EngineMachine<'a> {
        match self {
            Engine::Interpreter(c) => EngineMachine::Interpreter(Machine::new(c)),
            Engine::Decoded(d) => EngineMachine::Decoded(DecodedMachine::new(d)),
        }
    }
}

/// A steppable machine over either engine — the forensics replay and
/// snapshot-placement walks run on this so they work identically on
/// interpreter and decoded state.
#[derive(Debug, Clone)]
pub enum EngineMachine<'a> {
    /// Interpreter machine.
    Interpreter(Machine<'a>),
    /// Decoded machine.
    Decoded(DecodedMachine<'a>),
}

impl EngineMachine<'_> {
    /// Dynamic instructions executed so far.
    pub fn dyn_insts(&self) -> u64 {
        match self {
            EngineMachine::Interpreter(m) => m.dyn_insts(),
            EngineMachine::Decoded(m) => m.dyn_insts(),
        }
    }

    /// Cycles accumulated so far.
    pub fn cycles(&self) -> u64 {
        match self {
            EngineMachine::Interpreter(m) => m.cycles(),
            EngineMachine::Decoded(m) => m.cycles(),
        }
    }

    /// Why the run stopped, if it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            EngineMachine::Interpreter(m) => m.stop_reason(),
            EngineMachine::Decoded(m) => m.stop_reason(),
        }
    }

    /// The architectural state at the current instruction boundary.
    pub fn state(&self) -> &State {
        match self {
            EngineMachine::Interpreter(m) => m.state(),
            EngineMachine::Decoded(m) => m.state(),
        }
    }

    /// Mutable architectural state (forensic state surgery).
    pub fn state_mut(&mut self) -> &mut State {
        match self {
            EngineMachine::Interpreter(m) => m.state_mut(),
            EngineMachine::Decoded(m) => m.state_mut(),
        }
    }

    /// Captures a snapshot usable by either engine.
    pub fn snapshot(&self) -> Snapshot {
        match self {
            EngineMachine::Interpreter(m) => m.snapshot(),
            EngineMachine::Decoded(m) => m.snapshot(),
        }
    }

    /// Reinstates a snapshot, clearing any stop condition.
    pub fn restore(&mut self, snap: &Snapshot) {
        match self {
            EngineMachine::Interpreter(m) => m.restore(snap),
            EngineMachine::Decoded(m) => m.restore(snap),
        }
    }

    /// Executes one instruction with the fault hook armed.
    pub fn step_faulted(&mut self, faults: &[FaultSpec]) -> StepEvent {
        match self {
            EngineMachine::Interpreter(m) => m.step_faulted(faults),
            EngineMachine::Decoded(m) => m.step_faulted(faults),
        }
    }

    /// Executes one fault-free instruction.
    pub fn step(&mut self) -> StepEvent {
        self.step_faulted(&[])
    }

    /// Advances fault-free until `boundary` dynamic instructions have
    /// executed, returning the stop reason if the program stops first.
    /// The decoded engine runs its tight dispatch loop; the
    /// interpreter — the measured baseline — steps one instruction at
    /// a time, exactly as a step loop would.
    pub fn advance_to(&mut self, boundary: u64) -> Option<StopReason> {
        match self {
            EngineMachine::Interpreter(m) => {
                while m.dyn_insts() < boundary {
                    if let StepEvent::Stop(s) = m.step_faulted(&[]) {
                        return Some(s);
                    }
                }
                None
            }
            EngineMachine::Decoded(m) => m.advance_to(boundary),
        }
    }

    /// Runs until the program stops, injecting `faults` along the way.
    pub fn run_to_completion(&mut self, faults: &[FaultSpec]) -> RunResult {
        match self {
            EngineMachine::Interpreter(m) => m.run_to_completion(faults),
            EngineMachine::Decoded(m) => m.run_to_completion(faults),
        }
    }

    /// [`EngineMachine::run_to_completion`] with the golden-trace
    /// convergence short-circuit where the engine has one (see
    /// [`Engine::resume_converging`]); the interpreter — the measured
    /// baseline — ignores the golden data and runs plainly.
    pub fn run_converging(
        &mut self,
        faults: &[FaultSpec],
        checkpoints: &[Snapshot],
        golden: &RunResult,
    ) -> RunResult {
        match self {
            EngineMachine::Interpreter(m) => m.run_to_completion(faults),
            EngineMachine::Decoded(m) => m.run_converging(faults, checkpoints, golden),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::Module;
    use ferrum_mir::types::Ty;

    fn cpu() -> Cpu {
        let mut b = FunctionBuilder::new("main", &[], None);
        let v = b.iconst(Ty::I64, 20);
        let w = b.iconst(Ty::I64, 22);
        let s = b.add(Ty::I64, v, w);
        b.print(s);
        b.ret(None);
        let module = Module::from_functions(vec![b.finish()]);
        let asm = ferrum_backend::compile(&module).unwrap();
        Cpu::load(&asm).unwrap()
    }

    #[test]
    fn engines_agree_on_every_surface() {
        let c = cpu();
        let d = DecodedCpu::new(&c);
        let (ei, ed) = (Engine::Interpreter(&c), Engine::Decoded(&d));
        assert_eq!(ei.kind(), EngineKind::Interpreter);
        assert_eq!(ed.kind(), EngineKind::Decoded);
        assert_eq!(ei.step_limit(), ed.step_limit());
        assert_eq!(ei.run(None), ed.run(None));
        assert_eq!(ei.profile().sites, ed.profile().sites);
        let mut mi = ei.machine();
        let mut md = ed.machine();
        mi.step();
        md.step();
        assert_eq!(mi.dyn_insts(), md.dyn_insts());
        assert_eq!(mi.state().pc, md.state().pc);
        // Cross-engine snapshot interchange.
        md.restore(&mi.snapshot());
        assert_eq!(md.run_to_completion(&[]), {
            let mut m = ei.machine();
            m.restore(&mi.snapshot());
            m.run_to_completion(&[])
        });
    }

    #[test]
    fn with_cpu_binds_the_matching_engine() {
        let c = cpu();
        let reference = c.run(None);
        for kind in EngineKind::ALL {
            let (bound_kind, result) = kind.with_cpu(&c, |e| (e.kind(), e.run(None)));
            assert_eq!(bound_kind, kind);
            assert_eq!(result, reference);
        }
    }

    #[test]
    fn kind_labels_round_trip() {
        for k in EngineKind::ALL {
            assert_eq!(EngineKind::parse(k.label()), Some(k));
        }
        assert_eq!(EngineKind::parse("jit"), None);
        assert_eq!(EngineKind::default(), EngineKind::Interpreter);
    }
}
