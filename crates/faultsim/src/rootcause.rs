//! Root-cause attribution of silent data corruptions (paper §IV-B1).
//!
//! The paper identifies two main reasons IR-level EDDI loses coverage at
//! assembly level: backend-generated fault sites (store staging, branch
//! materialisation, call glue) and IR-level protections that become
//! ineffective after lowering.  Because every instruction carries a
//! provenance tag, we can attribute each SDC-producing fault directly.

use std::collections::BTreeMap;

use ferrum_asm::provenance::{GlueKind, Provenance};
use ferrum_cpu::run::{Cpu, Profile};

use crate::campaign::{CampaignResult, Outcome};

/// SDC counts by the provenance class of the faulted instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RootCauseReport {
    /// SDCs whose fault hit an instruction lowered from an IR
    /// instruction.
    pub from_ir: usize,
    /// SDCs in backend glue, by kind.
    pub glue: BTreeMap<&'static str, usize>,
    /// SDCs in protection-inserted code (must stay zero for sound
    /// techniques).
    pub protection: usize,
    /// SDCs in synthetic/hand-written code.
    pub synthetic: usize,
    /// Total SDCs attributed.
    pub total_sdc: usize,
}

impl RootCauseReport {
    /// Total SDCs attributed to backend glue of any kind.
    pub fn glue_total(&self) -> usize {
        self.glue.values().sum()
    }
}

/// Attributes every SDC in `result` to the provenance of the faulted
/// dynamic instruction.
///
/// The attribution replays the site lookup from the profile: each
/// record's `dyn_index` identifies the faulted instruction, whose
/// provenance was captured during profiling.
pub fn attribute_sdcs(_cpu: &Cpu, profile: &Profile, result: &CampaignResult) -> RootCauseReport {
    let mut by_index: BTreeMap<u64, Provenance> = BTreeMap::new();
    for s in &profile.sites {
        by_index.insert(s.dyn_index, s.prov);
    }
    let mut report = RootCauseReport::default();
    for (fault, outcome) in &result.records {
        if *outcome != Outcome::Sdc {
            continue;
        }
        report.total_sdc += 1;
        match by_index.get(&fault.dyn_index) {
            Some(Provenance::FromIr(_)) => report.from_ir += 1,
            Some(Provenance::Glue(k)) => {
                *report.glue.entry(k.label()).or_insert(0) += 1;
            }
            Some(Provenance::Protection(..)) => report.protection += 1,
            Some(Provenance::Synthetic) | None => report.synthetic += 1,
        }
    }
    report
}

/// SDC rates split by destination kind — quantifies the paper's Fig. 9
/// motivation: flag-register faults after backend-materialised
/// comparisons are a real silent-corruption source.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KindBreakdown {
    /// Faults into RFLAGS destinations.
    pub flag_faults: usize,
    /// ... of which were SDCs.
    pub flag_sdcs: usize,
    /// Faults into register destinations.
    pub reg_faults: usize,
    /// ... of which were SDCs.
    pub reg_sdcs: usize,
}

impl KindBreakdown {
    /// SDC probability of flag-destination faults.
    pub fn flag_sdc_rate(&self) -> f64 {
        if self.flag_faults == 0 {
            0.0
        } else {
            self.flag_sdcs as f64 / self.flag_faults as f64
        }
    }

    /// SDC probability of register-destination faults.
    pub fn reg_sdc_rate(&self) -> f64 {
        if self.reg_faults == 0 {
            0.0
        } else {
            self.reg_sdcs as f64 / self.reg_faults as f64
        }
    }
}

/// Splits campaign outcomes by whether the fault targeted RFLAGS.
pub fn breakdown_by_kind(profile: &Profile, result: &CampaignResult) -> KindBreakdown {
    let mut by_index: BTreeMap<u64, bool> = BTreeMap::new();
    for s in &profile.sites {
        by_index.insert(s.dyn_index, s.is_flags);
    }
    let mut out = KindBreakdown::default();
    for (fault, outcome) in &result.records {
        let is_flags = by_index.get(&fault.dyn_index).copied().unwrap_or(false);
        let sdc = *outcome == Outcome::Sdc;
        if is_flags {
            out.flag_faults += 1;
            out.flag_sdcs += usize::from(sdc);
        } else {
            out.reg_faults += 1;
            out.reg_sdcs += usize::from(sdc);
        }
    }
    out
}

/// Renders the report as aligned text for the `repro_rootcause` harness.
pub fn render(report: &RootCauseReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<24}{:>8}\n", "fault provenance", "SDCs"));
    out.push_str(&format!("{:<24}{:>8}\n", "lowered-from-IR", report.from_ir));
    for kind in GlueKind::ALL {
        let n = report.glue.get(kind.label()).copied().unwrap_or(0);
        out.push_str(&format!(
            "{:<24}{:>8}\n",
            format!("glue:{}", kind.label()),
            n
        ));
    }
    out.push_str(&format!(
        "{:<24}{:>8}\n",
        "protection-code", report.protection
    ));
    out.push_str(&format!("{:<24}{:>8}\n", "synthetic", report.synthetic));
    out.push_str(&format!("{:<24}{:>8}\n", "total", report.total_sdc));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::{Global, Module};
    use ferrum_mir::types::Ty;

    fn store_heavy_module() -> Module {
        // Stores dominated by staging glue: the classic IR-EDDI residue.
        let mut module = Module::new();
        let g = module.add_global(Global::zeroed("out", 8));
        let mut b = FunctionBuilder::new("main", &[], None);
        let base = b.global(g);
        for i in 0..8 {
            let idx = b.iconst(Ty::I64, i);
            let p = b.gep(base, idx);
            let c = b.iconst(Ty::I64, i * 3 + 1);
            let v = b.mul(Ty::I64, c, c);
            b.store(Ty::I64, v, p);
        }
        let mut acc = b.iconst(Ty::I64, 0);
        for i in 0..8 {
            let idx = b.iconst(Ty::I64, i);
            let p = b.gep(base, idx);
            let v = b.load(Ty::I64, p);
            acc = b.add(Ty::I64, acc, v);
        }
        b.print(acc);
        b.ret(None);
        module.functions.push(b.finish());
        module
    }

    #[test]
    fn ir_eddi_sdcs_are_dominated_by_glue() {
        let m = store_heavy_module();
        let prot = ferrum_eddi::ir_eddi::IrEddi::new().protect(&m);
        let asm = ferrum_backend::compile(&prot).unwrap();
        let cpu = Cpu::load(&asm).unwrap();
        let profile = cpu.profile();
        let res = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: 1500,
                seed: 11,
            },
        );
        let report = attribute_sdcs(&cpu, &profile, &res);
        assert_eq!(report.total_sdc, res.sdc);
        assert!(report.total_sdc > 0, "IR-EDDI must leak on store staging");
        assert!(
            report.glue_total() > report.from_ir,
            "residual SDCs should concentrate in backend glue: {report:?}"
        );
        assert_eq!(report.protection, 0);
    }

    #[test]
    fn flag_faults_cause_sdcs_in_raw_branchy_programs() {
        use ferrum_mir::inst::ICmpPred;
        // A branch whose direction decides the output: flag faults flip
        // it silently (the paper's Fig. 9 scenario).
        let mut b = ferrum_mir::builder::FunctionBuilder::new("main", &[], None);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let x = b.iconst(Ty::I64, 3);
        let y = b.iconst(Ty::I64, 5);
        let c = b.icmp(ICmpPred::Slt, Ty::I64, x, y);
        b.br(c, t, e);
        b.switch_to(t);
        let one = b.iconst(Ty::I64, 111);
        b.print(one);
        b.ret(None);
        b.switch_to(e);
        let two = b.iconst(Ty::I64, 222);
        b.print(two);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        let asm = ferrum_backend::compile(&m).unwrap();
        let cpu = Cpu::load(&asm).unwrap();
        let profile = cpu.profile();
        let res = crate::campaign::exhaustive_campaign(&cpu, &profile, 4);
        let kinds = breakdown_by_kind(&profile, &res);
        assert!(kinds.flag_faults > 0, "cmp/test sites must exist");
        assert!(
            kinds.flag_sdc_rate() > 0.0,
            "wrong-direction branches must corrupt silently: {kinds:?}"
        );
    }

    #[test]
    fn rendered_report_lists_all_kinds() {
        let report = RootCauseReport {
            from_ir: 2,
            glue: [("store-staging", 5)].into_iter().collect(),
            protection: 0,
            synthetic: 0,
            total_sdc: 7,
        };
        let text = render(&report);
        assert!(text.contains("store-staging"));
        assert!(text.contains("branch-materialize"));
        assert!(text.contains("total"));
        assert!(text.lines().count() >= 10);
    }
}
