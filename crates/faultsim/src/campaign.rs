//! Sampled and exhaustive fault-injection campaigns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::outcome::StopReason;
use ferrum_cpu::run::{Cpu, Profile};

/// Classified result of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Outcome {
    /// Completed with wrong output: silent data corruption.
    Sdc,
    /// A checker fired.
    Detected,
    /// Hardware-style exception.
    Crash,
    /// Step budget exhausted.
    Timeout,
    /// Completed with the correct output.
    Benign,
}

impl Outcome {
    /// All outcome classes.
    pub const ALL: [Outcome; 5] = [
        Outcome::Sdc,
        Outcome::Detected,
        Outcome::Crash,
        Outcome::Timeout,
        Outcome::Benign,
    ];

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Sdc => "SDC",
            Outcome::Detected => "detected",
            Outcome::Crash => "crash",
            Outcome::Timeout => "timeout",
            Outcome::Benign => "benign",
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of sampled faults (the paper uses 1000 per benchmark).
    pub samples: usize,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            samples: 1000,
            seed: 0xFE44_0001,
        }
    }
}

/// Aggregated campaign outcome counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CampaignResult {
    /// Silent data corruptions.
    pub sdc: usize,
    /// Detections.
    pub detected: usize,
    /// Crashes.
    pub crash: usize,
    /// Timeouts.
    pub timeout: usize,
    /// Benign completions.
    pub benign: usize,
    /// Every injected fault with its outcome (for root-cause analysis).
    pub records: Vec<(FaultSpec, Outcome)>,
}

impl CampaignResult {
    /// Total injections.
    pub fn total(&self) -> usize {
        self.sdc + self.detected + self.crash + self.timeout + self.benign
    }

    /// SDC probability over the campaign.
    pub fn sdc_prob(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.sdc as f64 / self.total() as f64
        }
    }

    fn record(&mut self, f: FaultSpec, o: Outcome) {
        match o {
            Outcome::Sdc => self.sdc += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::Crash => self.crash += 1,
            Outcome::Timeout => self.timeout += 1,
            Outcome::Benign => self.benign += 1,
        }
        self.records.push((f, o));
    }
}

/// Classifies one faulted run against the golden output.
pub fn classify(stop: StopReason, output: &[i64], golden: &[i64]) -> Outcome {
    match stop {
        StopReason::Detected => Outcome::Detected,
        StopReason::Crash(_) => Outcome::Crash,
        StopReason::Timeout => Outcome::Timeout,
        StopReason::MainReturned => {
            if output == golden {
                Outcome::Benign
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// Runs a sampled campaign: `cfg.samples` single-bit faults at sites
/// drawn uniformly from `profile.sites`.
///
/// # Panics
///
/// Panics if the profile has no injectable sites.
pub fn run_campaign(cpu: &Cpu, profile: &Profile, cfg: CampaignConfig) -> CampaignResult {
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let golden = &profile.result.output;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut result = CampaignResult::default();
    for _ in 0..cfg.samples {
        let site = profile.sites[rng.gen_range(0..profile.sites.len())];
        let fault = FaultSpec::new(site.dyn_index, rng.gen());
        let run = cpu.run(Some(fault));
        result.record(fault, classify(run.stop, &run.output, golden));
    }
    result
}

/// As [`run_campaign`], but fans the injections out over `threads`
/// worker threads.  Produces byte-identical results to the serial
/// version: the fault list is pre-sampled with the seeded RNG, split
/// into chunks, and outcomes are stitched back in order.
pub fn run_campaign_parallel(
    cpu: &Cpu,
    profile: &Profile,
    cfg: CampaignConfig,
    threads: usize,
) -> CampaignResult {
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let golden = &profile.result.output;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let faults: Vec<FaultSpec> = (0..cfg.samples)
        .map(|_| {
            let site = profile.sites[rng.gen_range(0..profile.sites.len())];
            FaultSpec::new(site.dyn_index, rng.gen())
        })
        .collect();
    let threads = threads.max(1);
    let chunk = faults.len().div_ceil(threads);
    let mut outcomes: Vec<Option<Outcome>> = vec![None; faults.len()];
    std::thread::scope(|scope| {
        for (slot_chunk, fault_chunk) in outcomes.chunks_mut(chunk).zip(faults.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, fault) in slot_chunk.iter_mut().zip(fault_chunk) {
                    let run = cpu.run(Some(*fault));
                    *slot = Some(classify(run.stop, &run.output, golden));
                }
            });
        }
    });
    let mut result = CampaignResult::default();
    for (fault, outcome) in faults.into_iter().zip(outcomes) {
        result.record(fault, outcome.expect("all chunks processed"));
    }
    result
}

/// Runs a **double-fault** campaign: two independent single-bit faults
/// per execution, at two distinct sampled sites.  Single-fault coverage
/// guarantees do not carry over — duplication-based detection can in
/// principle be defeated when both a value and its shadow are corrupted
/// consistently — which is exactly why the paper defers multi-bit
/// faults to future work (§II-A).  `records` stores the first fault of
/// each pair.
pub fn run_double_campaign(cpu: &Cpu, profile: &Profile, cfg: CampaignConfig) -> CampaignResult {
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let golden = &profile.result.output;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut result = CampaignResult::default();
    for _ in 0..cfg.samples {
        let a = profile.sites[rng.gen_range(0..profile.sites.len())];
        let b = profile.sites[rng.gen_range(0..profile.sites.len())];
        let fa = FaultSpec::new(a.dyn_index, rng.gen());
        let fb = FaultSpec::new(b.dyn_index, rng.gen());
        let run = cpu.run_multi(&[fa, fb]);
        result.record(fa, classify(run.stop, &run.output, golden));
    }
    result
}

/// Injects into *every* site with `bits_per_site` evenly spread bit
/// positions — the exhaustive sweep used to prove coverage claims on
/// small kernels.
pub fn exhaustive_campaign(cpu: &Cpu, profile: &Profile, bits_per_site: u16) -> CampaignResult {
    let golden = &profile.result.output;
    let mut result = CampaignResult::default();
    for site in &profile.sites {
        for k in 0..bits_per_site {
            // Spread raw bits across the largest width (256); the CPU
            // reduces modulo the actual destination width.
            let raw = k.wrapping_mul(257) % 256;
            let fault = FaultSpec::new(site.dyn_index, raw);
            let run = cpu.run(Some(fault));
            result.record(fault, classify(run.stop, &run.output, golden));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::{Global, Module};
    use ferrum_mir::types::Ty;

    fn sum_cpu() -> Cpu {
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![1, 2, 3, 4]));
        let mut b = FunctionBuilder::new("main", &[], None);
        let base = b.global(g);
        let mut acc = b.iconst(Ty::I64, 0);
        for i in 0..4 {
            let idx = b.iconst(Ty::I64, i);
            let p = b.gep(base, idx);
            let v = b.load(Ty::I64, p);
            acc = b.add(Ty::I64, acc, v);
        }
        b.print(acc);
        b.ret(None);
        module.functions.push(b.finish());
        let asm = ferrum_backend::compile(&module).unwrap();
        Cpu::load(&asm).unwrap()
    }

    #[test]
    fn classification_rules() {
        use ferrum_cpu::outcome::CrashKind;
        assert_eq!(classify(StopReason::Detected, &[], &[]), Outcome::Detected);
        assert_eq!(
            classify(StopReason::Crash(CrashKind::DivideError), &[], &[]),
            Outcome::Crash
        );
        assert_eq!(classify(StopReason::Timeout, &[], &[]), Outcome::Timeout);
        assert_eq!(
            classify(StopReason::MainReturned, &[1], &[1]),
            Outcome::Benign
        );
        assert_eq!(classify(StopReason::MainReturned, &[2], &[1]), Outcome::Sdc);
        assert_eq!(classify(StopReason::MainReturned, &[], &[1]), Outcome::Sdc);
    }

    #[test]
    fn unprotected_program_shows_sdcs() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let res = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: 300,
                seed: 7,
            },
        );
        assert_eq!(res.total(), 300);
        assert!(
            res.sdc > 0,
            "unprotected program must exhibit SDCs: {res:?}"
        );
        assert_eq!(
            res.detected, 0,
            "nothing can detect in an unprotected program"
        );
    }

    #[test]
    fn campaigns_are_reproducible() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 100,
            seed: 42,
        };
        let a = run_campaign(&cpu, &profile, cfg);
        let b = run_campaign(&cpu, &profile, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let a = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: 100,
                seed: 1,
            },
        );
        let b = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: 100,
                seed: 2,
            },
        );
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn exhaustive_covers_every_site() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let res = exhaustive_campaign(&cpu, &profile, 3);
        assert_eq!(res.total(), profile.sites.len() * 3);
    }

    #[test]
    fn parallel_campaign_matches_serial_exactly() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 240,
            seed: 77,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        for threads in [1, 3, 8] {
            let par = run_campaign_parallel(&cpu, &profile, cfg, threads);
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn double_fault_campaign_runs_and_counts() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 150,
            seed: 21,
        };
        let res = run_double_campaign(&cpu, &profile, cfg);
        assert_eq!(res.total(), 150);
        assert!(res.sdc > 0, "two faults in an unprotected program: {res:?}");
        let res2 = run_double_campaign(&cpu, &profile, cfg);
        assert_eq!(res, res2, "reproducible");
    }

    #[test]
    fn outcome_counts_sum_to_total() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let res = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: 250,
                seed: 3,
            },
        );
        assert_eq!(
            res.sdc + res.detected + res.crash + res.timeout + res.benign,
            res.records.len()
        );
        assert!((res.sdc_prob() - res.sdc as f64 / 250.0).abs() < 1e-12);
    }
}
